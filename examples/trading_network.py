#!/usr/bin/env python3
"""A realistic scenario: a retailer in a trading network.

The kind of workload the paper's introduction motivates — autonomous
sources with exchange constraints and asymmetric trust:

* **Retail** keeps a product catalog ``Catalog(sku, price)`` with the
  local functional dependency  sku → price  (one listed price per SKU);
* **Supplier** publishes the official price list ``Official(sku, price)``;
  Retail trusts it *more* than its own data, and maintains the exchange
  constraint  ∀s,p (Official(s,p) → Catalog(s,p))  — official prices must
  be reflected in the catalog;
* **Partner** is a marketplace Retail trusts *the same*:
  ∀s,p,p' (Catalog(s,p) ∧ PartnerListing(s,p') → p = p') — a SKU listed on
  both sides must carry one price; conflicts may be settled at either
  side.

The retailer then answers catalog queries with peer-consistent semantics:
answers that hold no matter how the conflicts are resolved.

Run:  python examples/trading_network.py
"""

from repro.core import (
    DataExchange,
    Peer,
    PeerConsistentEngine,
    PeerSystem,
    TrustRelation,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    FunctionalDependency,
    InclusionDependency,
    EqualityGeneratingConstraint,
    RelAtom,
    Variable,
    parse_query,
)

S, P, P2 = Variable("S"), Variable("P"), Variable("P2")


def build_network() -> PeerSystem:
    retail = Peer(
        "Retail", DatabaseSchema.of({"Catalog": 2}),
        local_ics=[FunctionalDependency("Catalog", [0], [1], arity=2,
                                        name="one_price_per_sku")])
    supplier = Peer("Supplier", DatabaseSchema.of({"Official": 2}))
    partner = Peer("Partner", DatabaseSchema.of({"PartnerListing": 2}))

    instances = {
        "Retail": DatabaseInstance(retail.schema, {"Catalog": [
            ("umbrella", 12),     # agrees with the official list
            ("teapot", 30),       # official says 25: must be corrected
            ("lamp", 40),         # partner lists 45: disputed
            ("chair", 75),        # retail-only product
        ]}),
        "Supplier": DatabaseInstance(supplier.schema, {"Official": [
            ("umbrella", 12),
            ("teapot", 25),
            ("rug", 99),          # new product to import
        ]}),
        "Partner": DatabaseInstance(partner.schema, {"PartnerListing": [
            ("lamp", 45),
            ("chair", 75),        # agrees
        ]}),
    }

    official_into_catalog = InclusionDependency(
        "Official", "Catalog", child_arity=2, parent_arity=2,
        name="official_prices_bind")
    price_agreement = EqualityGeneratingConstraint(
        antecedent=[RelAtom("Catalog", [S, P]),
                    RelAtom("PartnerListing", [S, P2])],
        equalities=[(P, P2)], name="price_agreement")

    return PeerSystem(
        [retail, supplier, partner], instances,
        [DataExchange("Retail", "Supplier", official_into_catalog),
         DataExchange("Retail", "Partner", price_agreement)],
        TrustRelation([("Retail", "less", "Supplier"),
                       ("Retail", "same", "Partner")]))


def main() -> None:
    system = build_network()
    print("=== The trading network ===")
    for name in sorted(system.peers):
        print(f"  {name}: {system.instances[name]}")

    engine = PeerConsistentEngine(system, method="asp")

    print("\n=== Solutions for Retail ===")
    for index, solution in enumerate(engine.solutions("Retail"), 1):
        print(f"  solution {index}: "
              f"Catalog = {sorted(solution.tuples('Catalog'))}")

    print("\n=== Peer consistent catalog queries ===")
    full = parse_query("q(S, P) := Catalog(S, P)")
    result = engine.peer_consistent_answers("Retail", full)
    print(f"  certified catalog: {sorted(result.answers)}")
    print("""
  reading:
   * (umbrella, 12) — own data confirmed by the supplier;
   * (teapot, 25)   — the official price wins over retail's 30 (trust!),
                      and the local FD evicts the stale listing;
   * (rug, 99)      — imported: a PCA that was never in Retail's data;
   * (chair, 75)    — partner agrees, nothing disputes it;
   * lamp           — missing: the 40-vs-45 dispute with an equal-trust
                      peer can be settled either way, so no price is
                      certain.""")

    lamp = parse_query("q(P) := Catalog(lamp, P)")
    print(f"  certified lamp price: "
          f"{sorted(engine.peer_consistent_answers('Retail', lamp).answers) or 'none (disputed)'}")

    skus = parse_query("q(S) := exists P Catalog(S, P)")
    result = engine.peer_consistent_answers("Retail", skus)
    print(f"  SKUs certainly in the catalog: "
          f"{sorted(s for (s,) in result.answers)}")
    print("  (lamp is absent even from this projection: one way to settle "
          "the dispute\n   with the equally-trusted partner is to drop "
          "the lamp listing altogether)")


if __name__ == "__main__":
    main()
