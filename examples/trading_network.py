#!/usr/bin/env python3
"""A realistic scenario: a retailer in a trading network.

The kind of workload the paper's introduction motivates — autonomous
sources with exchange constraints and asymmetric trust:

* **Retail** keeps a product catalog ``Catalog(sku, price)`` with the
  local functional dependency  sku → price  (one listed price per SKU);
* **Supplier** publishes the official price list ``Official(sku, price)``;
  Retail trusts it *more* than its own data, and maintains the exchange
  constraint  ∀s,p (Official(s,p) → Catalog(s,p))  — official prices must
  be reflected in the catalog;
* **Partner** is a marketplace Retail trusts *the same*:
  ∀s,p,p' (Catalog(s,p) ∧ PartnerListing(s,p') → p = p') — a SKU listed on
  both sides must carry one price; conflicts may be settled at either
  side.

The retailer then answers catalog queries with peer-consistent semantics:
answers that hold no matter how the conflicts are resolved.

Run:  python examples/trading_network.py
"""

from repro.core import PeerQuerySession, PeerSystem
from repro.relational import (
    EqualityGeneratingConstraint,
    InclusionDependency,
    RelAtom,
    Variable,
    parse_query,
)

S, P, P2 = Variable("S"), Variable("P"), Variable("P2")


def build_network() -> PeerSystem:
    official_into_catalog = InclusionDependency(
        "Official", "Catalog", child_arity=2, parent_arity=2,
        name="official_prices_bind")
    price_agreement = EqualityGeneratingConstraint(
        antecedent=[RelAtom("Catalog", [S, P]),
                    RelAtom("PartnerListing", [S, P2])],
        equalities=[(P, P2)], name="price_agreement")

    return (
        PeerSystem.builder()
        .peer("Retail", {"Catalog": 2},
              instance={"Catalog": [
                  ("umbrella", 12),  # agrees with the official list
                  ("teapot", 30),    # official says 25: must be corrected
                  ("lamp", 40),      # partner lists 45: disputed
                  ("chair", 75),     # retail-only product
              ]},
              local_ics=[{"type": "fd", "relation": "Catalog",
                          "lhs": [0], "rhs": [1], "arity": 2,
                          "name": "one_price_per_sku"}])
        .peer("Supplier", {"Official": 2},
              instance={"Official": [
                  ("umbrella", 12),
                  ("teapot", 25),
                  ("rug", 99),       # new product to import
              ]})
        .peer("Partner", {"PartnerListing": 2},
              instance={"PartnerListing": [
                  ("lamp", 45),
                  ("chair", 75),     # agrees
              ]})
        .exchange("Retail", "Supplier", official_into_catalog)
        .exchange("Retail", "Partner", price_agreement)
        .trust("Retail", "less", "Supplier")
        .trust("Retail", "same", "Partner")
        .build())


def main() -> None:
    system = build_network()
    print("=== The trading network ===")
    for name in sorted(system.peers):
        print(f"  {name}: {system.instances[name]}")

    session = PeerQuerySession(system, default_method="asp")

    print("\n=== Solutions for Retail ===")
    for index, solution in enumerate(session.solutions("Retail"), 1):
        print(f"  solution {index}: "
              f"Catalog = {sorted(solution.tuples('Catalog'))}")

    print("\n=== Peer consistent catalog queries ===")
    full = parse_query("q(S, P) := Catalog(S, P)")
    result = session.answer("Retail", full)
    print(f"  certified catalog: {sorted(result.answers)} "
          f"(certified by {result.solution_count} solutions, cache "
          f"{'hit' if result.from_cache else 'miss'})")
    print("""
  reading:
   * (umbrella, 12) — own data confirmed by the supplier;
   * (teapot, 25)   — the official price wins over retail's 30 (trust!),
                      and the local FD evicts the stale listing;
   * (rug, 99)      — imported: a PCA that was never in Retail's data;
   * (chair, 75)    — partner agrees, nothing disputes it;
   * lamp           — missing: the 40-vs-45 dispute with an equal-trust
                      peer can be settled either way, so no price is
                      certain.""")

    lamp = parse_query("q(P) := Catalog(lamp, P)")
    skus = parse_query("q(S) := exists P Catalog(S, P)")
    lamp_result, sku_result = session.answer_many([
        ("Retail", lamp), ("Retail", skus)])
    print(f"  certified lamp price: "
          f"{sorted(lamp_result.answers) or 'none (disputed)'}")
    print(f"  SKUs certainly in the catalog: "
          f"{sorted(s for (s,) in sku_result.answers)}")
    print(f"  (batch of 2 answered from cached solutions: "
          f"{session.cache_info()})")
    print("  (lamp is absent even from this projection: one way to settle "
          "the dispute\n   with the equally-trusted partner is to drop "
          "the lamp listing altogether)")


if __name__ == "__main__":
    main()
