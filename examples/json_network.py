#!/usr/bin/env python3
"""Declarative networks: define a P2P system in JSON, query it from the
command line.

Writes the Example 1 network to ``example1_network.json`` and answers
queries against it — the same thing the CLI does with::

    python -m repro query example1_network.json P1 "q(X, Y) := R1(X, Y)"
    python -m repro solutions example1_network.json P1

Run:  python examples/json_network.py
"""

import json
import os
import tempfile

from repro.core import PeerQuerySession, load_system, system_from_dict
from repro.relational import parse_query

NETWORK = {
    "peers": {
        "P1": {"schema": {"R1": 2},
               "instance": {"R1": [["a", "b"], ["s", "t"]]}},
        "P2": {"schema": {"R2": 2},
               "instance": {"R2": [["c", "d"], ["a", "e"]]}},
        "P3": {"schema": {"R3": 2},
               "instance": {"R3": [["a", "f"], ["s", "u"]]}},
    },
    "exchanges": [
        {"owner": "P1", "other": "P2",
         "constraint": {"type": "inclusion", "child": "R2",
                        "parent": "R1", "child_arity": 2,
                        "parent_arity": 2, "name": "sigma_p1_p2"}},
        {"owner": "P1", "other": "P3",
         "constraint": {"type": "egd",
                        "antecedent": ["R1(X, Y)", "R3(X, Z)"],
                        "equalities": [["Y", "Z"]],
                        "name": "sigma_p1_p3"}},
    ],
    "trust": [["P1", "less", "P2"], ["P1", "same", "P3"]],
}


def main() -> None:
    path = os.path.join(tempfile.gettempdir(), "example1_network.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(NETWORK, handle, indent=2)
    print(f"=== Example 1 as a JSON network ({path}) ===")
    print(json.dumps(NETWORK["exchanges"], indent=2))

    system = load_system(path)
    session = PeerQuerySession(system, default_method="asp")
    query = parse_query("q(X, Y) := R1(X, Y)")

    print("\n=== Certain (peer consistent) answers ===")
    certain = session.answer("P1", query)
    for row in certain:
        print(f"  {row}")

    print("\n=== Possible (brave) answers ===")
    possible = session.answer("P1", query, semantics="possible")
    for row in possible:
        marker = "" if row in certain else "   <- not certain"
        print(f"  {row}{marker}")
    print(f"  (both computed from the same {possible.solution_count} "
          f"cached solutions: cache "
          f"{'hit' if possible.from_cache else 'miss'})")

    print("\n=== Equivalent CLI invocations ===")
    print(f"  python -m repro query {path} P1 'q(X, Y) := R1(X, Y)'")
    print(f"  python -m repro query {path} P1 'q(X, Y) := R1(X, Y)' "
          f"--brave")
    print(f"  python -m repro solutions {path} P1")

    # the dict form round-trips, so systems can be generated
    # programmatically too
    assert system_from_dict(NETWORK).global_instance() == \
        system.global_instance()


if __name__ == "__main__":
    main()
