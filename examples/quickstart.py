#!/usr/bin/env python3
"""Quickstart: Example 1/2 of the paper, end to end.

Builds the three-peer system of Example 1, computes the solutions for peer
P1 (Definition 4) and the peer consistent answers to Q : R1(x,y)
(Definition 5) with every computation mechanism the paper discusses, and
shows the rewritten query of Example 2 plus the peer-to-peer data requests
it triggers.

Run:  python examples/quickstart.py
"""

from repro.core import (
    PeerConsistentEngine,
    rewrite_peer_query,
    solutions_for_peer,
)
from repro.relational import parse_query
from repro.workloads import example1_system


def main() -> None:
    system = example1_system()
    print("=== The P2P data exchange system of Example 1 ===")
    print(f"peers:      {sorted(system.peers)}")
    for name in sorted(system.peers):
        print(f"  r({name}) = {system.instances[name]}")
    for exchange in system.exchanges:
        print(f"  Σ({exchange.owner},{exchange.other}): "
              f"{exchange.constraint}")
    for owner, level, other in system.trust.edges():
        print(f"  trust: ({owner}, {level}, {other})")

    print("\n=== Solutions for P1 (Definition 4) ===")
    for index, solution in enumerate(solutions_for_peer(system, "P1"), 1):
        print(f"  solution {index}: {solution}")

    query = parse_query("q(X, Y) := R1(X, Y)")
    print(f"\n=== Peer consistent answers to {query} ===")
    print(f"  P1's own answers (isolation): "
          f"{sorted(query.answers(system.instances['P1']))}")
    for method in ("model", "asp", "rewrite"):
        engine = PeerConsistentEngine(system, method=method)
        result = engine.peer_consistent_answers("P1", query)
        print(f"  method={method:8s}: {sorted(result.answers)}")

    print("\n=== The rewritten query of Example 2 ===")
    print(f"  {rewrite_peer_query(system, 'P1', query)}")

    print("\n=== Peer-to-peer requests issued by the rewriting ===")
    for event in system.exchange_log:
        print(f"  {event}")

    print("\nNote the tuple (c, d): it is a peer consistent answer for P1 "
          "although R1(c, d)\nis not in P1's own database — it is imported "
          "from the more-trusted P2.")


if __name__ == "__main__":
    main()
