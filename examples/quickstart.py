#!/usr/bin/env python3
"""Quickstart: Example 1/2 of the paper, end to end.

Builds the three-peer system of Example 1 with the fluent
:class:`SystemBuilder`, opens a :class:`PeerQuerySession`, and answers the
query Q : R1(x,y) (Definition 5) with every computation mechanism the
paper discusses — including ``auto``, which picks FO rewriting here —
then shows the rewritten query of Example 2 plus the peer-to-peer data
requests it triggers.

Run:  python examples/quickstart.py
"""

from repro.core import PeerQuerySession, PeerSystem, rewrite_peer_query
from repro.relational import parse_query


def build_example1() -> PeerSystem:
    """Example 1 via the fluent builder (compare
    repro.workloads.example1_system, which it mirrors)."""
    return (
        PeerSystem.builder()
        .peer("P1", {"R1": 2}, instance={"R1": [("a", "b"), ("s", "t")]})
        .peer("P2", {"R2": 2}, instance={"R2": [("c", "d"), ("a", "e")]})
        .peer("P3", {"R3": 2}, instance={"R3": [("a", "f"), ("s", "u")]})
        .exchange("P1", "P2",
                  {"type": "inclusion", "child": "R2", "parent": "R1",
                   "child_arity": 2, "parent_arity": 2,
                   "name": "sigma_p1_p2"})
        .exchange("P1", "P3",
                  {"type": "egd",
                   "antecedent": ["R1(X, Y)", "R3(X, Z)"],
                   "equalities": [["Y", "Z"]], "name": "sigma_p1_p3"})
        .trust("P1", "less", "P2")
        .trust("P1", "same", "P3")
        .build())


def main() -> None:
    system = build_example1()
    print("=== The P2P data exchange system of Example 1 ===")
    print(f"peers:      {sorted(system.peers)}")
    for name in sorted(system.peers):
        print(f"  r({name}) = {system.instances[name]}")
    for exchange in system.exchanges:
        print(f"  Σ({exchange.owner},{exchange.other}): "
              f"{exchange.constraint}")
    for owner, level, other in system.trust.edges():
        print(f"  trust: ({owner}, {level}, {other})")

    session = PeerQuerySession(system)

    print("\n=== Solutions for P1 (Definition 4) ===")
    for index, solution in enumerate(session.solutions("P1"), 1):
        print(f"  solution {index}: {solution}")

    query = parse_query("q(X, Y) := R1(X, Y)")
    print(f"\n=== Peer consistent answers to {query} ===")
    print(f"  P1's own answers (isolation): "
          f"{sorted(query.answers(system.instances['P1']))}")
    for method in ("model", "asp", "rewrite", "auto"):
        result = session.answer("P1", query, method=method)
        chosen = (f" -> {result.method_used}"
                  if result.method_used != method else "")
        count = ("not counted" if result.solution_count is None
                 else result.solution_count)
        print(f"  method={method:8s}{chosen}: {sorted(result.answers)} "
              f"(solutions: {count}, {result.elapsed * 1000:.1f} ms, "
              f"cache={'hit' if result.from_cache else 'miss'})")

    print("\n=== The rewritten query of Example 2 ===")
    print(f"  {rewrite_peer_query(system, 'P1', query)}")

    print("\n=== Peer-to-peer requests issued so far ===")
    for event in system.exchange_log:
        print(f"  {event}")

    print("\nNote the tuple ('c', 'd'): it is a peer consistent answer "
          "for P1 although R1(c, d)\nis not in P1's own database — it is "
          "imported from the more-trusted P2.")


if __name__ == "__main__":
    main()
