#!/usr/bin/env python3
"""Referential exchange constraints: the Section 3.1 / Appendix example.

Shows both answer-set specifications of the same peer's solutions:

* the **GAV** program of Section 3.1 — rules (4)-(9) with the choice
  operator, generated from DEC (3) and the trust relation; and
* the **LAV** three-layer program of Section 4.2/Appendix — annotation
  constants td/ta/fa/tss and source labels closed/open/clopen,

then verifies they agree with each other and with the model-theoretic
Definition 4, and answers the Section 3.2 query under skeptical semantics.

Run:  python examples/referential_exchange.py
"""

from repro.core import (
    GavSpecification,
    LavSpecification,
    PeerQuerySession,
    labels_for_peer,
    solutions_for_peer,
)
from repro.relational import parse_query
from repro.workloads import (
    appendix_instance,
    section31_dec,
    section31_system,
)


def main() -> None:
    system = section31_system()
    instance = appendix_instance()
    dec = section31_dec()
    print("=== Section 3.1: peers P {R1, R2} and Q {S1, S2}, "
          "(P, less, Q) ===")
    print(f"  data: {instance}")
    print(f"  DEC (3): {dec}")

    print("\n=== The GAV specification program (rules (4)-(9)) ===")
    gav = GavSpecification(instance, [dec], changeable={"R1", "R2"})
    print("\n".join("  " + line
                    for line in gav.program.pretty(sort=True).splitlines()))

    print(f"\n  stable models: {len(gav.answer_sets())}")
    print("  solutions read off the models:")
    for solution in gav.solutions():
        print(f"    {solution}")

    print("\n=== The LAV three-layer program (Section 4.2 / Appendix) ===")
    labels = labels_for_peer(system, "P")
    print(f"  source labels: {labels}")
    lav = LavSpecification(system.global_instance(), [dec], labels)
    models = lav.answer_sets()
    print(f"  stable models (= M1..M4 of the Appendix): {len(models)}")
    for index, model in enumerate(models, 1):
        tss = sorted(str(lit) for lit in model
                     if lit.positive and lit.atom.args
                     and str(lit.atom.args[-1]) == "tss")
        print(f"    M{index}: {tss}")

    print("\n=== Cross-validation ===")
    reference = solutions_for_peer(system, "P")
    print(f"  GAV solutions == LAV solutions == Definition 4: "
          f"{gav.solutions() == lav.solutions() == reference}")
    session = PeerQuerySession(system)
    auto = session.answer("P", "q(X, Y) := R2(X, Y)")
    asp = session.answer("P", "q(X, Y) := R2(X, Y)", method="asp")
    print(f"  service API: auto resolved to {auto.method_used!r}, "
          f"answers agree with asp: {auto.answers == asp.answers}")

    query = parse_query("q(X, Z) := exists Y (R1(X, Y) & R2(Z, Y))")
    print(f"\n=== Skeptical query program (Section 3.2) ===")
    print(f"  query: {query}")
    print(f"  skeptical answers: "
          f"{sorted(gav.query_program_answers(query)) or '{}'}")
    brave = gav.query_program_answers(parse_query("q(X, Y) := R2(X, Y)"),
                                      skeptical=False)
    print(f"  brave answers to R2(x, y): {sorted(brave)}")


if __name__ == "__main__":
    main()
