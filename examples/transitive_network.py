#!/usr/bin/env python3
"""Transitive data exchange: Example 4 and a longer peer chain.

Demonstrates the difference between the *direct* semantics (Definition 4:
a peer accommodates only its immediate neighbours) and the *global*
semantics of Section 4.3 (combined specification programs), first on the
paper's Example 4, then on a chain of peers where data propagates several
hops.

Run:  python examples/transitive_network.py
"""

from repro.core import PeerQuerySession, TransitiveSpecification
from repro.relational import parse_query
from repro.workloads import example4_system, peer_chain_system


def example4() -> None:
    system = example4_system()
    session = PeerQuerySession(system)
    print("=== Example 4: P --(DEC 3)--> Q --(U ⊆ S1)--> C ===")
    for name in sorted(system.peers):
        print(f"  r({name}) = {system.instances[name]}")

    print("\n--- local (direct) views ---")
    print(f"  solutions for Q alone: "
          f"{[str(s.restrict(['S1', 'S2'])) for s in session.solutions('Q', method='asp')]}")
    print(f"  solutions for P alone: "
          f"{[str(s.restrict(['R1', 'R2'])) for s in session.solutions('P', method='asp')]}")
    print("  (P sees no violation locally: s1 = {} in the sources)")

    print("\n--- the combined program (rules (10)-(13)) ---")
    spec = TransitiveSpecification(system, "P")
    for line in spec.program.pretty(sort=True).splitlines():
        if ":-" in line or " v " in line:
            print(f"  {line}")

    print("\n--- global solutions for P ---")
    for solution in session.solutions("P", method="transitive"):
        print(f"  {solution}")
    print("  (S1(c,b) imported from C via Q forces P to react: delete "
          "R1(a,b)\n   or insert R2(a,e)/R2(a,f) — the paper's three "
          "solutions)")

    query = parse_query("q(X, Y) := R1(X, Y)")
    result = session.answer("P", query, method="transitive")
    print(f"\n  transitive PCAs to R1(x,y): {sorted(result.answers) or '{}'}"
          f"  (nothing is certain: one global solution deletes R1(a,b))")


def chain() -> None:
    print("\n=== A four-peer import chain ===")
    system = peer_chain_system(3, n_tuples=2)
    session = PeerQuerySession(system)
    print("  P0 <- P1 <- P2 <- P3, data {T3(x0,y0), T3(x1,y1)} at the "
          "far end")

    direct = session.solutions("P0", method="model")
    print(f"  direct semantics: P0's T0 = "
          f"{sorted(direct[0].tuples('T0')) or '{}'} "
          f"(empty: P1 holds nothing yet)")

    for solution in session.solutions("P0", method="transitive"):
        print(f"  global semantics: P0's T0 = "
              f"{sorted(solution.tuples('T0'))}")
    print("  (the combined program lets the far-end data flow through "
          "every hop)")

    query = parse_query("q(X, Y) := T0(X, Y)")
    result = session.answer("P0", query, method="transitive")
    print(f"  transitive PCAs at P0: {sorted(result.answers)} "
          f"(from cached global solutions: "
          f"{'yes' if result.from_cache else 'no'})")


def main() -> None:
    example4()
    chain()


if __name__ == "__main__":
    main()
