"""Legacy setup shim.

The offline build environment has setuptools but no ``wheel``, so PEP 660
editable installs are unavailable; this file lets ``pip install -e .`` use
the classic ``setup.py develop`` code path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
