"""repro.shard — shard & replicate peers behind one logical name.

The first layer where one *semantic* peer of the paper becomes many
physical processes: a peer's facts partition deterministically across
N shards (:class:`ShardMap`), each shard runs R replicas, and a
:class:`ShardRouter` — a drop-in :class:`~repro.net.transport.Transport` —
keeps the logical surface intact: fetches fan out to every shard and
merge under a composed version token, queries route to any one shard
node (which reassembles the full logical instance before answering),
and replica loss fails over along health-tracked
:class:`ReplicaSet` orderings, surfacing the standard typed
``peer-unreachable`` error only when a shard loses its last replica.

Layers
------
:mod:`repro.shard.shardmap`
    :class:`ShardMap` (deterministic, serializable, splittable),
    physical naming (``P#s@r``), composed logical version tokens.
:mod:`repro.shard.router`
    :class:`ShardRouter` + :class:`ReplicaSet` — fan-out, merge,
    health-tracked failover over any inner transport.
:mod:`repro.shard.node`
    :class:`ShardedPeerNode` — a peer node holding one slice, completing
    its logical instance across sibling shards before answering.
:mod:`repro.shard.runtime`
    :class:`ShardedNetwork` — a whole sharded cluster in-process (the
    differential suite's workhorse).
:mod:`repro.shard.session`
    :func:`open_sharded_session` — real process-per-replica clusters
    behind the unchanged :class:`~repro.wire.session.RemoteNetworkSession`
    surface.
"""

from .node import ShardedPeerNode, build_shard_node
from .router import ReplicaSet, ShardRouter
from .shardmap import (
    ShardError,
    ShardMap,
    cluster_units,
    compose_shard_versions,
    decompose_shard_versions,
    parse_replica_name,
    replica_layout,
    replica_name,
    shard_name,
)

__all__ = [
    "ShardError", "ShardMap", "shard_name", "replica_name",
    "parse_replica_name", "cluster_units", "replica_layout",
    "compose_shard_versions", "decompose_shard_versions",
    "ReplicaSet", "ShardRouter",
    "ShardedPeerNode", "build_shard_node",
    "ShardedNetwork", "open_sharded_session",
]


def __getattr__(name: str):
    # runtime/session pull in repro.wire; loading them lazily keeps
    # `import repro.shard` cycle-free from inside the wire package
    if name == "ShardedNetwork":
        from .runtime import ShardedNetwork
        return ShardedNetwork
    if name == "open_sharded_session":
        from .session import open_sharded_session
        return open_sharded_session
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")
