"""One-call sharded deployments: :func:`open_sharded_session`.

The sharded twin of :func:`~repro.wire.cluster.open_wire_session`:
launch one server *process per shard replica* through the
:class:`~repro.wire.cluster.ClusterSupervisor`, build a client
:class:`~repro.shard.router.ShardRouter` over the spawned topology,
and hand both to a :class:`~repro.wire.session.RemoteNetworkSession` —
whose surface is unchanged: logical peer names in, full
:class:`~repro.core.results.QueryResult` objects out, the supervisor
torn down on ``close()``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..core.system import PeerSystem
from .router import ShardRouter
from .shardmap import ShardMap

__all__ = ["open_sharded_session"]


def open_sharded_session(system: Union[PeerSystem, str, Path], *,
                         shards: int = 2,
                         replicas: int = 1,
                         shard_map: Optional[ShardMap] = None,
                         default_method: str = "auto",
                         retries: int = 2,
                         timeout: Optional[float] = None,
                         request_timeout: float = 30.0,
                         connect_timeout: float = 2.0,
                         cooldown: float = 5.0,
                         **cluster_kwargs):
    """Launch a sharded+replicated cluster and connect a session to it.

    Every covered peer runs as ``shards × replicas`` processes; an
    explicit ``shard_map`` overrides the uniform default (and may
    cover only some peers).  Extra keyword arguments reach the
    :class:`~repro.wire.cluster.ClusterSupervisor` (``data_dir``,
    ``host``, ``hop_budget``, ``snapshot_every``, ``startup_timeout``).
    """
    from ..wire.cluster import ClusterSupervisor
    from ..wire.session import RemoteNetworkSession
    if shard_map is None:
        if isinstance(system, PeerSystem):
            peers = sorted(system.peers)
        else:
            from ..core.io import load_system
            peers = sorted(load_system(str(system)).peers)
        shard_map = ShardMap.uniform(peers, shards)
    supervisor = ClusterSupervisor(
        system, shard_map=shard_map, replicas=replicas,
        default_method=default_method, retries=retries,
        timeout=timeout, **cluster_kwargs)
    supervisor.start()
    try:
        router = ShardRouter.from_addresses(
            shard_map, supervisor.addresses(), local_name="client",
            timeout=request_timeout, connect_timeout=connect_timeout,
            cooldown=cooldown)
        return RemoteNetworkSession(
            transport=router, default_method=default_method,
            retries=retries, timeout=timeout, supervisor=supervisor)
    except BaseException:
        # the session never took ownership: don't orphan the processes
        supervisor.stop()
        raise
