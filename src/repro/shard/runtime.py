""":class:`ShardedNetwork` — a whole sharded cluster, in one process.

The in-process twin of a shard/replica deployment: every replica of
every shard runs as its own :class:`~repro.shard.node.ShardedPeerNode`
inside its own single-node :class:`~repro.net.network.PeerNetwork`,
each behind its own :class:`~repro.shard.router.ShardRouter`; all
routers share one :class:`~repro.net.transport.LoopbackTransport`
whose handler table is keyed by *physical* replica names.  A client
router on the same loopback answers queries against logical peer
names, exactly like a :class:`~repro.wire.session.RemoteNetworkSession`
against a real cluster — which is what lets the differential suite
sweep ≥20 seeded systems through shards, replicas, splits, and
replica-loss drills without paying process spawns.

Fault drills: :meth:`kill` marks a *physical* replica down on the
shared loopback's fault plan, so every router (peers' and the
client's) sees the outage and fails over; :meth:`revive` brings it
back (routers rediscover it after their health cooldown, or
immediately after :meth:`reset_health`).
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..core.results import CERTAIN, QueryError, QueryRequest, QueryResult
from ..net.errors import NetworkError, TransportError
from ..net.network import PeerNetwork
from ..net.protocol import Answer, AnswerQuery, Failure
from ..net.transport import LoopbackTransport
from ..relational.query import Query
from .node import build_shard_node
from .router import ShardRouter
from .shardmap import ShardMap, cluster_units, replica_layout, replica_name

__all__ = ["ShardedNetwork"]


class ShardedNetwork:
    """Every shard replica as an in-process node, one logical surface."""

    def __init__(self, system, *,
                 shard_map: Optional[ShardMap] = None,
                 shards: int = 2,
                 replicas: int = 1,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 timeout: Optional[float] = None,
                 cooldown: float = 0.5,
                 routing: bool = False) -> None:
        if shard_map is None:
            shard_map = ShardMap.uniform(system.peers, shards)
        self.system = system
        self.shard_map = shard_map
        self.replicas = replicas
        self.retries = retries
        self.default_method = default_method
        self.routing = routing
        self.inner = LoopbackTransport()
        units = cluster_units(shard_map, sorted(system.peers), replicas)
        layout = replica_layout(shard_map, units)
        budget = (hop_budget if hop_budget is not None
                  else len(system.peers))
        self.networks: dict[str, PeerNetwork] = {}
        for peer in sorted(system.peers):
            if shard_map.covers(peer):
                for shard in range(shard_map.n_shards(peer)):
                    for replica in range(replicas):
                        unit = replica_name(peer, shard, replica)
                        self._spawn(unit, peer, shard, layout, budget,
                                    retries, timeout)
            else:
                self._spawn(peer, peer, 0, layout, budget, retries,
                            timeout)
        #: the logical-surface client, sharing the same loopback
        self.client = ShardRouter(shard_map, layout, self.inner,
                                  local_name="client",
                                  cooldown=cooldown)

    def _spawn(self, unit: str, peer: str, shard: int, layout: dict,
               budget: int, retries: int,
               timeout: Optional[float]) -> None:
        node = build_shard_node(
            self.system, peer,
            shard_map=(self.shard_map
                       if self.shard_map.covers(peer) else None),
            shard_index=shard,
            default_method=self.default_method,
            routing=self.routing)
        router = ShardRouter(self.shard_map, layout, self.inner,
                             local_name=unit)
        # registering the network's node routes the *logical* name onto
        # this unit's physical handler slot (ShardRouter.register)
        self.networks[unit] = PeerNetwork(
            [node], router, hop_budget=budget, retries=retries,
            timeout=timeout)

    # ------------------------------------------------------------------
    # The answering surface (mirrors RemoteNetworkSession)
    # ------------------------------------------------------------------
    def peers(self) -> tuple[str, ...]:
        return tuple(sorted(self.system.peers))

    def answer(self, peer: str, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer one query at ``peer`` through the client router.

        Transport losses (every replica of a shard down) retry up to
        ``retries`` extra attempts and then come back as a typed
        ``peer-unreachable`` error on the result — never an exception,
        never a hang — matching the wire session's contract.
        """
        if peer not in self.system.peers:
            raise NetworkError(
                f"unknown peer {peer!r}; this cluster serves "
                f"{list(self.peers())}")
        request = QueryRequest(peer, query, method, semantics)
        message = AnswerQuery(
            sender="client", target=peer,
            query=str(request.resolved_query()),
            method=method or "", semantics=semantics)
        start = time.perf_counter()
        reply = None
        failure: Optional[QueryError] = None
        for attempt in range(self.retries + 1):
            try:
                reply = self.client.request(message)
                break
            except TransportError as exc:
                if attempt == self.retries:
                    failure = QueryError(
                        code="peer-unreachable",
                        message=(f"peer {peer!r} unreachable after "
                                 f"{self.retries + 1} attempt(s): "
                                 f"{exc}"),
                        peer=peer)
        elapsed = time.perf_counter() - start
        if reply is None:
            assert failure is not None
            return self._error_result(request, failure, elapsed)
        if isinstance(reply, Failure):
            return self._error_result(
                request,
                QueryError(code=reply.code, message=reply.detail,
                           peer=reply.sender or peer),
                elapsed)
        if not isinstance(reply, Answer) or \
                not isinstance(reply.payload, QueryResult):
            return self._error_result(
                request,
                QueryError(code="protocol",
                           message=(f"peer {peer!r} sent a "
                                    f"{type(reply).__name__} where a "
                                    f"result was expected"),
                           peer=peer),
                elapsed)
        return reply.payload

    def _error_result(self, request: QueryRequest, error: QueryError,
                      elapsed: float) -> QueryResult:
        return QueryResult(
            peer=request.peer,
            query=request.resolved_query(),
            answers=frozenset(),
            semantics=request.semantics,
            method_requested=request.method or self.default_method,
            method_used=request.method or self.default_method,
            solution_count=None,
            elapsed=elapsed,
            error=error,
        )

    # ------------------------------------------------------------------
    # Fault drills
    # ------------------------------------------------------------------
    def units(self) -> tuple[str, ...]:
        return tuple(sorted(self.networks))

    def kill(self, unit: str) -> None:
        """Take one physical replica down for every router at once."""
        if unit not in self.networks:
            raise NetworkError(f"no unit {unit!r}; units are "
                               f"{list(self.units())}")
        self.inner.set_down(unit)

    def revive(self, unit: str) -> None:
        if unit not in self.networks:
            raise NetworkError(f"no unit {unit!r}; units are "
                               f"{list(self.units())}")
        self.inner.set_up(unit)

    def reset_health(self) -> None:
        """Clear every router's replica bench (after a recovery)."""
        self.client.reset_health()
        for network in self.networks.values():
            transport = network.transport
            if isinstance(transport, ShardRouter):
                transport.reset_health()

    # ------------------------------------------------------------------
    def close(self) -> None:
        for network in self.networks.values():
            network.close()
        self.client.close()

    def __enter__(self) -> "ShardedNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedNetwork({sorted(self.system.peers)}, "
                f"map={self.shard_map!r}, replicas={self.replicas})")
