""":class:`ShardRouter` — one logical peer name, many physical processes.

The router implements the :class:`~repro.net.transport.Transport` ABC
over an *inner* transport whose address space speaks physical replica
names (``"P#s@r"``).  Everything above it — :class:`PeerNetwork
<repro.net.network.PeerNetwork>`, :class:`PeerNode
<repro.net.node.PeerNode>`, :class:`RemoteNetworkSession
<repro.wire.session.RemoteNetworkSession>` — keeps talking to logical
peer names, which is the whole point: the paper's semantics never learn
that one peer became twelve processes.

Routing rules, by message shape:

* :class:`~repro.net.protocol.FetchRelation` to a covered peer fans out
  to **every shard** concurrently and merges the replies into one
  logical answer: full rows union (shards are disjoint by
  construction), per-shard versions compose into a
  ``shards(...)`` token (:func:`~repro.shard.shardmap.compose_shard_versions`),
  byte counts sum.  A composed ``known_version`` is decomposed back
  into per-shard delta fetches; if only *some* shards still retain the
  requester's version, the delta-replying shards are re-fetched in
  full so the merged reply is coherent (a merged reply is a delta only
  when every shard contributed one).
* :class:`~repro.net.protocol.PeerQuery` / :class:`~repro.net.protocol.AnswerQuery`
  go to **one** shard node — any replica of any shard can serve them,
  because a :class:`~repro.shard.node.ShardedPeerNode` completes its
  own logical instance through this same router before answering.
  Answer sets are *not* unions across shards: certain answers under
  repair semantics are non-monotone, so merging per-slice answers
  would be wrong; reassembling the data and answering once is right.
* Uncovered targets pass through to the inner transport unchanged.

Failover lives in :class:`ReplicaSet`: replicas are tried in a
deterministic per-router rotation (spreading read load across
replicas), a replica that raises a retryable transport error
(:class:`~repro.net.errors.PeerDown` /
:class:`~repro.net.errors.MessageDropped`) is marked down for a
cooldown and the next one is tried; when a shard's *last* replica
fails the router raises :class:`~repro.net.errors.PeerDown` — typed
and retryable, so the network/session retry machinery surfaces the
standard ``peer-unreachable`` error instead of hanging.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import chain
from typing import Callable, Mapping, Optional, Sequence

from ..net.errors import PeerDown, ServerOverloaded, TransportError
from ..net.protocol import (
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    Message,
    PeerQuery,
)
from ..net.transport import FaultPlan, Handler, Transport
from ..obs.metrics import MetricsRegistry
from ..routing.digest import merge_neighbour_digests
from .shardmap import (
    ShardError,
    ShardMap,
    compose_shard_versions,
    decompose_shard_versions,
    parse_replica_name,
    replica_layout,
)

__all__ = ["ReplicaSet", "ShardRouter"]


class ReplicaSet:
    """The replicas of one shard, health-tracked for failover.

    ``mark_down`` puts a replica on a ``cooldown``-second bench;
    :meth:`candidates` orders healthy replicas first (rotated by
    ``offset`` so distinct routers spread load), benched ones last —
    last-resort retries still reach them, so a recovered replica is
    rediscovered no later than one cooldown after it returns.
    """

    def __init__(self, shard: str, replicas: Sequence[str], *,
                 cooldown: float = 5.0, offset: int = 0) -> None:
        if not replicas:
            raise ShardError(f"shard {shard!r} has no replicas")
        self.shard = shard
        self.replicas = tuple(replicas)
        self.cooldown = cooldown
        self._offset = offset % len(self.replicas)
        self._down_until: dict[str, float] = {}
        self._lock = threading.Lock()

    def _rotated(self) -> list[str]:
        return (list(self.replicas[self._offset:])
                + list(self.replicas[:self._offset]))

    def candidates(self) -> list[str]:
        """Every replica, healthy ones first, in rotation order."""
        now = time.monotonic()
        with self._lock:
            healthy = [name for name in self._rotated()
                       if self._down_until.get(name, 0.0) <= now]
            benched = [name for name in self._rotated()
                       if self._down_until.get(name, 0.0) > now]
        return healthy + benched

    def primary(self) -> str:
        """The replica this set currently tries first."""
        return self.candidates()[0]

    def mark_down(self, name: str) -> None:
        with self._lock:
            self._down_until[name] = time.monotonic() + self.cooldown

    def mark_up(self, name: str) -> None:
        with self._lock:
            self._down_until.pop(name, None)

    def reset(self) -> None:
        with self._lock:
            self._down_until.clear()

    def status(self) -> dict[str, str]:
        now = time.monotonic()
        with self._lock:
            return {name: ("down" if self._down_until.get(name, 0.0) > now
                           else "up")
                    for name in self.replicas}

    def __repr__(self) -> str:
        return f"ReplicaSet({self.shard!r}, {list(self.replicas)})"


def _stable_offset(seed: str) -> int:
    """A deterministic, process-independent rotation seed."""
    digest = hashlib.blake2b(seed.encode("utf-8"), digest_size=4)
    return int.from_bytes(digest.digest(), "big")


class ShardRouter(Transport):
    """Route logical peer names onto shard/replica processes."""

    def __init__(self, shard_map: ShardMap,
                 layout: Mapping[str, Sequence[str]],
                 inner: Transport, *,
                 local_name: str = "client",
                 cooldown: float = 5.0,
                 max_workers: int = 8,
                 faults: Optional[FaultPlan] = None) -> None:
        super().__init__(faults)
        self.shard_map = shard_map
        self.inner = inner
        self.local_name = local_name
        self.cooldown = cooldown
        self._replicas: dict[str, ReplicaSet] = {}
        self._peer_shards: dict[str, tuple[str, ...]] = {}
        for peer in sorted(shard_map.counts):
            shards = shard_map.shard_names(peer)
            missing = [shard for shard in shards if shard not in layout]
            if len(missing) == len(shards):
                continue  # peer not deployed through this router at all
            if missing:
                raise ShardError(
                    f"peer {peer!r} is partially deployed: layout lacks "
                    f"shard(s) {missing}")
            for shard in shards:
                self._replicas[shard] = ReplicaSet(
                    shard, layout[shard], cooldown=cooldown,
                    offset=_stable_offset(f"{local_name}|{shard}"))
            self._peer_shards[peer] = shards
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        #: failover/benching counters scraped by GetStatus
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    @classmethod
    def from_addresses(cls, shard_map: ShardMap,
                       addresses: Mapping[str, str], *,
                       local_name: str = "client",
                       timeout: float = 10.0,
                       connect_timeout: float = 2.0,
                       pool_size: int = 4,
                       cooldown: float = 5.0,
                       faults: Optional[FaultPlan] = None
                       ) -> "ShardRouter":
        """A router over a :class:`~repro.wire.transport.SocketTransport`
        dialled at ``addresses`` (physical replica names plus plain
        peers).  ``local_name``'s own entry, if present, is kept in the
        replica layout but *not* dialled — a server process reaches its
        own shard through its locally registered handler.
        """
        from ..wire.transport import SocketTransport
        inner = SocketTransport(
            {name: value for name, value in addresses.items()
             if name != local_name},
            local_name=local_name, timeout=timeout,
            connect_timeout=connect_timeout, pool_size=pool_size)
        return cls(shard_map, replica_layout(shard_map, addresses),
                   inner, local_name=local_name, cooldown=cooldown,
                   faults=faults)

    # ------------------------------------------------------------------
    # The Transport surface
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Handler) -> None:
        """Register a node's handler on the inner transport.

        A *covered* logical name maps to this router's own physical
        name: the hosting process serves exactly one shard replica, and
        registering it under the replica name is what lets sibling
        shards (and the node's own cross-shard self-completion) reach
        it without name collisions on a shared inner transport.
        """
        if self.shard_map.covers(name):
            self.inner.register(self.local_name, handler)
        else:
            self.inner.register(name, handler)

    def request(self, message: Message) -> Message:
        target = message.target
        if self.faults.is_down(target):
            raise PeerDown(f"peer {target!r} is down")
        shards = self._peer_shards.get(target)
        if shards is None:
            return self.inner.request(message)
        if isinstance(message, FetchRelation):
            return self._fetch_sharded(message, shards)
        if isinstance(message, (PeerQuery, AnswerQuery)):
            return self._request_any_shard(message, shards)
        return self._request_any_shard(message, shards)

    def set_down(self, peer: str) -> None:
        """Logical names go down on this router; physical names on the
        inner transport (so every router sharing it sees the outage)."""
        if self.shard_map.covers(peer):
            self.faults.set_down(peer)
        else:
            self.inner.set_down(peer)

    def set_up(self, peer: str) -> None:
        if self.shard_map.covers(peer):
            self.faults.set_up(peer)
        else:
            self.inner.set_up(peer)

    def addresses(self) -> dict[str, str]:
        """The *logical* address surface: plain peers keep their inner
        addresses; covered peers appear once, described by topology."""
        out: dict[str, str] = {}
        inner_addresses = getattr(self.inner, "addresses", None)
        if callable(inner_addresses):
            for name, value in inner_addresses().items():
                if self._is_physical(name):
                    continue
                out[name] = value
        for peer, shards in sorted(self._peer_shards.items()):
            replicas = len(self._replicas[shards[0]].replicas)
            out[peer] = f"sharded:{len(shards)}x{replicas}"
        return out

    def _is_physical(self, name: str) -> bool:
        parsed = parse_replica_name(name)
        return parsed is not None and self.shard_map.covers(parsed[0])

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        self.inner.close()

    # ------------------------------------------------------------------
    # Introspection (tests, benchmarks, fault drills)
    # ------------------------------------------------------------------
    def replica_sets(self, peer: str) -> dict[str, ReplicaSet]:
        return {shard: self._replicas[shard]
                for shard in self._peer_shards.get(peer, ())}

    def primaries(self, peer: str) -> dict[str, str]:
        """The replica each shard of ``peer`` would be asked first."""
        return {shard: replica_set.primary()
                for shard, replica_set in self.replica_sets(peer).items()}

    def reset_health(self) -> None:
        """Forget every benched replica (after a recovery drill)."""
        for replica_set in self._replicas.values():
            replica_set.reset()

    # ------------------------------------------------------------------
    # Single-target routing with replica failover
    # ------------------------------------------------------------------
    def _request_replica_set(self, replica_set: ReplicaSet,
                             message: Message) -> Message:
        last_error: Optional[TransportError] = None
        for replica in replica_set.candidates():
            attempt = dataclasses.replace(message, target=replica)
            try:
                reply = self.inner.request(attempt)
            except TransportError as exc:
                if not isinstance(exc, ServerOverloaded):
                    # a shed request means the replica is *alive* and
                    # protecting itself — spill to a sibling without
                    # benching the busy one
                    replica_set.mark_down(replica)
                    self.metrics.inc("shard.replicas_benched")
                self.metrics.inc("shard.failovers")
                last_error = exc
                continue
            replica_set.mark_up(replica)
            return reply
        raise PeerDown(
            f"shard {replica_set.shard!r} of peer "
            f"{message.target!r} lost its last replica (tried "
            f"{list(replica_set.replicas)}): {last_error}")

    def _request_any_shard(self, message: Message,
                           shards: Sequence[str]) -> Message:
        """One shard node serves the whole request — every shard's node
        reassembles the full logical instance before answering, so any
        reachable replica is as good as any other."""
        last_error: Optional[TransportError] = None
        for shard in shards:
            try:
                return self._request_replica_set(
                    self._replicas[shard], message)
            except TransportError as exc:
                last_error = exc
        raise PeerDown(
            f"peer {message.target!r}: no shard has a reachable "
            f"replica: {last_error}")

    # ------------------------------------------------------------------
    # Sharded fetches: fan out, merge, compose versions
    # ------------------------------------------------------------------
    def _fetch_sharded(self, message: FetchRelation,
                       shards: Sequence[str]) -> Message:
        known = decompose_shard_versions(message.known_version)
        if known is not None and set(known) != set(shards):
            # a token minted under another layout (e.g. before a shard
            # split): no shard can honour it — fetch everything fresh
            known = None

        def fetch(shard: str) -> Message:
            sub = dataclasses.replace(
                message,
                known_version=known.get(shard, "") if known else "")
            return self._request_replica_set(self._replicas[shard], sub)

        replies = self._fan([lambda shard=shard: fetch(shard)
                             for shard in shards])
        for reply in replies:
            if isinstance(reply, Failure):
                return reply
        total_bytes = sum(reply.bytes_estimate for reply in replies)
        all_delta = (known is not None
                     and all(getattr(reply, "delta", False)
                             for reply in replies))
        if all_delta:
            # shards hold disjoint slices, so their change sets
            # concatenate without conflicts into one logical delta;
            # shard order keeps the merge deterministic without paying
            # a client-side re-sort of rows the servers already sorted
            payload = {
                "insert": tuple(chain.from_iterable(
                    reply.payload.get("insert", ())
                    for reply in replies)),
                "delete": tuple(chain.from_iterable(
                    reply.payload.get("delete", ())
                    for reply in replies)),
            }
            return Answer(
                sender=message.target, target=message.sender,
                in_reply_to=message.correlation_id, payload=payload,
                version=self._compose(shards, replies), delta=True,
                bytes_estimate=total_bytes,
                digests=self._compose_digests(message.target, shards,
                                              replies))
        # mixed full/delta replies cannot merge (the delta halves lack
        # a base here): re-pull the delta shards in full
        replies = list(replies)
        for index, (shard, reply) in enumerate(zip(shards, replies)):
            if getattr(reply, "delta", False):
                full = self._request_replica_set(
                    self._replicas[shard],
                    dataclasses.replace(message, known_version=""))
                if isinstance(full, Failure):
                    return full
                total_bytes += full.bytes_estimate
                replies[index] = full
        # disjoint slices, each already server-sorted: concatenating in
        # shard order is deterministic and skips an O(n log n) re-sort
        # of the whole logical relation on every bulk fetch
        rows = tuple(chain.from_iterable(reply.payload
                                         for reply in replies))
        return Answer(
            sender=message.target, target=message.sender,
            in_reply_to=message.correlation_id, payload=rows,
            version=self._compose(shards, replies),
            bytes_estimate=total_bytes,
            digests=self._compose_digests(message.target, shards,
                                          replies))

    @staticmethod
    def _compose(shards: Sequence[str],
                 replies: Sequence[Message]) -> str:
        return compose_shard_versions(
            {shard: getattr(reply, "version", "")
             for shard, reply in zip(shards, replies)})

    @staticmethod
    def _compose_digests(peer: str, shards: Sequence[str],
                         replies: Sequence[Message]):
        """Merge per-slice content digests into one logical digest set.

        Every shard node describes only its slice, so the logical
        digests are the bitwise union, stamped with the same
        ``shards(...)`` token as the merged answer.  Slices of different
        sizes digest at different adaptive widths; the union fold-merges
        the wider digest down onto the narrower one
        (:meth:`~repro.routing.digest.RelationDigest.fold_to`), which
        keeps every set bit, so the no-false-negative guarantee survives
        mixed widths.  Composition is still all-or-nothing: a single
        reply without digests (routing off on that replica, or a version
        race dropped them), or a residual width mismatch the fold cannot
        reconcile (the ``ValueError`` below), makes the merged answer
        carry none — a partial union could claim a constant absent that
        a silent slice holds, breaking the guarantee the requester
        prunes on.
        """
        parts = [getattr(reply, "digests", None) for reply in replies]
        if any(part is None for part in parts):
            return None
        if any(part.version != getattr(reply, "version", "")
               for part, reply in zip(parts, replies)):
            return None  # slice digests raced a sync; don't describe it
        version = compose_shard_versions(
            {shard: part.version
             for shard, part in zip(shards, parts)})
        try:
            return merge_neighbour_digests(peer, version, parts)
        except ValueError:
            return None

    def _fan(self, thunks: Sequence[Callable[[], Message]]
             ) -> list[Message]:
        """Run the shard fan-out concurrently, last thunk inline.

        The inline tail guarantees progress under a saturated pool
        (fan-outs are leaf work — replica round trips — so queued
        tasks always drain), mirroring
        :meth:`PeerNetwork.fan_out <repro.net.network.PeerNetwork.fan_out>`.
        """
        if len(thunks) == 1:
            return [thunks[0]()]
        executor = self._shared_executor()
        futures = [executor.submit(thunk) for thunk in thunks[:-1]]
        results: list[Optional[Message]] = [None] * len(thunks)
        first_error: Optional[BaseException] = None
        try:
            results[-1] = thunks[-1]()
        except Exception as exc:
            first_error = exc
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def _shared_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"shard-router-{self.local_name}")
            return self._executor

    def __repr__(self) -> str:
        return (f"ShardRouter({self.shard_map!r}, "
                f"local_name={self.local_name!r}, "
                f"inner={type(self.inner).__name__})")
