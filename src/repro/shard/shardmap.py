""":class:`ShardMap` — deterministic partitioning of a peer's facts.

One *logical* peer of the paper's semantics can be served by many
physical processes: N **shards** (each holding a disjoint slice of the
peer's relations) times R **replicas** per shard (each holding the same
slice).  The map is the one piece of configuration every client and
server must agree on, so it is

* **deterministic** — a fact's shard is a keyed ``blake2b`` hash of its
  relation name and first attribute (never Python's per-process-salted
  ``hash()``), so two processes always place a tuple identically;
* **serializable** — :meth:`to_json`/:meth:`from_json` round-trip the
  whole map, which is how ``python -m repro serve --shard-map`` ships it
  to every server process;
* **splittable** — :meth:`split` doubles a peer's shard count, the
  N→2N resharding step the differential suite drives answers through.

Physical naming is part of the contract: shard ``s`` of peer ``P`` is
``"P#s"``, its replica ``r`` is ``"P#s@r"`` (:func:`replica_name`), and
:func:`parse_replica_name` recovers the triple — that is how routers,
supervisors, and servers translate between the logical graph (where the
paper's semantics live) and the process topology (where the sockets
live).

Logical version tokens compose the same way: a router merging per-shard
:attr:`Answer.version <repro.net.protocol.Answer.version>` stamps
``"shards(P#0=v0,P#1=v1)"`` (:func:`compose_shard_versions`), and
because the token is self-describing, :func:`decompose_shard_versions`
needs no router-side memory — a client restarted with a persisted token
still fetches by per-shard delta, and a token minted before a split
simply fails to decompose onto the new shard set and falls back to a
full fetch.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Iterable, Mapping, Optional

from ..net.errors import NetworkError
from ..relational.instance import DatabaseInstance

__all__ = [
    "ShardError",
    "ShardMap",
    "shard_name",
    "replica_name",
    "parse_replica_name",
    "cluster_units",
    "replica_layout",
    "compose_shard_versions",
    "decompose_shard_versions",
]


class ShardError(NetworkError):
    """A shard map, layout, or physical name is malformed."""


_REPLICA_RE = re.compile(r"^(?P<peer>.+)#(?P<shard>\d+)@(?P<replica>\d+)$")

#: composed logical version tokens look like ``shards(P#0=v0,P#1=v1)``
_TOKEN_PREFIX = "shards("
_TOKEN_SUFFIX = ")"


def shard_name(peer: str, shard: int) -> str:
    """The physical name of shard ``shard`` of logical peer ``peer``."""
    return f"{peer}#{shard}"


def replica_name(peer: str, shard: int, replica: int) -> str:
    """The physical name of one replica process of one shard."""
    return f"{peer}#{shard}@{replica}"


def parse_replica_name(name: str) -> Optional[tuple[str, int, int]]:
    """``"P#s@r"`` → ``(peer, shard, replica)``; None for plain names."""
    match = _REPLICA_RE.match(name)
    if match is None:
        return None
    return (match.group("peer"), int(match.group("shard")),
            int(match.group("replica")))


class ShardMap:
    """Deterministic hash partitioning: ``{peer: shard_count}``.

    Peers absent from :attr:`counts` are *uncovered* — served by one
    plain process under their logical name, exactly as before this
    layer existed.  A covered peer with count 1 is still routed (one
    shard, possibly several replicas).
    """

    #: named so a future range/jump-hash variant can coexist on the wire
    ALGORITHM = "blake2b-key0"
    FORMAT = 1

    def __init__(self, counts: Mapping[str, int]) -> None:
        clean: dict[str, int] = {}
        for peer, count in counts.items():
            if not isinstance(count, int) or count < 1:
                raise ShardError(
                    f"peer {peer!r} needs a positive shard count, got "
                    f"{count!r}")
            clean[str(peer)] = count
        self._counts = clean

    @classmethod
    def uniform(cls, peers: Iterable[str], shards: int) -> "ShardMap":
        """Every peer covered with the same shard count."""
        return cls({peer: shards for peer in peers})

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def covers(self, peer: str) -> bool:
        return peer in self._counts

    def n_shards(self, peer: str) -> int:
        return self._counts.get(peer, 1)

    def shard_names(self, peer: str) -> tuple[str, ...]:
        return tuple(shard_name(peer, index)
                     for index in range(self.n_shards(peer)))

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_of(self, peer: str, relation: str, row: tuple) -> int:
        """Which shard of ``peer`` holds ``row`` of ``relation``.

        Keys on the relation name plus the tuple's first attribute —
        the join/DEC key position throughout the paper's examples — so
        rows that agree on the key co-locate and per-shard deltas stay
        disjoint.  The canonical JSON form of the key makes placement
        independent of the value's Python type identity.
        """
        n = self.n_shards(peer)
        if n <= 1:
            return 0
        key = row[0] if row else None
        try:
            canonical = json.dumps(key, sort_keys=True, default=str)
        except (TypeError, ValueError):
            canonical = repr(key)
        digest = hashlib.blake2b(
            f"{relation}\x00{canonical}".encode("utf-8"),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") % n

    def restrict(self, instance: DatabaseInstance, peer: str,
                 shard: int) -> DatabaseInstance:
        """The slice of ``instance`` shard ``shard`` of ``peer`` owns.

        Slices partition the instance: for every relation, the
        restrictions to shards ``0..n-1`` are disjoint and union back
        to the original rows.
        """
        n = self.n_shards(peer)
        if not 0 <= shard < n:
            raise ShardError(
                f"peer {peer!r} has {n} shard(s); index {shard} is out "
                f"of range")
        data = {
            relation: [row for row in instance.tuples(relation)
                       if self.shard_of(peer, relation, row) == shard]
            for relation in instance.relations()
        }
        return DatabaseInstance(instance.schema, data)

    def split(self, peer: Optional[str] = None) -> "ShardMap":
        """A new map with doubled shard counts (N→2N resharding).

        With ``peer`` only that peer splits; default splits every
        covered peer.  The map is new — running clusters keep serving
        the old layout until a supervisor deploys the new one.
        """
        if peer is not None and peer not in self._counts:
            raise ShardError(f"peer {peer!r} is not covered by this map")
        return ShardMap({
            name: count * 2 if peer in (None, name) else count
            for name, count in self._counts.items()})

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"format": self.FORMAT, "algorithm": self.ALGORITHM,
                "counts": dict(sorted(self._counts.items()))}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardMap":
        if payload.get("format") != cls.FORMAT:
            raise ShardError(
                f"unsupported shard map format {payload.get('format')!r}")
        if payload.get("algorithm") != cls.ALGORITHM:
            raise ShardError(
                f"unknown shard algorithm {payload.get('algorithm')!r}; "
                f"this build speaks {cls.ALGORITHM!r}")
        counts = payload.get("counts")
        if not isinstance(counts, Mapping):
            raise ShardError("shard map payload lacks a counts mapping")
        return cls(counts)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        """Parse the serialized envelope, or — for hand-written CLI
        input — a bare ``{"peer": n_shards}`` counts object."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ShardError(f"unreadable shard map JSON: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise ShardError("shard map JSON must be an object")
        if "format" not in payload and "counts" not in payload:
            return cls(payload)
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ShardMap)
                and self._counts == other._counts)

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._counts.items())))

    def __repr__(self) -> str:
        return f"ShardMap({dict(sorted(self._counts.items()))})"


# ---------------------------------------------------------------------------
# Physical topologies
# ---------------------------------------------------------------------------

def cluster_units(shard_map: Optional[ShardMap],
                  peers: Iterable[str],
                  replicas: int = 1) -> tuple[str, ...]:
    """Every physical process name a cluster for ``peers`` needs.

    Covered peers expand to ``shards × replicas`` replica names;
    uncovered peers stay one plain process under their logical name.
    """
    if replicas < 1:
        raise ShardError("a shard needs at least one replica")
    units: list[str] = []
    for peer in peers:
        if shard_map is not None and shard_map.covers(peer):
            for shard in range(shard_map.n_shards(peer)):
                for replica in range(replicas):
                    units.append(replica_name(peer, shard, replica))
        else:
            units.append(peer)
    return tuple(units)


def replica_layout(shard_map: ShardMap,
                   names: Iterable[str]) -> dict[str, list[str]]:
    """Group physical ``names`` into ``{shard_name: [replica names]}``.

    Names that do not parse as replicas of a covered peer are ignored
    (they are plain single-process peers).  Replicas come back ordered
    by replica index — the failover preference order.
    """
    grouped: dict[str, list[tuple[int, str]]] = {}
    for name in names:
        parsed = parse_replica_name(name)
        if parsed is None:
            continue
        peer, shard, replica = parsed
        if not shard_map.covers(peer):
            continue
        grouped.setdefault(shard_name(peer, shard), []).append(
            (replica, name))
    return {shard: [name for _index, name in sorted(entries)]
            for shard, entries in grouped.items()}


# ---------------------------------------------------------------------------
# Composed logical versions
# ---------------------------------------------------------------------------

def compose_shard_versions(versions: Mapping[str, str]) -> str:
    """Per-shard content versions → one self-describing logical token."""
    body = ",".join(f"{shard}={version}"
                    for shard, version in sorted(versions.items()))
    return f"{_TOKEN_PREFIX}{body}{_TOKEN_SUFFIX}"


def decompose_shard_versions(token: str) -> Optional[dict[str, str]]:
    """Invert :func:`compose_shard_versions`; None for foreign tokens.

    A plain store version (or a token minted for a different shard
    layout — the caller compares the shard names) is simply not a
    composed token, which downstream code treats as "fetch in full".
    """
    if (not token.startswith(_TOKEN_PREFIX)
            or not token.endswith(_TOKEN_SUFFIX)):
        return None
    body = token[len(_TOKEN_PREFIX):-len(_TOKEN_SUFFIX)]
    if not body:
        return {}
    versions: dict[str, str] = {}
    for part in body.split(","):
        shard, sep, version = part.partition("=")
        if not sep or not shard:
            return None
        versions[shard] = version
    return versions
