""":class:`ShardedPeerNode` — one shard replica of a logical peer.

The node *is* a :class:`~repro.net.node.PeerNode` named by the logical
peer — same DECs, same trust edges, same answering machinery — whose
store holds only its shard's slice (the :class:`~repro.shard.shardmap.ShardMap`
restriction of the peer's instance).  Two behaviours change:

* :meth:`update_instance` restricts incoming *logical* instances
  through the map first, so syncs ship the peer's full data everywhere
  and each replica keeps exactly its slice — while stamping the full
  system version, which keeps answer caches identical across replicas
  of the same peer;
* :meth:`_complete_own_instance` reassembles the full logical instance
  before answering, by fetching the peer's *own* relations through the
  network's :class:`~repro.shard.router.ShardRouter` (which fans out
  to every sibling shard; the local shard serves its slice through the
  in-process handler).  The fetches name the last composed version
  seen, so a warm re-view moves per-shard deltas, not full relations.

Serving needs no override at all: a :class:`FetchRelation
<repro.net.protocol.FetchRelation>` against this node naturally
returns the slice (with the *slice's* content version, which is what
per-shard delta fetching keys on), and a gather/answer served to other
peers runs over the self-completed view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..core.results import ExchangeStats
from ..core.system import PeerSystem
from ..net.errors import NetworkError
from ..net.node import PeerNode
from ..net.protocol import FetchRelation
from ..relational.instance import DatabaseInstance
from ..routing.digest import NeighbourDigests
from .shardmap import ShardMap

__all__ = ["ShardedPeerNode", "build_shard_node"]


class ShardedPeerNode(PeerNode):
    """A :class:`PeerNode` holding one shard slice of its peer."""

    def __init__(self, peer, instance: DatabaseInstance, decs,
                 trust_edges, *, shard_map: ShardMap, shard_index: int,
                 **kwargs) -> None:
        restricted = shard_map.restrict(instance, peer.name, shard_index)
        super().__init__(peer, restricted, decs, trust_edges, **kwargs)
        self.shard_map = shard_map
        self.shard_index = shard_index
        # the router-composed *logical* digest bundle captured from the
        # last cold self-merge, guarded by the node version it described
        self._logical_digests: Optional[
            tuple[str, NeighbourDigests]] = None

    def update_instance(self, instance: DatabaseInstance,
                        version: str) -> None:
        """Accept the *logical* instance, keep only this shard's slice.

        The stamped ``version`` is the logical system version: every
        replica of every shard of the peer stamps the same token for
        the same logical content, so their view and answer caches
        agree — a client failing over between replicas can never see
        two different answers for one version.
        """
        super().update_instance(
            self.shard_map.restrict(instance, self.name,
                                    self.shard_index),
            version)

    def _subsystem_digests(self):
        """No subsystem digests from a shard replica.

        The node's store holds one *slice* of the logical peer, so its
        own digests would under-describe the peer and a requester could
        wrongly conclude a constant is absent.  Slice digests still
        travel on fetch replies (``_serve_fetch`` is not overridden),
        where the :class:`~repro.shard.router.ShardRouter` composes
        them per shard under the ``shards(...)`` version token.
        """
        return None

    def _subsystem_version(self) -> str:
        """No confirmable subsystem version either: the slice store's
        version describes the slice, not the logical peer, and
        advertising it would let a requester elide fetches against the
        wrong content.  Empty means *never confirm* — routed gathers
        through a sharded peer fall back to flooded-equivalent fetches,
        which is always sound."""
        return ""

    def _aggregate_own_digests(self) -> Optional[NeighbourDigests]:
        """The *logical* digest bundle for subtree aggregation.

        A shard replica must never let its slice digests stand for the
        peer in a :class:`~repro.routing.aggregate.SubtreeDigest` — a
        constant absent from this slice may live on a sibling shard, and
        an aggregate built on the slice would let a requester prune a
        branch that holds answers.  Instead the bundle captured from the
        last cold self-merge is served: the
        :class:`~repro.shard.router.ShardRouter` composes every slice's
        digests into one logical bundle on fetch replies
        (all-or-nothing), and :meth:`_complete_own_instance` keeps the
        most recent one alongside the node version it described.  When
        no capture covers the current version the answer is ``None`` —
        :func:`~repro.routing.aggregate.build_subtree` then degrades the
        whole subtree rather than misdescribe it.
        """
        if self.shard_map.n_shards(self.name) <= 1:
            # one shard == the whole peer: own digests are logical
            return super()._aggregate_own_digests()
        captured = self._logical_digests
        if captured is not None and captured[0] == self._version:
            return captured[1]
        return None

    def _complete_own_instance(self) -> tuple[DatabaseInstance,
                                              ExchangeStats]:
        """Reassemble the peer's full instance across sibling shards.

        Runs under the node lock (from ``_view_and_cost``), which is
        safe: serving a fetch — including this node's own slice,
        reached through the router's local handler — takes only the
        store lock, never the node lock.
        """
        if (self.network is None
                or self.shard_map.n_shards(self.name) <= 1):
            return self.instance, ExchangeStats()
        fetches = []
        bases = []
        for relation in sorted(self.peer.schema.names):
            with self._fetch_lock:
                cached = self._fetched.get((self.name, relation))
            fetches.append(FetchRelation(
                sender=self.name, target=self.name, relation=relation,
                purpose="shard self-merge",
                known_version=cached[0] if cached else ""))
            bases.append(cached[1] if cached else None)
        answers = self.network.fan_out(self.name, fetches)
        data: dict[str, frozenset] = {}
        tuples_moved = bytes_moved = 0
        for request, base, answer in zip(fetches, bases, answers):
            rows, moved = self._integrate_fetch(request, base, answer)
            data[request.relation] = rows
            tuples_moved += moved
            bytes_moved += answer.bytes_estimate
        self._capture_logical_digests(answers)
        return (DatabaseInstance(self.peer.schema, data),
                ExchangeStats(requests=len(fetches),
                              tuples_transferred=tuples_moved,
                              bytes_estimate=bytes_moved, max_hops=1))

    def _capture_logical_digests(self, answers) -> None:
        """Keep the router-composed logical digest bundle, if coherent.

        Each self-merge reply may piggyback the logical
        :class:`~repro.routing.digest.NeighbourDigests` the router
        composed across every shard (under the merged ``shards(...)``
        token); one coherent bundle describes all relations.  A *warm*
        merge (empty-delta probes at a version the requester already
        holds) carries none — the prior capture stays valid, because
        unchanged slices mean an unchanged node version.  Replies
        stamping *different* composed versions mean a sync raced the
        fan-out: the reassembly is torn, so the capture is dropped
        rather than left describing content the version no longer
        names.
        """
        versions = {getattr(answer, "version", "")
                    for answer in answers}
        if len(versions) != 1:
            self._logical_digests = None
            return
        for answer in answers:
            bundle = getattr(answer, "digests", None)
            if bundle is not None and bundle.version in versions:
                self._logical_digests = (self._version, bundle)
                return

    def __repr__(self) -> str:
        return (f"ShardedPeerNode({self.name!r}, "
                f"shard={self.shard_index}/"
                f"{self.shard_map.n_shards(self.name)}, "
                f"{len(self.decs)} DECs)")


def build_shard_node(system: PeerSystem, peer: str, *,
                     shard_map: Optional[ShardMap] = None,
                     shard_index: int = 0,
                     default_method: str = "auto",
                     include_local_ics: bool = True,
                     evaluator: str = "planner",
                     data_dir: Optional[Union[str, Path]] = None,
                     snapshot_every: int = 64,
                     routing: bool = False,
                     tracing: bool = False) -> PeerNode:
    """One (possibly sharded) node seeded with its slice of ``system``.

    The sharded twin of :func:`~repro.wire.server.build_peer_node`,
    sharing its contract: the system definition is authoritative (the
    trailing ``update_instance`` moves any resumed durable state to the
    definition's content as a logged delta) and the node stamps the
    logical system version.  Without a covering ``shard_map`` this
    builds a plain :class:`~repro.net.node.PeerNode`.
    """
    if peer not in system.peers:
        raise NetworkError(
            f"system has no peer {peer!r}; it has "
            f"{sorted(system.peers)}")
    own_edges = [(owner, level, other)
                 for owner, level, other in system.trust.edges()
                 if owner == peer]
    common = dict(
        decs=system.decs_of(peer),
        trust_edges=own_edges,
        default_method=default_method,
        include_local_ics=include_local_ics,
        evaluator=evaluator,
        data_dir=data_dir,
        snapshot_every=snapshot_every,
        routing=routing,
        tracing=tracing)
    if shard_map is not None and shard_map.covers(peer):
        node: PeerNode = ShardedPeerNode(
            system.peers[peer], system.instances[peer],
            shard_map=shard_map, shard_index=shard_index, **common)
    else:
        node = PeerNode(system.peers[peer], system.instances[peer],
                        **common)
    node.update_instance(system.instances[peer], system.version())
    return node
