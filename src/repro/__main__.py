"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query SYSTEM.json PEER QUERY [--method M] [--brave] [--network] [--json]``
    Answer a query posed to a peer of a JSON-defined system
    (see :mod:`repro.core.io` for the file format).  ``--method auto``
    (the default) picks FO rewriting when it applies and falls back to
    ASP; any registered answer method can be named.  ``--network`` runs
    the query over the :mod:`repro.net` message-passing runtime instead
    of the in-process session.

``network SYSTEM.json PEER QUERY [--latency MS] [--drop P] [--seed N]
[--hops N] [--retries N] [--sequential] [--data-dir DIR] [--method M]
[--brave] [--json]``
    Answer a query over the peer network runtime and print the exchange
    trace — the actual protocol messages that flowed.  ``--latency`` and
    ``--drop`` inject per-link delay and seeded message loss through a
    :class:`~repro.net.transport.ThreadedTransport`; without them the
    zero-overhead loopback transport is used.  ``--data-dir`` makes
    every node durable under ``DIR/<peer>/`` (facts in a delta-log +
    snapshot store, answers cached by content version): re-running the
    same query against the same directory answers from disk without a
    single message, and after editing the system file the nodes sync by
    versioned deltas.  Network failures (peer down, hop budget
    exhausted) are reported as typed errors, exit 3.

``serve SYSTEM.json PEER [--host H] [--port N] [--peers SPEC]
[--data-dir DIR] [--hops N] [--retries N] [--timeout S] [--method M]
[--snapshot-every N]``
    Run one peer of the system as a standalone server process speaking
    the :mod:`repro.wire` frame protocol over TCP.  ``--peers`` names
    the other peers' addresses (``P2=host:port,P3=host:port``); the
    server prints ``READY <peer> <host>:<port>`` once listening and
    serves until SIGTERM/SIGINT, flushing durable state on the way out.
    ``--port 0`` picks a free port.  Normally launched by the
    ``cluster`` supervisor, but addresses can be wired by hand across
    machines.

``cluster SYSTEM.json PEER QUERY [--method M] [--brave] [--data-dir
DIR] [--hops N] [--retries N] [--timeout S] [--host H] [--json]``
    Launch every peer of the system as an independent OS process
    (``serve`` under a supervisor), answer the query at ``PEER``
    through a client session speaking only the wire protocol, print the
    result plus the client-observed exchange, and shut the cluster
    down.  With ``--data-dir`` the peer processes are durable: a
    re-run against the same directory restarts them warm and re-syncs
    by versioned deltas.

``trace SYSTEM.json PEER QUERY [--method M] [--brave] [--hops N]
[--routing] [--json]``
    Answer the query over the network runtime with tracing on and
    render the distributed span tree — every hop's gather, per-
    neighbour fetches, and local evaluation, with durations and the
    critical path starred — plus the per-phase timing breakdown.

``metrics ADDR [--timeout S] [--json]``
    Ask one running peer server what it is doing: dial ``host:port``,
    send a ``GetStatus`` probe, and print the process's live counters,
    gauges, and latency-histogram summaries (connections, queue depth,
    sheds, retries, queue-wait/execute percentiles).

``store DATA_DIR [--json]``
    Inspect a ``--data-dir`` directory: per peer, the stored content
    version, delta-log sequence, pending (uncompacted) log entries, row
    counts, and cached answers.

``solutions SYSTEM.json PEER [--transitive]``
    Print the solutions for a peer (Definition 4, or the Section 4.3
    global solutions with ``--transitive``).

``methods``
    List the registered answer methods.

``report``
    Regenerate every experiment report (EX1–EX6, SC1–SC6) and print the
    rows to stdout (the repository keeps no generated report file; the
    benchmark modules under ``benchmarks/`` are the source of truth).

``examples``
    Run the bundled example scripts.

The ``report`` and ``examples`` commands locate ``benchmarks/`` and
``examples/`` relative to the installed package (they live next to the
``src`` tree in a source checkout) and load the scripts by file path —
no ``sys.path`` mutation.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path


def _script_dir(kind: str) -> Path:
    """The repo-level ``benchmarks``/``examples`` directory, resolved
    relative to this package (``<root>/src/repro/__main__.py`` →
    ``<root>/<kind>``)."""
    root = Path(__file__).resolve().parent.parent.parent
    directory = root / kind
    if not directory.is_dir():
        raise FileNotFoundError(
            f"no {kind}/ directory next to the package "
            f"(looked at {directory}); run from a source checkout")
    return directory


def _load_script(kind: str, name: str):
    path = _script_dir(kind) / f"{name}.py"
    if not path.exists():
        return None, str(path)
    spec = importlib.util.spec_from_file_location(f"{kind}_{name}",
                                                  str(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, str(path)


def _print_result(result, args: argparse.Namespace,
                  extra: dict | None = None) -> int:
    import json as json_
    if args.json:
        payload = result.to_dict()
        if extra:
            payload.update(extra)
        print(json_.dumps(payload, indent=2, sort_keys=True))
        if result.failed:
            return 3
        return 1 if result.no_solutions else 0
    if result.failed:
        print(f"network failure [{result.error.code}] at "
              f"{result.error.peer or args.peer}: {result.error.message}")
        return 3
    if result.no_solutions:
        print(f"peer {args.peer} has NO solutions "
              f"(contradictory exchange constraints)")
        return 1
    kind = "possible" if args.brave else "peer consistent"
    print(f"{kind} answers to {result.query} at {args.peer} "
          f"(method={result.method_used}):")
    for row in sorted(result.answers):
        print("  " + ", ".join(str(v) for v in row))
    if not result.answers:
        print("  (none)")
    count = ("not counted (rewriting answers without enumerating "
             "solutions)" if result.solution_count is None
             else str(result.solution_count))
    print(f"solutions certifying: {count}")
    exchange = result.exchange
    hops = (f", max {exchange.max_hops} hop(s)"
            if exchange.max_hops > 1 else "")
    print(f"elapsed: {result.elapsed * 1000:.1f} ms; peer requests: "
          f"{exchange.requests} ({exchange.tuples_transferred} tuples, "
          f"~{exchange.bytes_estimate} B{hops})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .core import load_system
    from .net import open_session
    system = load_system(args.system)
    # --routing/--tracing are network-runtime knobs; open_session
    # rejects them for the local backend with a typed error, so only
    # forward them when set
    extras = {}
    if args.routing:
        extras["routing"] = True
    if getattr(args, "tracing", False):
        extras["tracing"] = True
    session = open_session(system, network=args.network, **extras)
    semantics = "possible" if args.brave else "certain"
    try:
        # --brave --method rewrite is rejected by the method itself
        # (P2PError), rendered as a clean `error:` line by main()
        result = session.answer(args.peer, args.query,
                                method=args.method, semantics=semantics)
    finally:
        if args.network:
            session.close()
    return _print_result(result, args)


def _cmd_network(args: argparse.Namespace) -> int:
    from .core import load_system
    from .net import (LoopbackTransport, NetworkError, NetworkSession,
                      ThreadedTransport)
    if not 0.0 <= args.drop < 1.0:
        raise NetworkError("--drop must be in [0, 1)")
    if args.latency < 0:
        raise NetworkError("--latency must be >= 0")
    system = load_system(args.system)
    if args.latency or args.drop:
        transport = ThreadedTransport(latency=args.latency / 1000.0,
                                      drop_rate=args.drop,
                                      seed=args.seed)
    else:
        transport = LoopbackTransport()
    semantics = "possible" if args.brave else "certain"
    with NetworkSession(system, transport=transport,
                        hop_budget=args.hops, retries=args.retries,
                        concurrency=("sequential" if args.sequential
                                     else "fanout"),
                        timeout=args.timeout,
                        data_dir=args.data_dir,
                        routing=args.routing,
                        tracing=args.tracing) as session:
        if args.data_dir:
            # durable nodes resume from disk; the CLI treats the system
            # file as the operator's source of truth, so push its state
            # — a no-op when unchanged (caches stay warm), a logged
            # delta when the file was edited (neighbours then sync by
            # delta instead of re-fetching full relations)
            session.use_system(system)
        result = session.answer(args.peer, args.query,
                                method=args.method, semantics=semantics)
        trace = session.exchange_log.events()
        status = _print_result(result, args, extra={
            "exchange_trace": [
                {"requester": event.requester,
                 "provider": event.provider,
                 "relation": event.relation,
                 "tuples": event.tuples_transferred,
                 "bytes_estimate": event.bytes_estimate,
                 "purpose": event.purpose,
                 "hop": event.hop,
                 "timestamp": round(event.timestamp, 6)}
                for event in trace],
        })
        if not args.json:
            print(f"exchange trace ({len(trace)} message(s)):")
            for event in trace:
                print(f"  {event}")
            if not trace:
                print("  (no messages)")
            if result.trace:
                _print_trace(result)
    return status


def _print_trace(result) -> None:
    """Render a traced result's span tree, critical path, and
    per-phase timings (shared by `network --tracing` and `trace`)."""
    from .obs import TraceCollector
    collector = TraceCollector(result.trace)
    print(f"trace ({len(result.trace)} span(s), "
          f"depth {collector.depth()}; * = critical path):")
    print(collector.render())
    critical = collector.critical_path()
    if critical:
        print("critical path: "
              + " -> ".join(f"{span.name}@{span.peer}"
                            for span in critical))
    if result.timings:
        parts = ", ".join(f"{name}={value * 1000:.1f} ms"
                          for name, value in result.timings.items())
        print(f"timings: {parts}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import load_system
    from .net import NetworkSession
    system = load_system(args.system)
    semantics = "possible" if args.brave else "certain"
    with NetworkSession(system, hop_budget=args.hops,
                        routing=args.routing,
                        tracing=True) as session:
        result = session.answer(args.peer, args.query,
                                method=args.method, semantics=semantics)
    status = _print_result(result, args)
    if not args.json and not result.failed:
        _print_trace(result)
    return status


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json as json_
    from .wire import fetch_status
    status = fetch_status(args.address, timeout=args.timeout)
    if args.json:
        print(json_.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"unit {status.get('unit', '?')} (peer "
          f"{status.get('peer', '?')}) at "
          f"{status.get('address', args.address)}:")
    metrics = status.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    summaries = metrics.get("summaries", {})
    for name in sorted(counters):
        print(f"  {name} = {counters[name]}")
    for name in sorted(gauges):
        print(f"  {name} = {gauges[name]:g} (gauge)")
    for name in sorted(summaries):
        summary = summaries[name]
        print(f"  {name}: count={summary['count']} "
              f"mean={summary['mean'] * 1000:.2f}ms "
              f"p50={summary['p50'] * 1000:.2f}ms "
              f"p90={summary['p90'] * 1000:.2f}ms "
              f"p99={summary['p99'] * 1000:.2f}ms")
    if not (counters or gauges or summaries):
        print("  (no activity yet)")
    return 0


def _parse_peer_addresses(spec: str) -> dict:
    """``"P1=h:p,P2=h:p"`` → ``{"P1": "h:p", "P2": "h:p"}``."""
    from .wire import WireProtocolError
    addresses = {}
    for entry in filter(None, (part.strip()
                               for part in spec.split(","))):
        peer, sep, address = entry.partition("=")
        if not sep or not peer or not address:
            raise WireProtocolError(
                f"--peers entries must look like PEER=host:port, got "
                f"{entry!r}")
        addresses[peer.strip()] = address.strip()
    return addresses


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    from .core import load_system
    from .wire import PeerServer
    system = load_system(args.system)
    shard_map = None
    if args.shard_map:
        from .shard import ShardMap
        shard_map = ShardMap.from_json(args.shard_map)
    server = PeerServer(
        system, args.peer, host=args.host, port=args.port,
        addresses=_parse_peer_addresses(args.peers),
        data_dir=args.data_dir, hop_budget=args.hops,
        retries=args.retries, timeout=args.timeout,
        default_method=args.method,
        snapshot_every=args.snapshot_every,
        workers=args.workers, pending_limit=args.pending_limit,
        idle_timeout=args.idle_timeout,
        shard_map=shard_map, shard_index=args.shard,
        replica_index=args.replica,
        routing=args.routing, tracing=args.tracing)
    # SIGTERM (the supervisor's stop signal) must run the same cleanup
    # as Ctrl-C: a durable node flushes its caches only on a clean
    # shutdown, which is what makes the next start a warm restart
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    print(f"READY {server.unit} {server.address}", flush=True)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.shutdown()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .wire import open_wire_session
    semantics = "possible" if args.brave else "certain"
    with open_wire_session(args.system, host=args.host,
                           data_dir=args.data_dir,
                           hop_budget=args.hops, retries=args.retries,
                           timeout=args.timeout,
                           routing=args.routing,
                           tracing=args.tracing) as session:
        peers = session.peers()
        if not args.json:
            print(f"cluster up: {len(peers)} peer process(es) "
                  f"[{', '.join(peers)}]")
        result = session.answer(args.peer, args.query,
                                method=args.method,
                                semantics=semantics)
        status = _print_result(result, args)
        if not args.json:
            for event in session.exchange_log.events():
                print(f"  {event}")
            if result.trace:
                _print_trace(result)
    return status


def _cmd_store(args: argparse.Namespace) -> int:
    import json as json_
    from .storage import describe_data_dir
    described = describe_data_dir(args.data_dir)
    if args.json:
        print(json_.dumps(described, indent=2, sort_keys=True))
        return 0 if described else 1
    if not described:
        print(f"no peer stores under {args.data_dir}")
        return 1
    print(f"data directory: {args.data_dir}")
    for peer, info in described.items():
        relations = ", ".join(f"{name}={count}" for name, count
                              in info["relations"].items()) or "(empty)"
        print(f"  {peer}: version={info['version']} seq={info['seq']} "
              f"pending-log={info['pending_log_entries']} "
              f"answers={info['cached_answers']}")
        print(f"    relations: {relations}")
    return 0


def _cmd_solutions(args: argparse.Namespace) -> int:
    from .core import PeerQuerySession, load_system
    system = load_system(args.system)
    session = PeerQuerySession(system)
    method = "transitive" if args.transitive else "asp"
    solutions = session.solutions(args.peer, method=method)
    flavour = "global" if args.transitive else "direct"
    print(f"{len(solutions)} {flavour} solution(s) for {args.peer}:")
    for index, solution in enumerate(solutions, 1):
        print(f"  {index}: {solution}")
    return 0 if solutions else 1


def _cmd_methods(_args: argparse.Namespace) -> int:
    from .core import available_methods, get_method
    print("registered answer methods:")
    for name in available_methods():
        method = get_method(name)
        doc = ((method.__doc__ or "").strip().splitlines() or [""])[0]
        counted = ("enumerates solutions" if method.enumerates_solutions
                   else "does not enumerate solutions")
        print(f"  {name:10s} {doc} [{counted}]")
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    names = ["bench_example1", "bench_example2", "bench_section31",
             "bench_hcf_shift", "bench_lav", "bench_transitive",
             "bench_scaling_solutions", "bench_rewriting_vs_asp",
             "bench_hcf_ablation", "bench_transitive_scaling",
             "bench_engine_ablation", "bench_session_cache",
             "bench_network_fanout", "bench_store_restart"]
    for name in names:
        try:
            module, path = _load_script("benchmarks", name)
        except Exception as exc:  # keep the report going past one
            print(f"[skip] {name}: {exc}")  # broken benchmark module
            continue
        if module is None:
            print(f"[skip] {name}: not found at {path}")
            continue
        module.main()
        print()
    return 0


def _cmd_examples(_args: argparse.Namespace) -> int:
    for name in ["quickstart", "referential_exchange",
                 "transitive_network", "trading_network"]:
        try:
            module, path = _load_script("examples", name)
        except Exception as exc:
            print(f"[skip] {name}: {exc}")
            continue
        if module is None:
            print(f"[skip] {name}: not found at {path}")
            continue
        module.main()
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core import available_methods
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Peer-to-peer data exchange query answering "
                    "(Bertossi & Bravo, EDBT 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer a query at a peer")
    query.add_argument("system", help="JSON system definition")
    query.add_argument("peer")
    query.add_argument("query", help='e.g. "q(X, Y) := R1(X, Y)"')
    query.add_argument("--method", default="auto",
                       choices=list(available_methods()))
    query.add_argument("--brave", action="store_true",
                       help="possible (brave) answers instead of certain")
    query.add_argument("--network", action="store_true",
                       help="execute over the message-passing peer "
                            "network runtime instead of in-process")
    query.add_argument("--routing", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="consult the query-driven routing index "
                            "while gathering (requires --network)")
    query.add_argument("--tracing", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="record a distributed span tree for the "
                            "answer (requires --network; see the "
                            "`trace` command for a rendered tree)")
    query.add_argument("--json", action="store_true",
                       help="print the full QueryResult as JSON")
    query.set_defaults(func=_cmd_query)

    network = sub.add_parser(
        "network",
        help="answer a query over the peer network runtime and print "
             "the exchange trace")
    network.add_argument("system", help="JSON system definition")
    network.add_argument("peer")
    network.add_argument("query", help='e.g. "q(X, Y) := R1(X, Y)"')
    network.add_argument("--method", default="auto",
                         choices=list(available_methods()))
    network.add_argument("--brave", action="store_true",
                         help="possible (brave) answers instead of "
                              "certain")
    network.add_argument("--latency", type=float, default=0.0,
                         metavar="MS",
                         help="per-link delivery latency in ms "
                              "(ThreadedTransport)")
    network.add_argument("--drop", type=float, default=0.0, metavar="P",
                         help="seeded message drop probability in "
                              "[0, 1)")
    network.add_argument("--seed", type=int, default=0,
                         help="fault-injection RNG seed")
    network.add_argument("--hops", type=int, default=None, metavar="N",
                         help="hop budget for transitive gathers "
                              "(default: number of peers)")
    network.add_argument("--retries", type=int, default=2, metavar="N",
                         help="extra delivery attempts on transport "
                              "loss")
    network.add_argument("--sequential", action="store_true",
                         help="route neighbour requests one by one "
                              "instead of fanning out concurrently")
    network.add_argument("--data-dir", default=None, metavar="DIR",
                         help="make nodes durable under DIR/<peer>/ "
                              "(delta-log + snapshot store, persisted "
                              "answer cache, delta sync on re-runs)")
    network.add_argument("--timeout", type=float, default=None,
                         metavar="S",
                         help="end-to-end per-query budget in seconds "
                              "(expiry surfaces as a typed "
                              "deadline-exceeded error)")
    network.add_argument("--routing", default=False,
                         action=argparse.BooleanOptionalAction,
                         help="learn where the data is (content "
                              "digests + traffic mining) and skip or "
                              "shorten provably useless neighbour "
                              "exchanges; off by default — flooded "
                              "gathers are the reference behaviour")
    network.add_argument("--tracing", default=False,
                         action=argparse.BooleanOptionalAction,
                         help="record and render the distributed span "
                              "tree of the answer (gather, fetches, "
                              "local eval, per-hop serving)")
    network.add_argument("--json", action="store_true",
                         help="print the full QueryResult as JSON "
                              "including the exchange trace")
    network.set_defaults(func=_cmd_network)

    trace = sub.add_parser(
        "trace",
        help="answer a query with tracing on and render the span tree")
    trace.add_argument("system", help="JSON system definition")
    trace.add_argument("peer")
    trace.add_argument("query", help='e.g. "q(X, Y) := R1(X, Y)"')
    trace.add_argument("--method", default="auto",
                       choices=list(available_methods()))
    trace.add_argument("--brave", action="store_true",
                       help="possible (brave) answers instead of "
                            "certain")
    trace.add_argument("--hops", type=int, default=None, metavar="N",
                       help="hop budget for transitive gathers")
    trace.add_argument("--routing", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="trace a routed gather instead of a "
                            "flooded one")
    trace.add_argument("--json", action="store_true",
                       help="print the full QueryResult as JSON "
                            "including the raw spans")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="scrape a running peer server's live metrics over the "
             "wire (GetStatus)")
    metrics.add_argument("address", metavar="ADDR",
                         help="the unit's host:port (any unit can be "
                              "probed by address alone)")
    metrics.add_argument("--timeout", type=float, default=5.0,
                         metavar="S", help="probe timeout in seconds")
    metrics.add_argument("--json", action="store_true",
                         help="print the raw status payload as JSON")
    metrics.set_defaults(func=_cmd_metrics)

    serve = sub.add_parser(
        "serve",
        help="run one peer as a wire-protocol server process")
    serve.add_argument("system", help="JSON system definition")
    serve.add_argument("peer", help="the peer this process hosts")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="listening port (0 picks a free one)")
    serve.add_argument("--peers", default="", metavar="SPEC",
                       help="other peers' addresses, e.g. "
                            "'P2=127.0.0.1:7002,P3=127.0.0.1:7003'")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="durable node state under DIR/<peer>/")
    serve.add_argument("--hops", type=int, default=None, metavar="N",
                       help="hop budget for gathers (default: number "
                            "of peers in the system)")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="extra delivery attempts on transport loss")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="S",
                       help="end-to-end budget for each served gather")
    serve.add_argument("--method", default="auto",
                       choices=list(available_methods()),
                       help="the node's default answer method")
    serve.add_argument("--snapshot-every", type=int, default=64,
                       metavar="N",
                       help="compact the durable delta log every N "
                            "deltas")
    serve.add_argument("--workers", type=int, default=8, metavar="N",
                       help="worker threads answering admitted "
                            "requests (the event loop itself never "
                            "blocks on one)")
    serve.add_argument("--pending-limit", type=int, default=64,
                       metavar="N",
                       help="max admitted requests queued+running at "
                            "once; beyond it requests are shed with a "
                            "retryable 'overloaded' failure")
    serve.add_argument("--idle-timeout", type=float, default=60.0,
                       metavar="S",
                       help="reclaim a connection with no traffic and "
                            "nothing in flight for this many seconds")
    serve.add_argument("--shard-map", default="", metavar="JSON",
                       help="serialized ShardMap; this process hosts "
                            "one shard slice and routes through the "
                            "sharded topology in --peers")
    serve.add_argument("--shard", type=int, default=0, metavar="S",
                       help="which shard of PEER this process hosts")
    serve.add_argument("--replica", type=int, default=0, metavar="R",
                       help="which replica of the shard this is")
    serve.add_argument("--routing", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="maintain a routing index on this node and "
                            "advertise content digests to requesters")
    serve.add_argument("--tracing", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="open a fresh trace for queries answered "
                            "at this node's root (traced *requests* "
                            "are always served with spans)")
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="launch one process per peer and answer a query over the "
             "live cluster")
    cluster.add_argument("system", help="JSON system definition")
    cluster.add_argument("peer")
    cluster.add_argument("query", help='e.g. "q(X, Y) := R1(X, Y)"')
    cluster.add_argument("--method", default="auto",
                         choices=list(available_methods()))
    cluster.add_argument("--brave", action="store_true",
                         help="possible (brave) answers instead of "
                              "certain")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--data-dir", default=None, metavar="DIR",
                         help="durable peer processes under "
                              "DIR/<peer>/ (warm restarts, delta "
                              "re-sync)")
    cluster.add_argument("--hops", type=int, default=None, metavar="N")
    cluster.add_argument("--retries", type=int, default=2, metavar="N")
    cluster.add_argument("--timeout", type=float, default=None,
                         metavar="S",
                         help="end-to-end per-query budget in seconds")
    cluster.add_argument("--routing", default=False,
                         action=argparse.BooleanOptionalAction,
                         help="turn the routing index on in every "
                              "peer server process")
    cluster.add_argument("--tracing", default=False,
                         action=argparse.BooleanOptionalAction,
                         help="trace the query across every server "
                              "process and render the reassembled "
                              "span tree")
    cluster.add_argument("--json", action="store_true",
                         help="print the full QueryResult as JSON")
    cluster.set_defaults(func=_cmd_cluster)

    store = sub.add_parser(
        "store",
        help="inspect a durable node data directory (versions, logs, "
             "cached answers)")
    store.add_argument("data_dir", help="the --data-dir used by "
                                        "`network`")
    store.add_argument("--json", action="store_true",
                       help="print the description as JSON")
    store.set_defaults(func=_cmd_store)

    solutions = sub.add_parser("solutions",
                               help="print the solutions for a peer")
    solutions.add_argument("system")
    solutions.add_argument("peer")
    solutions.add_argument("--transitive", action="store_true")
    solutions.set_defaults(func=_cmd_solutions)

    methods = sub.add_parser("methods",
                             help="list the registered answer methods")
    methods.set_defaults(func=_cmd_methods)

    report = sub.add_parser("report",
                            help="regenerate the experiment reports")
    report.set_defaults(func=_cmd_report)

    examples = sub.add_parser("examples",
                              help="run the bundled examples")
    examples.set_defaults(func=_cmd_examples)
    return parser


def main(argv: list[str] | None = None) -> int:
    import json
    from .core import P2PError
    from .relational.errors import RelationalError
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (P2PError, RelationalError, FileNotFoundError,
            json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
