"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query SYSTEM.json PEER QUERY [--method M] [--brave]``
    Answer a query posed to a peer of a JSON-defined system
    (see :mod:`repro.core.io` for the file format).

``solutions SYSTEM.json PEER [--transitive]``
    Print the solutions for a peer (Definition 4, or the Section 4.3
    global solutions with ``--transitive``).

``report``
    Regenerate every experiment report (EX1–EX6, SC1–SC4) — the rows
    recorded in EXPERIMENTS.md.

``examples``
    Run the four bundled example scripts.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_query(args: argparse.Namespace) -> int:
    from .core import PeerConsistentEngine, load_system
    from .core.pca import possible_peer_answers
    from .relational import parse_query
    system = load_system(args.system)
    query = parse_query(args.query)
    if args.brave:
        result = possible_peer_answers(system, args.peer, query)
        kind = "possible"
    else:
        engine = PeerConsistentEngine(system, method=args.method)
        result = engine.peer_consistent_answers(args.peer, query)
        kind = "peer consistent"
    if result.no_solutions:
        print(f"peer {args.peer} has NO solutions "
              f"(contradictory exchange constraints)")
        return 1
    print(f"{kind} answers to {query} at {args.peer} "
          f"(method={args.method}):")
    for row in sorted(result.answers):
        print("  " + ", ".join(str(v) for v in row))
    if not result.answers:
        print("  (none)")
    return 0


def _cmd_solutions(args: argparse.Namespace) -> int:
    from .core import PeerConsistentEngine, load_system
    system = load_system(args.system)
    engine = PeerConsistentEngine(system, method="asp",
                                  transitive=args.transitive)
    solutions = engine.solutions(args.peer)
    flavour = "global" if args.transitive else "direct"
    print(f"{len(solutions)} {flavour} solution(s) for {args.peer}:")
    for index, solution in enumerate(solutions, 1):
        print(f"  {index}: {solution}")
    return 0 if solutions else 1


def _cmd_report(_args: argparse.Namespace) -> int:
    import importlib
    names = ["bench_example1", "bench_example2", "bench_section31",
             "bench_hcf_shift", "bench_lav", "bench_transitive",
             "bench_scaling_solutions", "bench_rewriting_vs_asp",
             "bench_hcf_ablation", "bench_transitive_scaling",
             "bench_engine_ablation"]
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.dirname(os.path.dirname(__file__))), "benchmarks"))
    for name in names:
        try:
            module = importlib.import_module(name)
        except ImportError as exc:
            print(f"[skip] {name}: {exc}")
            continue
        module.main()
        print()
    return 0


def _cmd_examples(_args: argparse.Namespace) -> int:
    import importlib.util
    import os
    base = os.path.join(os.path.dirname(
        os.path.dirname(os.path.dirname(__file__))), "examples")
    for name in ["quickstart", "referential_exchange",
                 "transitive_network", "trading_network"]:
        path = os.path.join(base, f"{name}.py")
        if not os.path.exists(path):
            print(f"[skip] {name}: not found at {path}")
            continue
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Peer-to-peer data exchange query answering "
                    "(Bertossi & Bravo, EDBT 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer a query at a peer")
    query.add_argument("system", help="JSON system definition")
    query.add_argument("peer")
    query.add_argument("query", help='e.g. "q(X, Y) := R1(X, Y)"')
    query.add_argument("--method", default="asp",
                       choices=["model", "asp", "lav", "rewrite"])
    query.add_argument("--brave", action="store_true",
                       help="possible (brave) answers instead of certain")
    query.set_defaults(func=_cmd_query)

    solutions = sub.add_parser("solutions",
                               help="print the solutions for a peer")
    solutions.add_argument("system")
    solutions.add_argument("peer")
    solutions.add_argument("--transitive", action="store_true")
    solutions.set_defaults(func=_cmd_solutions)

    report = sub.add_parser("report",
                            help="regenerate the experiment reports")
    report.set_defaults(func=_cmd_report)

    examples = sub.add_parser("examples",
                              help="run the bundled examples")
    examples.set_defaults(func=_cmd_examples)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
