"""The in-memory :class:`FactStore` backend.

This is the storage every peer implicitly used before the storage layer
existed — a current instance plus nothing else — made explicit and
versioned: the delta history lives in process memory (bounded by
``max_history``), so in-process peers get delta sync for free, and
nothing survives a restart.  Behaviour of the stored instance is
byte-for-byte what :class:`~repro.relational.instance.DatabaseInstance`
always did; only the bookkeeping around it is new.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import FactStore
from .deltas import Delta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.instance import DatabaseInstance

__all__ = ["MemoryFactStore"]


class MemoryFactStore(FactStore):
    """Versioned fact storage with in-memory history only."""

    def __init__(self, instance: "DatabaseInstance", *,
                 max_history: int = 256) -> None:
        super().__init__(instance, max_history=max_history)

    def _persist_delta(self, delta: Delta) -> None:
        pass  # history retention in the base class is all there is
