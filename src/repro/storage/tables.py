"""The in-memory fact storage extracted from ``DatabaseInstance``.

Historically every :class:`~repro.relational.instance.DatabaseInstance`
carried a private ``dict[str, frozenset]`` as its fact storage.  That
mapping is now a first-class object, :class:`FactTable`, so the same
storage primitive can back

* the relational layer (instances delegate all row access to their
  table),
* the versioned :class:`~repro.storage.base.FactStore` backends (the
  durable store snapshots and replays tables), and
* content fingerprinting (:meth:`FactTable.fingerprint` is the basis of
  restart-stable version tokens).

A :class:`FactTable` is an immutable ``Mapping[str, frozenset]`` —
functional updates return new tables, exactly like the instances built
on top of it.  It knows nothing about schemas; arity validation stays
with :class:`~repro.relational.instance.DatabaseInstance`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping as MappingABC
from typing import Iterable, Iterator, Mapping, Optional

__all__ = ["FactTable", "encode_value", "row_sort_key"]


def encode_value(value: object) -> str:
    """A canonical, type-tagged text encoding of one stored value.

    Distinguishes ``1`` from ``"1"`` (and ``True`` from both), so
    fingerprints never collide across types that merely print alike.
    """
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, int):  # covers bool: repr keeps them apart
        return "i:" + repr(value)
    return "r:" + repr(value)


def row_sort_key(row: Iterable[object]) -> tuple:
    """A total order over rows that survives mixed value types."""
    return tuple(encode_value(value) for value in row)


class FactTable(MappingABC):
    """An immutable mapping ``relation name -> frozenset of row tuples``.

    This is the storage primitive behind instances and fact stores:
    plain relation/row access plus functional updates and a canonical
    content fingerprint.  Rows are raw value tuples; relation presence
    (including empty relations) is part of the content.
    """

    __slots__ = ("_tables", "_fingerprint")

    def __init__(self, tables: Optional[Mapping[str, Iterable[tuple]]]
                 = None) -> None:
        frozen: dict[str, frozenset] = {}
        if tables is not None:
            if isinstance(tables, FactTable):
                frozen = dict(tables._tables)
            else:
                for name, rows in tables.items():
                    frozen[name] = (rows if isinstance(rows, frozenset)
                                    else frozenset(tuple(row)
                                                   for row in rows))
        self._tables = frozen
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Mapping protocol (keys/items/values/get/__eq__ via the ABC mixin)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> frozenset:
        return self._tables[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def rows(self, name: str) -> frozenset:
        """The rows of one relation (``KeyError`` on unknown names)."""
        return self._tables[name]

    def row_count(self, name: str) -> int:
        return len(self._tables[name])

    def size(self) -> int:
        """Total number of stored rows across all relations."""
        return sum(len(rows) for rows in self._tables.values())

    def pairs(self) -> Iterator[tuple[str, tuple]]:
        """Every stored ``(relation, row)`` pair."""
        for name, rows in self._tables.items():
            for row in rows:
                yield name, row

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_relations(self, replacement: Mapping[str, frozenset]
                       ) -> "FactTable":
        """A new table with whole relations swapped out or added."""
        tables = dict(self._tables)
        for name, rows in replacement.items():
            tables[name] = (rows if isinstance(rows, frozenset)
                            else frozenset(tuple(row) for row in rows))
        return FactTable._adopt(tables)

    def restrict(self, names: Iterable[str]) -> "FactTable":
        """A new table holding only the named relations."""
        return FactTable._adopt({name: self._tables[name]
                                 for name in names})

    def union(self, other: "FactTable") -> "FactTable":
        """A new table over the (disjointly named) union of relations."""
        tables = dict(self._tables)
        tables.update(other._tables)
        return FactTable._adopt(tables)

    @classmethod
    def _adopt(cls, tables: dict[str, frozenset]) -> "FactTable":
        """Internal constructor for already-frozen relation dicts."""
        table = cls.__new__(cls)
        table._tables = tables
        table._fingerprint = None
        return table

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A deterministic content hash of the stored facts.

        Stable across processes and restarts (no reliance on Python's
        salted ``hash``), order-independent, and sensitive to relation
        *presence* — an empty relation and a missing one differ.  This
        is the basis of every restart-stable version token in the
        system.
        """
        cached = self._fingerprint
        if cached is None:
            digest = hashlib.sha256()
            for name in sorted(self._tables):
                digest.update(b"\x00R")
                digest.update(name.encode("utf-8"))
                for row in sorted(self._tables[name], key=row_sort_key):
                    digest.update(b"\x00t")
                    for value in row:
                        digest.update(b"\x1f")
                        digest.update(encode_value(value)
                                      .encode("utf-8"))
            cached = digest.hexdigest()[:16]
            self._fingerprint = cached
        return cached

    def __repr__(self) -> str:
        return f"FactTable({len(self._tables)} relations, {self.size()} rows)"
