"""repro.storage — the versioned fact-storage layer.

Sits between the relational layer (which consumes immutable
:class:`~repro.relational.instance.DatabaseInstance` values) and the
peer runtime (which owns *evolving* per-peer data):

:mod:`repro.storage.tables`
    :class:`FactTable` — the in-memory fact storage extracted from
    ``DatabaseInstance`` (immutable relation→rows mapping with a
    canonical content fingerprint).
:mod:`repro.storage.deltas`
    :class:`Delta` — normalised, versioned change sets between
    instances, with a JSON codec and chain-merging helpers.
:mod:`repro.storage.base`
    :class:`FactStore` — the ABC for a peer's stateful, versioned fact
    storage (current instance, content version, retained delta history,
    ``deltas_since``).
:mod:`repro.storage.memory`
    :class:`MemoryFactStore` — history in memory, nothing on disk.
:mod:`repro.storage.durable`
    :class:`DurableFactStore` — per-relation append-only delta logs
    plus periodic snapshots under a directory, replayed on
    construction; :func:`describe_data_dir` for inspection.

Version tokens everywhere in this layer are *content fingerprints* —
stable across processes and restarts — never process-local counters.
"""

from .base import FactStore, StorageError
from .deltas import Delta, apply_delta, delta_between, merge_relation_rows
from .durable import DurableFactStore, describe_data_dir
from .memory import MemoryFactStore
from .tables import FactTable, row_sort_key

__all__ = [
    "FactTable", "row_sort_key",
    "Delta", "delta_between", "apply_delta", "merge_relation_rows",
    "FactStore", "StorageError",
    "MemoryFactStore",
    "DurableFactStore", "describe_data_dir",
]
