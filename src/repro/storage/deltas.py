"""Versioned deltas between database instances.

A :class:`Delta` is the unit of change the storage layer logs, ships,
and replays: the exact ``(relation, row)`` insertions and deletions that
take an instance from ``base_version`` to ``version``, where both
versions are content fingerprints (:meth:`FactTable.fingerprint
<repro.storage.tables.FactTable.fingerprint>` — restart-stable, never
process-local counters).  Because versions are content-derived, a delta
computed in one process applies verbatim in another: if the requester's
cached rows fingerprint to ``base_version``, replaying the delta is
guaranteed to reproduce ``version`` exactly.

Deltas are *normalised*: insertions already present and deletions
already absent are dropped at construction
(:func:`delta_between` diffs real row sets), so replay is idempotent in
the only way that matters — applying a delta to an instance at its base
version always lands exactly on the target content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from .tables import row_sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.instance import DatabaseInstance

__all__ = ["Delta", "delta_between", "apply_delta", "merge_relation_rows"]


def _sorted_pairs(pairs: Iterable[tuple[str, tuple]]
                  ) -> tuple[tuple[str, tuple], ...]:
    return tuple(sorted(((relation, tuple(row)) for relation, row in pairs),
                        key=lambda pair: (pair[0], row_sort_key(pair[1]))))


@dataclass(frozen=True)
class Delta:
    """One versioned change: ``base_version`` --insert/delete--> ``version``.

    ``insertions``/``deletions`` are sorted ``(relation, row)`` pairs;
    ``seq`` is the store-local log position (0 for unlogged deltas).
    """

    base_version: str
    version: str
    insertions: tuple[tuple[str, tuple], ...] = ()
    deletions: tuple[tuple[str, tuple], ...] = ()
    seq: int = 0

    @property
    def empty(self) -> bool:
        return not self.insertions and not self.deletions

    def relations(self) -> tuple[str, ...]:
        """The relations this delta touches, sorted."""
        return tuple(sorted({relation for relation, _row in
                             self.insertions + self.deletions}))

    def size(self) -> int:
        """Total changed rows (the shipped payload size in rows)."""
        return len(self.insertions) + len(self.deletions)

    # ------------------------------------------------------------------
    # Dict codec (JSON-friendly; rows become lists)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "base": self.base_version,
            "version": self.version,
            "seq": self.seq,
            "insert": [[relation, list(row)]
                       for relation, row in self.insertions],
            "delete": [[relation, list(row)]
                       for relation, row in self.deletions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Delta":
        return cls(
            base_version=data["base"],
            version=data["version"],
            seq=data.get("seq", 0),
            insertions=_sorted_pairs(
                (relation, tuple(row)) for relation, row in data["insert"]),
            deletions=_sorted_pairs(
                (relation, tuple(row)) for relation, row in data["delete"]),
        )

    def __repr__(self) -> str:
        return (f"Delta({self.base_version} -> {self.version}, "
                f"+{len(self.insertions)}/-{len(self.deletions)} rows)")


def delta_between(base: "DatabaseInstance", target: "DatabaseInstance",
                  *, seq: int = 0) -> Delta:
    """The exact normalised delta taking ``base`` to ``target``.

    Both instances must share a schema (same relation names); the
    relational layer enforces that before stores ever diff.
    """
    insertions: list[tuple[str, tuple]] = []
    deletions: list[tuple[str, tuple]] = []
    for relation in base.relations():
        old_rows = base.tuples(relation)
        new_rows = target.tuples(relation)
        if old_rows is new_rows or old_rows == new_rows:
            continue
        insertions.extend((relation, row) for row in new_rows - old_rows)
        deletions.extend((relation, row) for row in old_rows - new_rows)
    return Delta(base_version=base.fingerprint(),
                 version=target.fingerprint(),
                 insertions=_sorted_pairs(insertions),
                 deletions=_sorted_pairs(deletions),
                 seq=seq)


def apply_delta(instance: "DatabaseInstance", delta: Delta
                ) -> "DatabaseInstance":
    """Replay one delta onto an instance via its functional updates.

    Goes through :meth:`~repro.relational.instance.DatabaseInstance.apply_change`,
    so already-built :class:`~repro.relational.indexes.TupleIndex`
    objects are maintained incrementally rather than rebuilt.
    """
    from ..relational.instance import Fact
    return instance.apply_change(
        insertions=[Fact(relation, row)
                    for relation, row in delta.insertions],
        deletions=[Fact(relation, row)
                   for relation, row in delta.deletions])


def merge_relation_rows(deltas: Sequence[Delta], relation: str
                        ) -> tuple[frozenset, frozenset]:
    """Collapse a delta chain into one ``(insertions, deletions)`` pair
    for a single relation.

    A row inserted then deleted (or vice versa) cancels out, so the
    merged pair is the minimal change a requester must apply to rows at
    the chain's base version to reach its final version.

    Minimality uses the fact that deltas are normalised: the *first*
    operation the chain performs on a row reveals its presence at the
    base (a first insert means it was absent, a first delete means it
    was present), so rows that end where they started are dropped.
    """
    initially_present: dict[tuple, bool] = {}
    finally_present: dict[tuple, bool] = {}
    for delta in deltas:
        for rel, row in delta.deletions:
            if rel != relation:
                continue
            initially_present.setdefault(row, True)
            finally_present[row] = False
        for rel, row in delta.insertions:
            if rel != relation:
                continue
            initially_present.setdefault(row, False)
            finally_present[row] = True
    inserted = frozenset(row for row, present in finally_present.items()
                         if present and not initially_present[row])
    deleted = frozenset(row for row, present in finally_present.items()
                        if not present and initially_present[row])
    return inserted, deleted
