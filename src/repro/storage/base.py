"""The :class:`FactStore` ABC: a peer's versioned, mutable fact storage.

Where :class:`~repro.relational.instance.DatabaseInstance` is an
immutable *value*, a :class:`FactStore` is the stateful *owner* of a
peer's facts over time: it holds the current instance, derives a
restart-stable content version for it, records every applied change as
a normalised :class:`~repro.storage.deltas.Delta`, and can stream the
deltas separating any recently-held version from the current one —
which is what lets :mod:`repro.net` nodes sync with versioned deltas
instead of full re-gathers.

Two backends implement the persistence hook:

* :class:`~repro.storage.memory.MemoryFactStore` — history in memory
  only (the extracted in-process storage; what every node used
  implicitly before this layer existed);
* :class:`~repro.storage.durable.DurableFactStore` — per-relation
  append-only delta logs plus periodic snapshots under a directory,
  reloaded (snapshot + log replay) on construction.

All mutation goes through :meth:`FactStore.apply_change` /
:meth:`FactStore.replace`, is serialised under the store's lock, and
maintains the current instance *incrementally* (functional updates, so
already-built tuple indexes carry over instead of being rebuilt).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional

from ..relational.errors import RelationalError
from .deltas import Delta, apply_delta, delta_between

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.instance import DatabaseInstance, Fact
    from ..relational.schema import DatabaseSchema

__all__ = ["FactStore", "StorageError"]


class StorageError(RelationalError):
    """Malformed or inconsistent fact storage (schema mismatch on
    reload, unserialisable values, broken delta chain)."""


class FactStore(ABC):
    """Versioned, mutable fact storage for one peer's schema.

    Subclasses provide persistence by overriding :meth:`_persist_delta`
    (called with every non-empty applied delta, under the store lock)
    and optionally :meth:`flush`/:meth:`close`.
    """

    def __init__(self, instance: "DatabaseInstance", *,
                 max_history: int = 256) -> None:
        if max_history < 0:
            raise StorageError("max_history must be >= 0")
        self._instance = instance
        self._history: list[Delta] = []
        self._seq = 0
        self._max_history = max_history
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def schema(self) -> "DatabaseSchema":
        return self._instance.schema

    @property
    def instance(self) -> "DatabaseInstance":
        """The current snapshot (an immutable instance; always safe to
        hand out)."""
        return self._instance

    def version(self) -> str:
        """The restart-stable content fingerprint of the current data."""
        return self._instance.fingerprint()

    @property
    def seq(self) -> int:
        """The sequence number of the last applied delta."""
        return self._seq

    def tuples(self, relation: str) -> frozenset:
        return self._instance.tuples(relation)

    def relations(self) -> tuple[str, ...]:
        return self._instance.relations()

    # ------------------------------------------------------------------
    # Version history
    # ------------------------------------------------------------------
    def history(self) -> tuple[Delta, ...]:
        """The retained delta chain, oldest first."""
        with self._lock:
            return tuple(self._history)

    def deltas_since(self, version: str) -> Optional[list[Delta]]:
        """The delta chain from ``version`` to the current version.

        Returns ``[]`` when ``version`` *is* the current version, the
        chain when it is a retained past version, and ``None`` when it
        is unknown (never held, or compacted/trimmed away) — callers
        must then fall back to a full transfer.
        """
        with self._lock:
            if version == self.version():
                return []
            for index in range(len(self._history) - 1, -1, -1):
                if self._history[index].base_version == version:
                    return list(self._history[index:])
            return None

    def fetch_state(self, relation: str, known_version: str = ""
                    ) -> tuple[str, Optional[list[Delta]], frozenset]:
        """One atomic read for serving a relation fetch.

        Returns ``(current version, delta chain or None, rows)`` under
        the store lock, so a concurrent update can never make a reply
        stamp an older version than the rows (or chain) it ships.
        """
        with self._lock:
            chain = (self.deltas_since(known_version)
                     if known_version else None)
            return self.version(), chain, self.tuples(relation)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_change(self, insertions: Iterable["Fact"] = (),
                     deletions: Iterable["Fact"] = ()) -> Delta:
        """Apply a change; log and return the *normalised* delta.

        No-op changes (inserting present rows, deleting absent ones)
        produce an empty delta, are not logged, and leave the version
        untouched.
        """
        with self._lock:
            target = self._instance.apply_change(insertions, deletions)
            return self._adopt(target)

    def replace(self, instance: "DatabaseInstance") -> Delta:
        """Move the store to ``instance``'s content, logging the diff.

        The new snapshot is produced by replaying the computed delta
        onto the *current* instance (not by adopting the argument), so
        index sharing and incremental maintenance behave exactly as for
        :meth:`apply_change`.
        """
        if instance.schema != self.schema:
            raise StorageError(
                "replacement instance does not match the store schema")
        with self._lock:
            delta = delta_between(self._instance, instance,
                                  seq=self._seq + 1)
            if delta.empty:
                return delta
            self._instance = apply_delta(self._instance, delta)
            self._record(delta)
            return delta

    def _adopt(self, target: "DatabaseInstance") -> Delta:
        delta = delta_between(self._instance, target, seq=self._seq + 1)
        if delta.empty:
            return delta
        self._instance = target
        self._record(delta)
        return delta

    def _record(self, delta: Delta) -> None:
        self._seq = delta.seq
        self._history.append(delta)
        if len(self._history) > self._max_history:
            del self._history[:len(self._history) - self._max_history]
        self._persist_delta(delta)

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _persist_delta(self, delta: Delta) -> None:
        """Durably record one applied delta (no-op for memory stores)."""

    def flush(self) -> None:
        """Force buffered state out (default: nothing buffered)."""

    def close(self) -> None:
        """Release resources; the store must not be mutated afterwards."""
        self.flush()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self._instance.size()} rows, "
                f"version={self.version()}, "
                f"{len(self._history)} retained delta(s))")
