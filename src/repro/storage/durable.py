"""The durable :class:`FactStore` backend: delta logs + snapshots.

Directory layout (one store per peer)::

    <dir>/
      meta.json          {"format": 1, "version": ..., "seq": ...}
      snapshot.json      {"format": 1, "schema": {R: arity, ...},
                          "version": ..., "seq": ...,
                          "relations": {R: [[...], ...], ...}}
      log/<relation>.jsonl   one JSON line per delta touching the
                             relation: {"seq", "base", "version",
                             "insert": [[...]], "delete": [[...]]}

Write path: every applied delta appends one line per touched relation
to that relation's log (append-only, write-through) and atomically
refreshes ``meta.json``.  After ``snapshot_every`` logged deltas the
store *compacts*: the current instance is written as a fresh snapshot
and the logs are truncated (versions older than the snapshot are then
forgotten — delta requests for them fall back to full transfers).

Read path (construction over an existing directory): load the snapshot,
validate it against the caller's schema, then replay the logs in
``seq`` order — each replayed delta goes through the instance's
functional updates, so tuple indexes are maintained incrementally, and
the retained history is rebuilt so delta requests work immediately
after a restart.  A torn tail (partly-written final delta, e.g. a
killed process) is detected by the delta chain's content fingerprints
and dropped, then compacted away.

Values must be JSON-representable (the system's str/int domain values
are); anything else raises :class:`~repro.storage.base.StorageError`
rather than corrupting the log.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from .base import FactStore, StorageError
from .deltas import Delta, apply_delta
from .tables import row_sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.instance import DatabaseInstance
    from ..relational.schema import DatabaseSchema

__all__ = ["DurableFactStore", "describe_data_dir", "write_json_atomic"]

_FORMAT = 1


def write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
    except (TypeError, ValueError) as exc:
        tmp.unlink(missing_ok=True)
        raise StorageError(
            f"cannot serialise store state to {path.name}: {exc}") from exc
    os.replace(tmp, path)


class DurableFactStore(FactStore):
    """Versioned fact storage persisted under a directory."""

    def __init__(self, directory: Union[str, Path],
                 schema: "DatabaseSchema", *,
                 initial: Optional["DatabaseInstance"] = None,
                 snapshot_every: int = 64,
                 max_history: int = 256,
                 readonly: bool = False) -> None:
        if snapshot_every < 1:
            raise StorageError("snapshot_every must be >= 1")
        from ..relational.instance import DatabaseInstance
        self.directory = Path(directory)
        self.log_dir = self.directory / "log"
        self.snapshot_every = snapshot_every
        self.readonly = readonly
        self._pending = 0  # logged deltas since the last snapshot
        if not readonly:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.log_dir.mkdir(exist_ok=True)

        if (self.directory / "snapshot.json").is_file():
            instance, history, seq, dropped_tail = self._load(schema)
            super().__init__(instance, max_history=max_history)
            self._history = history[-max_history:] if max_history else []
            self._seq = seq
            self._pending = len(history)
            if readonly:
                return  # inspection must never write (a live owner may
                # be appending to these very logs)
            if dropped_tail:
                # a torn write left an unusable tail; rewrite clean state
                self._compact()
            elif self._pending >= self.snapshot_every:
                self._compact()
        else:
            if readonly:
                raise StorageError(
                    f"no store to read at {self.directory}")
            if initial is None:
                initial = DatabaseInstance(schema)
            elif initial.schema != schema:
                raise StorageError(
                    "initial instance does not match the store schema")
            super().__init__(initial, max_history=max_history)
            self._compact()  # first snapshot seeds the directory

    # ------------------------------------------------------------------
    # Load: snapshot + ordered log replay
    # ------------------------------------------------------------------
    def _load(self, schema: "DatabaseSchema"
              ) -> tuple["DatabaseInstance", list[Delta], int, bool]:
        from ..relational.instance import DatabaseInstance
        try:
            with open(self.directory / "snapshot.json",
                      encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"unreadable snapshot in {self.directory}: {exc}") from exc
        stored = {name: int(arity)
                  for name, arity in snapshot.get("schema", {}).items()}
        declared = {name: schema.arity(name) for name in schema.names}
        if stored != declared:
            raise StorageError(
                f"store at {self.directory} was written for schema "
                f"{stored}, not {declared}")
        instance = DatabaseInstance(
            schema, {name: [tuple(row) for row in rows]
                     for name, rows in snapshot.get("relations",
                                                    {}).items()})
        seq = int(snapshot.get("seq", 0))

        entries, truncated = self._read_log_entries()
        history: list[Delta] = []
        # an undecodable log line (torn write) must trigger compaction:
        # appending after garbage would strand every later delta
        dropped_tail = truncated
        for entry_seq in sorted(entries):
            if entry_seq <= seq:
                continue  # already folded into the snapshot
            delta = entries[entry_seq]
            if delta.base_version != instance.fingerprint():
                # torn multi-relation write or out-of-order tail: the
                # chain no longer applies — drop it (and everything
                # after) like a truncated WAL tail
                dropped_tail = True
                break
            instance = apply_delta(instance, delta)
            if instance.fingerprint() != delta.version:
                dropped_tail = True
                break
            history.append(delta)
            seq = entry_seq
        return instance, history, seq, dropped_tail

    def _read_log_entries(self) -> tuple[dict[int, Delta], bool]:
        grouped: dict[int, dict] = {}
        truncated = False
        for log_file in sorted(self.log_dir.glob("*.jsonl")):
            relation = log_file.stem
            try:
                lines = log_file.read_text(encoding="utf-8").splitlines()
            except OSError as exc:
                raise StorageError(
                    f"unreadable log {log_file}: {exc}") from exc
            for line in lines:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    truncated = True
                    break  # torn tail of this relation's log
                entry = grouped.setdefault(int(record["seq"]), {
                    "base": record["base"],
                    "version": record["version"],
                    "insert": [],
                    "delete": [],
                })
                entry["insert"].extend(
                    (relation, tuple(row)) for row in record["insert"])
                entry["delete"].extend(
                    (relation, tuple(row)) for row in record["delete"])
        return {
            seq: Delta(base_version=entry["base"],
                       version=entry["version"],
                       insertions=tuple(sorted(
                           entry["insert"],
                           key=lambda p: (p[0], row_sort_key(p[1])))),
                       deletions=tuple(sorted(
                           entry["delete"],
                           key=lambda p: (p[0], row_sort_key(p[1])))),
                       seq=seq)
            for seq, entry in grouped.items()
        }, truncated

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _persist_delta(self, delta: Delta) -> None:
        if self.readonly:
            raise StorageError(
                f"store at {self.directory} was opened read-only")
        per_relation: dict[str, dict] = {}
        for relation, row in delta.insertions:
            per_relation.setdefault(
                relation, {"insert": [], "delete": []}
            )["insert"].append(list(row))
        for relation, row in delta.deletions:
            per_relation.setdefault(
                relation, {"insert": [], "delete": []}
            )["delete"].append(list(row))
        for relation, change in per_relation.items():
            record = {"seq": delta.seq, "base": delta.base_version,
                      "version": delta.version,
                      "insert": change["insert"],
                      "delete": change["delete"]}
            try:
                line = json.dumps(record, sort_keys=True)
            except (TypeError, ValueError) as exc:
                raise StorageError(
                    f"cannot serialise delta for relation "
                    f"{relation!r}: {exc}") from exc
            with open(self.log_dir / f"{relation}.jsonl", "a",
                      encoding="utf-8") as handle:
                handle.write(line + "\n")
        self._pending += 1
        if self._pending >= self.snapshot_every:
            self._compact()
        else:
            self._write_meta()

    def _write_meta(self) -> None:
        write_json_atomic(self.directory / "meta.json", {
            "format": _FORMAT,
            "version": self.version(),
            "seq": self._seq,
        })

    def compact(self) -> None:
        """Fold the logs into a fresh snapshot now (also runs
        automatically every ``snapshot_every`` logged deltas)."""
        if self.readonly:
            raise StorageError(
                f"store at {self.directory} was opened read-only")
        with self._lock:
            self._compact()

    def _compact(self) -> None:
        instance = self._instance
        write_json_atomic(self.directory / "snapshot.json", {
            "format": _FORMAT,
            "schema": {name: instance.schema.arity(name)
                       for name in instance.schema.names},
            "version": self.version(),
            "seq": self._seq,
            "relations": {
                relation: sorted(
                    ([*row] for row in instance.tuples(relation)),
                    key=row_sort_key)
                for relation in instance.relations()
                if instance.tuples(relation)},
        })
        for log_file in self.log_dir.glob("*.jsonl"):
            log_file.unlink()
        self._pending = 0
        self._write_meta()

    def flush(self) -> None:
        if self.readonly:
            return
        with self._lock:
            self._write_meta()

    # ------------------------------------------------------------------
    def pending_log_entries(self) -> int:
        """Logged deltas not yet folded into the snapshot."""
        with self._lock:
            return self._pending

    def __repr__(self) -> str:
        return (f"DurableFactStore({str(self.directory)!r}, "
                f"version={self.version()}, seq={self._seq}, "
                f"{self._pending} pending log entr(ies))")


# ---------------------------------------------------------------------------
# Inspection (the CLI `store` command)
# ---------------------------------------------------------------------------

def describe_data_dir(path: Union[str, Path]) -> dict:
    """Describe every peer store under a node data directory.

    Returns ``{peer_name: {"version", "seq", "pending_log_entries",
    "relations": {name: row_count}, "cached_answers"}}`` — enough for an
    operator to see what a durable node would reload, without needing
    the defining system.  The stored snapshot carries its own schema, so
    inspection is self-contained.
    """
    from ..relational.schema import DatabaseSchema
    root = Path(path)
    if not root.is_dir():
        raise StorageError(f"no data directory at {root}")
    described: dict[str, dict] = {}
    for child in sorted(root.iterdir()):
        store_dir = child / "store"
        snapshot_path = store_dir / "snapshot.json"
        if not snapshot_path.is_file():
            continue
        with open(snapshot_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        schema = DatabaseSchema.of({name: int(arity) for name, arity
                                    in snapshot.get("schema", {}).items()})
        store = DurableFactStore(store_dir, schema, readonly=True)
        answers_path = child / "answers.json"
        cached_answers = 0
        if answers_path.is_file():
            try:
                with open(answers_path, encoding="utf-8") as handle:
                    cached_answers = len(
                        json.load(handle).get("entries", []))
            except (json.JSONDecodeError, OSError):
                cached_answers = 0
        described[child.name] = {
            "version": store.version(),
            "seq": store.seq,
            "pending_log_entries": store.pending_log_entries(),
            "relations": {relation: len(store.tuples(relation))
                          for relation in sorted(store.relations())},
            "cached_answers": cached_answers,
        }
    return described
