"""repro.net — the peer network runtime.

Runs each peer of a :class:`~repro.core.system.PeerSystem` as an
independent message-passing node with its own local data and cached
answering session, communicating only via typed protocol messages over a
pluggable transport — the paper's Example-2 narrative ("P1 will first
issue a query to P2 to retrieve the tuples in R2; next, a query is
issued to P3 ...") made real instead of simulated.

Layers
------
:mod:`repro.net.protocol`
    The typed message vocabulary (``FetchRelation`` / ``PeerQuery`` /
    ``Answer`` / ``Failure``) with correlation ids and hop budgets.
:mod:`repro.net.transport`
    The :class:`Transport` ABC with the in-process
    :class:`LoopbackTransport` and the per-node-worker-thread
    :class:`ThreadedTransport` (injectable per-link latency, seeded
    drops, peer-down faults via :class:`FaultPlan`).
:mod:`repro.net.node`
    :class:`PeerNode`: serves relation fetches and sub-network queries
    from local state; answers queries over a hop-by-hop gathered view
    with per-version caches.
:mod:`repro.net.network`
    :class:`PeerNetwork`: topology from the DECs, routing with retries,
    concurrent fan-out, real :class:`~repro.core.results.ExchangeStats`.
:mod:`repro.net.service`
    :class:`NetworkSession` (``answer`` / ``answer_many`` / ``explain``)
    and :func:`open_session` — local vs. network execution with one
    argument.
"""

from .errors import (
    DeadlineExceeded,
    HopBudgetExceeded,
    MessageDropped,
    NetworkError,
    PeerDown,
    PeerUnreachableError,
    ProtocolError,
    ServerOverloaded,
    TransportError,
)
from .network import PeerNetwork
from .node import PeerNode
from .protocol import (
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    Message,
    PeerQuery,
)
from .service import NetworkSession, open_session
from .transport import (
    FaultPlan,
    LoopbackTransport,
    ThreadedTransport,
    Transport,
)

__all__ = [
    # service
    "NetworkSession", "open_session",
    # runtime
    "PeerNetwork", "PeerNode",
    # protocol
    "Message", "FetchRelation", "PeerQuery", "AnswerQuery", "Answer",
    "Failure",
    # transports
    "Transport", "LoopbackTransport", "ThreadedTransport", "FaultPlan",
    # errors
    "NetworkError", "TransportError", "MessageDropped", "PeerDown",
    "ServerOverloaded", "PeerUnreachableError", "HopBudgetExceeded",
    "DeadlineExceeded", "ProtocolError",
]
