"""Typed protocol messages for the peer network runtime.

The wire vocabulary is deliberately tiny — four message shapes cover the
paper's whole query-answering narrative (Example 2: "P1 will first issue
a query to P2 to retrieve the tuples in R2; next, a query is issued to
P3 ..."):

* :class:`FetchRelation` — "send me the contents of your relation R";
* :class:`PeerQuery` — "describe your accessible sub-network" (the
  hop-by-hop gather behind transitive answering) — carries the hop
  budget and the per-branch visited set that make cyclic accessibility
  graphs terminate;
* :class:`AnswerQuery` — "answer this query from your own view" (the
  client-facing RPC of the cross-process wire runtime: a
  :class:`~repro.wire.session.RemoteNetworkSession` sends one to the
  queried peer's server process, which gathers and answers locally);
* :class:`Answer` — a successful reply, correlated to its request;
* :class:`Failure` — a typed error reply (unknown relation, exhausted
  hop budget), also correlated.

Every message carries a process-unique ``correlation_id``; replies quote
it in ``in_reply_to`` so transports may deliver out of order.  Payloads
hold immutable in-process objects (tuples, :class:`~repro.core.system.Peer`
instances); the cross-process transport serialises them with the
:mod:`repro.wire.codec` framing built on the :mod:`repro.core.io` dict
codecs — :func:`payload_bytes` estimates the serialized size for the
traffic accounting of the *in-process* transports (the wire transport
records the exact encoded frame size instead).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.messaging import estimate_bytes

__all__ = [
    "Message",
    "FetchRelation",
    "PeerQuery",
    "AnswerQuery",
    "Answer",
    "Failure",
    "GetStatus",
    "SUBSYSTEM",
    "payload_bytes",
]

#: the one PeerQuery kind today: gather the accessible sub-network.
SUBSYSTEM = "subsystem"

_CORRELATION = itertools.count(1)


def _next_correlation() -> int:
    return next(_CORRELATION)


@dataclass(frozen=True, kw_only=True)
class Message:
    """Base envelope: who is talking to whom, under which correlation.

    The three trace fields are optional observability hints (the codec
    omits them when empty, so untraced frames are byte-identical to the
    pre-tracing wire format and old peers decode-and-ignore them):
    ``trace_id`` names the distributed trace this message belongs to,
    ``span_id`` is the span id the *requester* pre-allocated for this
    request's round trip, and ``parent_span_id`` is the span the
    request was issued under.  A serving peer records its own spans
    with ``span_id`` as their parent, so the reassembled tree nests
    server time under the client's request span without any cross-
    process clock agreement.
    """

    sender: str
    target: str
    correlation_id: int = field(default_factory=_next_correlation)
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""


@dataclass(frozen=True, kw_only=True)
class FetchRelation(Message):
    """Request the contents of one of the target's own relations.

    ``known_version`` is the content version
    (:meth:`~repro.storage.base.FactStore.version`) of the target's
    data the requester already holds rows for; when the target's store
    still retains the delta chain from that version it replies with a
    versioned delta instead of the full relation (see
    :attr:`Answer.delta`).  Empty means "send everything".
    """

    relation: str
    purpose: str = ""
    known_version: str = ""


@dataclass(frozen=True, kw_only=True)
class PeerQuery(Message):
    """Request a hop-by-hop description of the target's sub-network.

    ``hop_budget`` bounds how many further hops the target may take;
    ``visited`` lists the peers already covered on this branch, so
    cyclic accessibility graphs terminate without revisiting.

    The two routing fields are optional hints (old peers ignore them,
    the codec omits them when empty): ``digest_version`` names the
    :class:`~repro.routing.digest.NeighbourDigests` version the
    requester already holds for the target, so the target only
    piggybacks fresh digests; ``known_subsystem`` is the
    :func:`~repro.routing.index.subsystem_fingerprint` content token of
    the target's last full subsystem payload the requester cached — a
    target whose freshly gathered payload hashes to the same token may
    answer with a tiny ``{"unchanged": True}`` payload instead of
    re-relaying its whole subtree.

    ``known_instances`` refines the same idea per relayed peer: a
    mapping of peer name to the
    :meth:`~repro.relational.instance.DatabaseInstance.fingerprint` of
    the instance the requester's cached payload holds for that peer.
    A target whose *changed* gather still carries a byte-identical
    instance for one of those peers may replace it with a
    ``{"same": fingerprint}`` marker, which the requester expands back
    from its cache — so a one-leaf edit stops re-relaying every
    untouched instance along the whole path.  Like the other hints it
    is optional and omitted from the wire when empty.

    ``constants`` scopes the gather to a query: the first-column
    constants the query selects on, extracted by the requesting root
    when every body atom pins its first argument.  A target holding a
    *safe* subtree aggregate disjoint from them may answer with a tiny
    ``{"irrelevant": True}`` acknowledgement instead of relaying its
    subtree; ``aggregate_token`` quotes the
    :class:`~repro.routing.aggregate.SubtreeDigest` content token the
    requester already holds for the target, so aggregates only travel
    when the requester is behind.  Empty means unscoped / no aggregate
    held — both degrade to PR 8 behaviour.
    """

    kind: str = SUBSYSTEM
    hop_budget: int = 8
    visited: tuple[str, ...] = ()
    digest_version: str = ""
    known_subsystem: str = ""
    known_instances: Any = None
    constants: tuple = ()
    aggregate_token: str = ""


@dataclass(frozen=True, kw_only=True)
class AnswerQuery(Message):
    """Request a full query answer computed at the target peer.

    The target resolves the query in its own language, gathers its
    accessible sub-network (over whatever transport its network runs
    on), answers from the materialised view, and replies with an
    :class:`Answer` whose payload is the complete
    :class:`~repro.core.results.QueryResult`.  ``query`` is the textual
    form (``"q(X, Y) := R1(X, Y)"``); ``method`` empty means the node's
    default method; ``semantics`` is ``"certain"`` or ``"possible"``.
    """

    query: str
    method: str = ""
    semantics: str = "certain"


@dataclass(frozen=True, kw_only=True)
class Answer(Message):
    """A successful reply.  ``payload`` depends on the request kind:
    a tuple of rows for :class:`FetchRelation` (or a
    ``{"insert": rows, "delete": rows}`` mapping when ``delta`` is
    set), a subsystem-description mapping for :class:`PeerQuery`.

    ``version`` stamps relation replies with the provider's current
    content version so the requester can cache rows and ask for deltas
    next time; ``delta`` marks the payload as a change set relative to
    the requester's ``known_version`` rather than the full relation.

    ``digests`` optionally piggybacks the provider's
    :class:`~repro.routing.digest.NeighbourDigests` (its per-relation
    content summaries under its current store version) so requesters
    learn routing state from traffic they paid for anyway.
    ``aggregate`` does the same one level up: the provider's
    :class:`~repro.routing.aggregate.SubtreeDigest` over everything
    reachable through it, attached to subsystem replies only when the
    requester's quoted ``aggregate_token`` is behind;
    ``aggregate_token`` always names the provider's *current* subtree
    token on routed subsystem replies, so a matching requester can
    re-confirm its stored aggregate without the bits travelling again.
    All three fields are forward-tolerant: peers predating them decode
    and ignore them.

    ``spans`` piggybacks the provider's completed trace spans
    (:class:`~repro.obs.trace.Span`) back to the requester on traced
    exchanges — the requester folds them into its own recorder, so the
    root's :class:`~repro.obs.trace.TraceCollector` sees the whole
    cross-process tree.  Empty (the untraced default) costs nothing on
    the wire.
    """

    in_reply_to: int
    payload: Any = None
    bytes_estimate: int = 0
    version: str = ""
    delta: bool = False
    digests: Any = None
    aggregate: Any = None
    aggregate_token: str = ""
    spans: tuple = ()

    def __post_init__(self) -> None:
        if self.bytes_estimate == 0:
            estimate = payload_bytes(self.payload)
            if self.digests is not None:
                from ..routing.digest import digest_bytes
                estimate += digest_bytes(self.digests)
            if self.aggregate is not None:
                from ..routing.aggregate import aggregate_bytes
                estimate += aggregate_bytes(self.aggregate)
            if self.aggregate_token:
                estimate += len(self.aggregate_token)
            if self.spans:
                from ..obs.trace import span_bytes
                estimate += span_bytes(self.spans)
            object.__setattr__(self, "bytes_estimate", estimate)


@dataclass(frozen=True, kw_only=True)
class Failure(Message):
    """A typed error reply.  ``code`` matches the
    :class:`~repro.core.results.QueryError` vocabulary
    (``"unknown-relation"``, ``"hop-budget-exhausted"``,
    ``"peer-unreachable"``...).  ``spans`` mirrors
    :attr:`Answer.spans`: even a failed hop reports where its time
    went."""

    in_reply_to: int
    code: str
    detail: str = ""
    spans: tuple = ()


@dataclass(frozen=True, kw_only=True)
class GetStatus(Message):
    """Ask a running server process for its live metrics.

    Served by :class:`~repro.wire.server.PeerServer` directly (metrics
    are properties of the serving process — its event loop, transport
    pools, and routing caches — not of the peer's data), replying with
    an :class:`Answer` whose payload is ``{"status": {...}}``: the unit
    name and a merged :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    In-process transports route it to :meth:`PeerNode.handle`, which
    answers ``unsupported-message`` — status is a wire-runtime concept.
    """


def payload_bytes(payload: Any) -> int:
    """Estimate the serialized size of a reply payload.

    Rows are costed with the shared :func:`estimate_bytes`; subsystem
    descriptions cost the sum of their instances' rows plus a small flat
    overhead per described peer/constraint.
    """
    from ..core.results import QueryResult
    if payload is None:
        return 0
    if isinstance(payload, QueryResult):
        # a served query answer: costs its answer rows plus a flat
        # envelope for the provenance fields
        return estimate_bytes(payload.answers) + 64
    if isinstance(payload, (tuple, list, frozenset, set)):
        return estimate_bytes(payload)
    if isinstance(payload, Mapping) and set(payload) <= {"insert",
                                                         "delete"}:
        # a versioned relation delta: costs only the changed rows
        return (estimate_bytes(payload.get("insert", ()))
                + estimate_bytes(payload.get("delete", ())) + 16)
    if isinstance(payload, Mapping) and payload.get("unchanged"):
        # a subsystem-unchanged acknowledgement: a flat flag + stats
        return 8
    if isinstance(payload, Mapping) and payload.get("irrelevant"):
        # a subtree-irrelevant acknowledgement: a flat flag + stats
        return 8
    if isinstance(payload, Mapping):
        total = 0
        for instance in payload.get("instances", {}).values():
            if isinstance(instance, Mapping):
                # a {"same": fingerprint} dedup marker: only the
                # fingerprint travels, never the instance's rows
                total += 24
                continue
            for relation in instance.relations():
                total += estimate_bytes(instance.tuples(relation))
        total += 64 * len(payload.get("peers", {}))
        total += 32 * len(payload.get("decs", ()))
        total += 16 * len(payload.get("trust", ()))
        return total
    return len(str(payload))
