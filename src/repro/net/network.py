"""The peer network runtime: nodes, routing, fan-out, and traffic stats.

:meth:`PeerNetwork.from_system` splits a validated
:class:`~repro.core.system.PeerSystem` into one :class:`~repro.net.node.PeerNode`
per peer — each holding only its own schema, instance, owned DECs, and
trust edges — registers every node's handler on a pluggable
:class:`~repro.net.transport.Transport`, and from then on the peers
communicate exclusively through typed protocol messages.  Nothing in the
answering path consults the source system again; it exists only as the
construction recipe and the version token.

The network layer owns the concerns individual nodes should not:

* **routing with retries** — :meth:`request` resends on transport losses
  (drops, down peers) up to ``retries`` extra attempts, then raises the
  typed :class:`~repro.net.errors.PeerUnreachableError`; typed
  :class:`~repro.net.protocol.Failure` replies are mapped back onto the
  matching exceptions and are never retried;
* **concurrent fan-out** — :meth:`fan_out` runs independent requests
  through a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (``concurrency="sequential"`` keeps the one-at-a-time baseline the
  NF1 benchmark compares against);
* **traffic accounting** — every delivered request lands on a
  thread-safe :class:`~repro.core.messaging.ExchangeLog` as a real
  :class:`~repro.core.messaging.ExchangeEvent` (tuples, byte estimate,
  hop depth), which the CLI prints as the exchange trace.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..core.messaging import ExchangeLog
from ..core.system import PeerSystem
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, SpanRecorder, new_id
from .errors import (
    DeadlineExceeded,
    HopBudgetExceeded,
    NetworkError,
    PeerUnreachableError,
    ProtocolError,
    ServerOverloaded,
    TransportError,
)
from .node import PeerNode
from .protocol import Answer, Failure, FetchRelation, Message, PeerQuery
from .transport import LoopbackTransport, Transport

__all__ = ["PeerNetwork"]

#: fan-out modes
FANOUT = "fanout"
SEQUENTIAL = "sequential"


def _request_span_name(message: Message) -> str:
    """How a request's round-trip span is labelled in the trace."""
    if isinstance(message, FetchRelation):
        return f"fetch:{message.relation}->{message.target}"
    if isinstance(message, PeerQuery):
        return f"peer-query->{message.target}"
    return (f"{type(message).__name__.lower()}"
            f"->{message.target}")


class PeerNetwork:
    """A set of message-passing peer nodes over one transport."""

    def __init__(self, nodes: Iterable[PeerNode],
                 transport: Optional[Transport] = None, *,
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 concurrency: str = FANOUT,
                 max_workers: Optional[int] = None,
                 timeout: Optional[float] = None) -> None:
        if concurrency not in (FANOUT, SEQUENTIAL):
            raise NetworkError(
                f"unknown concurrency mode {concurrency!r}; use "
                f"{FANOUT!r} or {SEQUENTIAL!r}")
        if retries < 0:
            raise NetworkError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise NetworkError("timeout must be > 0 seconds")
        self.nodes: dict[str, PeerNode] = {}
        self.transport = (transport if transport is not None
                          else LoopbackTransport())
        self.retries = retries
        self.concurrency = concurrency
        self.exchange_log = ExchangeLog()
        #: completed trace spans of in-flight traced operations (shared
        #: by every node on this network; drained per trace id)
        self.spans = SpanRecorder()
        #: live counters for the rare paths (retries, backoff) — the
        #: per-request hot path deliberately touches no lock here
        self.metrics = MetricsRegistry()
        for node in nodes:
            if node.name in self.nodes:
                raise NetworkError(f"duplicate node {node.name!r}")
            self.nodes[node.name] = node
            node.network = self
            self.transport.register(node.name, node.handle)
        if not self.nodes:
            raise NetworkError("a peer network needs at least one node")
        # a node cannot know the global diameter; the runtime that built
        # every node can — one hop per peer always suffices
        self.hop_budget = (hop_budget if hop_budget is not None
                           else len(self.nodes))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._max_workers = max_workers or min(32, 4 * len(self.nodes))
        self._lock = threading.Lock()
        #: overall per-operation budget in seconds (None = unbounded)
        self.timeout = timeout
        # the active operation deadline is thread-local (a server node
        # may gather for several requesters at once); fan_out hands it
        # to its pool workers explicitly
        self._op = threading.local()

    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system: PeerSystem, *,
                    transport: Optional[Transport] = None,
                    hop_budget: Optional[int] = None,
                    retries: int = 2,
                    concurrency: str = FANOUT,
                    max_workers: Optional[int] = None,
                    timeout: Optional[float] = None,
                    default_method: str = "auto",
                    include_local_ics: bool = True,
                    evaluator: str = "planner",
                    data_dir: Optional[Union[str, Path]] = None,
                    snapshot_every: int = 64,
                    routing: bool = False,
                    tracing: bool = False) -> "PeerNetwork":
        """One node per peer, each seeded with its local slice only.

        With ``data_dir`` every node becomes durable under
        ``<data_dir>/<peer>/``: facts in an append-only delta log +
        snapshot store, answers and the neighbour-fetch cache alongside.
        On a directory that already holds state, the *persisted* data
        wins over the system's instances — that is what makes a restart
        a restart rather than a rebuild (push the system's state
        explicitly with :meth:`sync` to make the definition
        authoritative instead).

        ``routing=True`` gives every node a learned
        :class:`~repro.routing.index.RoutingIndex` consulted by its
        gather path (digest piggybacking, productivity ordering, and
        provably redundant messages elided); answers are identical in
        both modes — only the traffic differs.

        ``tracing=True`` makes every node open a fresh distributed
        trace per root :meth:`PeerNode.answer
        <repro.net.node.PeerNode.answer>` call: spans for the gather,
        every per-neighbour request, and the local evaluation land on
        :attr:`QueryResult.trace <repro.core.results.QueryResult>`.
        Off (the default) the answer path pays nothing.
        """
        root = Path(data_dir) if data_dir is not None else None
        nodes = []
        for name, peer in system.peers.items():
            own_edges = [(owner, level, other)
                         for owner, level, other in system.trust.edges()
                         if owner == name]
            nodes.append(PeerNode(
                peer, system.instances[name],
                decs=system.decs_of(name),
                trust_edges=own_edges,
                default_method=default_method,
                include_local_ics=include_local_ics,
                evaluator=evaluator,
                data_dir=root / name if root is not None else None,
                snapshot_every=snapshot_every,
                routing=routing,
                tracing=tracing))
        # stamp the nodes: the system's version is only truthful when
        # every store actually holds the system's data — after a
        # restart, disk may have won with *different* (e.g. previously
        # synced) content, and stamping that with the definition's
        # version would let answer caches alias distinct data
        if all(node.store.version()
               == system.instances[node.name].fingerprint()
               for node in nodes):
            version = system.version()
        else:
            digest = hashlib.sha256()
            digest.update(system.version().encode("utf-8"))
            for node in sorted(nodes, key=lambda n: n.name):
                digest.update(f"\x00{node.name}={node.store.version()}"
                              .encode("utf-8"))
            version = "net-" + digest.hexdigest()[:16]
        for node in nodes:
            node.stamp_version(version)
        return cls(nodes, transport, hop_budget=hop_budget,
                   retries=retries, concurrency=concurrency,
                   max_workers=max_workers, timeout=timeout)

    # ------------------------------------------------------------------
    # Topology and lifecycle
    # ------------------------------------------------------------------
    def node(self, name: str) -> PeerNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def topology(self) -> dict[str, tuple[str, ...]]:
        """The accessibility graph: node -> its DEC neighbours."""
        return {name: node.neighbours()
                for name, node in sorted(self.nodes.items())}

    def sync(self, system: PeerSystem) -> "PeerNetwork":
        """Push a new version of the system's data to every node.

        Versions are content-derived, so syncing identical data is a
        no-op that keeps every node cache warm; a real change lands in
        each node's store as a logged delta (the source of subsequent
        delta-sync replies) and drops the stale views, sessions, and
        answers.  Returns ``self``.
        """
        version = system.version()
        for name, node in self.nodes.items():
            instance = system.instances.get(name)
            if instance is None:
                raise NetworkError(
                    f"synced system lacks peer {name!r}; build a new "
                    f"network for topology changes")
            node.update_instance(instance, version)
        return self

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()  # flush durable state (answers, fetch cache)
        self.transport.close()
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None

    def __enter__(self) -> "PeerNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The end-to-end operation deadline
    # ------------------------------------------------------------------
    @contextmanager
    def operation_deadline(self) -> Iterator[None]:
        """Scope one end-to-end operation under :attr:`timeout`.

        Entered by the answering surfaces (a node's answer/gather); all
        message sends within the scope — including the fan-out worker
        threads — check the shared deadline before hitting the
        transport, so a slow link fails the *operation* with a typed
        :class:`DeadlineExceeded` instead of burning retries forever.
        Nested scopes (a gather inside an answer) keep the outermost
        deadline; without a configured ``timeout`` this is a no-op.

        The check is cooperative: a request already waiting on the
        transport finishes its wait (bounded by the transport's own
        per-request timeout), so the operation overruns the budget by at
        most one transport timeout.
        """
        if self.timeout is None or self._current_deadline() is not None:
            yield
            return
        self._op.deadline = time.monotonic() + self.timeout
        try:
            yield
        finally:
            self._op.deadline = None

    def _current_deadline(self) -> Optional[float]:
        return getattr(self._op, "deadline", None)

    @contextmanager
    def _inherited_deadline(self,
                            deadline: Optional[float]) -> Iterator[None]:
        """Install a deadline captured on another thread (fan-out pool
        workers inherit the submitting operation's budget this way)."""
        previous = self._current_deadline()
        self._op.deadline = deadline
        try:
            yield
        finally:
            self._op.deadline = previous

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        deadline = self._current_deadline()
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded(
                f"operation exceeded its {self.timeout}s end-to-end "
                f"budget")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def request(self, message: Message) -> Answer:
        """Deliver one request, retrying transport losses, and log it.

        Returns the :class:`Answer`; maps :class:`Failure` replies and
        exhausted retries onto typed :class:`NetworkError` subclasses.

        A retry *resends* the request: if the loss was really a reply
        timeout, the target may end up serving the work twice, so a
        :class:`~repro.net.transport.ThreadedTransport` timeout should
        sit comfortably above the expected gather time (it is the
        no-hang backstop, not a pacing mechanism).
        """
        attempts = self.retries + 1
        reply: Optional[Message] = None
        traced = bool(message.trace_id)
        started = time.monotonic() if traced else 0.0
        for attempt in range(attempts):
            # checked before every attempt (first included): once the
            # operation budget is spent, further sends — retries
            # especially — must fail typed instead of piling on
            self.check_deadline()
            try:
                reply = self.transport.request(message)
                if isinstance(reply, Failure) and \
                        reply.code == "overloaded":
                    # an in-process transport hands the shed back as a
                    # Failure reply; normalise to the wire transport's
                    # typed raise so one retry/backoff path covers both
                    raise ServerOverloaded(
                        f"peer {message.target!r} shed the request: "
                        f"{reply.detail}")
                break
            except TransportError as exc:
                if attempt + 1 == attempts:
                    raise PeerUnreachableError(
                        f"peer {message.target!r} unreachable after "
                        f"{attempts} attempt(s): {exc}",
                        peer=message.target) from exc
                self.metrics.inc("network.retries")
                if isinstance(exc, ServerOverloaded):
                    # the server is up but saturated: hammering it at
                    # line rate only deepens the overload — yield a
                    # beat (bounded, deadline-checked above) first
                    self.metrics.inc("network.backoffs")
                    pause = time.monotonic()
                    time.sleep(min(0.05 * (attempt + 1), 0.5))
                    if traced:
                        self.spans.record(Span(
                            message.trace_id, new_id(),
                            message.span_id, "backoff", message.sender,
                            pause, time.monotonic() - pause,
                            note=f"attempt {attempt + 1} shed by "
                                 f"{message.target}"))
        assert reply is not None
        if traced:
            # fold the provider's piggybacked spans into this process's
            # recorder, then record the round trip itself under the
            # span id the requester pre-allocated on the message
            self.spans.record_all(getattr(reply, "spans", ()))
            note = f"retries={attempt}" if attempt else ""
            self.spans.record(Span(
                message.trace_id, message.span_id or new_id(),
                message.parent_span_id, _request_span_name(message),
                message.sender, started, time.monotonic() - started,
                note=note))
        if isinstance(reply, Failure):
            self._raise_failure(reply)
        if not isinstance(reply, Answer):
            raise ProtocolError(
                f"unexpected reply {type(reply).__name__} from "
                f"{message.target!r}")
        self._log(message, reply)
        return reply

    def _raise_failure(self, failure: Failure) -> None:
        if failure.code == "hop-budget-exhausted":
            raise HopBudgetExceeded(failure.detail, peer=failure.sender)
        if failure.code == "peer-unreachable":
            raise PeerUnreachableError(failure.detail,
                                       peer=failure.sender)
        if failure.code == "deadline-exceeded":
            raise DeadlineExceeded(failure.detail, peer=failure.sender)
        if failure.code == "network":
            raise NetworkError(
                f"{failure.sender!r} relayed a network failure: "
                f"{failure.detail}")
        raise ProtocolError(
            f"{failure.sender!r} rejected request "
            f"{failure.in_reply_to}: [{failure.code}] {failure.detail}")

    def _log(self, message: Message, reply: Answer) -> None:
        if isinstance(message, FetchRelation):
            if reply.delta:
                payload = reply.payload
                tuples = (len(payload.get("insert", ()))
                          + len(payload.get("delete", ())))
                purpose = (f"{message.purpose} [delta]".strip()
                           if message.purpose else "delta sync")
            else:
                tuples = len(reply.payload)
                purpose = message.purpose
            self.exchange_log.record(
                message.sender, message.target, message.relation,
                tuples, purpose,
                bytes_estimate=reply.bytes_estimate, hop=1)
        elif isinstance(message, PeerQuery):
            payload = reply.payload
            stats = payload["stats"]
            if payload.get("unchanged"):
                # a routed peer acknowledged an up-to-date subsystem
                # token: no content travelled, only the stats envelope
                relation = "@subsystem[unchanged]"
                tuples = 0
            elif payload.get("irrelevant"):
                # a routed peer proved its whole subtree disjoint from
                # the query's constants: the branch was pruned
                relation = "@subsystem[irrelevant]"
                tuples = 0
            else:
                relation = f"@subsystem[{len(payload['peers'])} peer(s)]"
                # {"same": fingerprint} dedup markers ship no tuples
                tuples = sum(
                    len(instance.tuples(rel))
                    for instance in payload["instances"].values()
                    if not isinstance(instance, Mapping)
                    for rel in instance.relations())
            self.exchange_log.record(
                message.sender, message.target, relation,
                tuples, "hop-by-hop gather",
                bytes_estimate=reply.bytes_estimate,
                hop=stats.max_hops + 1 if stats.max_hops else 1)

    # ------------------------------------------------------------------
    # Concurrent fan-out
    # ------------------------------------------------------------------
    def fan_out(self, sender: str,
                messages: Sequence[Message]) -> list[Answer]:
        """Issue independent requests, concurrently by default.

        Replies come back in request order.  In ``"fanout"`` mode the
        requests run on the shared thread pool, so per-link latency is
        paid once per *level* instead of once per *message*; in
        ``"sequential"`` mode they run one by one (the baseline NF1
        measures against).  The first failure is raised after all
        requests settle — no orphaned in-flight work.
        """
        if not messages:
            return []
        if self.concurrency == SEQUENTIAL or len(messages) == 1:
            return [self.request(message) for message in messages]
        # the caller always executes the last request inline: nested
        # fan-outs (hop-by-hop gathers) then make progress even with the
        # pool saturated, so pool starvation can never deadlock a gather
        executor = self._shared_executor()
        deadline = self._current_deadline()

        def routed(message: Message) -> Answer:
            # pool workers inherit the submitting operation's deadline
            with self._inherited_deadline(deadline):
                return self.request(message)

        futures = [executor.submit(routed, message)
                   for message in messages[:-1]]
        results: list[Optional[Answer]] = [None] * len(messages)
        # every exception is held until all requests settle — including
        # non-network ones relayed verbatim from node handlers —
        # upholding the no-orphaned-work guarantee above
        first_error: Optional[BaseException] = None
        try:
            results[-1] = self.request(messages[-1])
        except Exception as exc:
            first_error = exc
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def _shared_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="peer-fanout")
            return self._executor

    def __repr__(self) -> str:
        return (f"PeerNetwork({sorted(self.nodes)}, "
                f"transport={type(self.transport).__name__}, "
                f"concurrency={self.concurrency!r}, "
                f"hop_budget={self.hop_budget})")
