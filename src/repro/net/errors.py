"""Exception hierarchy for the peer network runtime.

Everything derives from :class:`~repro.core.errors.P2PError` so the CLI's
clean-error path (``error: ...``, exit 2, no traceback) covers network
failures for free.  Transport-level losses (:class:`MessageDropped`,
:class:`PeerDown`) are *retryable* — :class:`~repro.net.network.PeerNetwork`
absorbs them up to its retry budget and only then surfaces the
non-retryable :class:`PeerUnreachableError`.
"""

from __future__ import annotations

from ..core.errors import P2PError

__all__ = [
    "NetworkError",
    "TransportError",
    "MessageDropped",
    "PeerDown",
    "ServerOverloaded",
    "PeerUnreachableError",
    "HopBudgetExceeded",
    "DeadlineExceeded",
    "ProtocolError",
]


class NetworkError(P2PError):
    """Base class for errors raised by :mod:`repro.net`."""


class TransportError(NetworkError):
    """A message could not be delivered (base of the retryable losses)."""


class MessageDropped(TransportError):
    """The transport lost the message (simulated drop or reply timeout).
    Retryable: the network layer resends up to its retry budget."""


class PeerDown(TransportError):
    """The target node is not accepting messages (fault injection or an
    unregistered peer).  Retryable: the peer may come back."""


class ServerOverloaded(TransportError):
    """The target shed the request at admission because its pending
    queue is full (the wire server's ``code="overloaded"`` Failure).
    Retryable — the server answered *fast* precisely so the client can
    come back — but callers back off briefly before resending so a
    saturated server is not hammered at line rate."""


class PeerUnreachableError(NetworkError):
    """Delivery failed even after the retry budget was spent — the typed
    end-state surfaced as ``code="peer-unreachable"`` on the
    :class:`~repro.core.results.QueryResult`."""

    def __init__(self, message: str, *, peer: str = "") -> None:
        super().__init__(message)
        self.peer = peer


class HopBudgetExceeded(NetworkError):
    """A hop-by-hop gather ran out of hop budget before covering the
    accessible sub-network (``code="hop-budget-exhausted"``)."""

    def __init__(self, message: str, *, peer: str = "") -> None:
        super().__init__(message)
        self.peer = peer


class DeadlineExceeded(NetworkError):
    """The end-to-end request budget (``PeerNetwork(timeout=...)``) ran
    out before the operation completed (``code="deadline-exceeded"``).

    Not retryable: retrying is exactly what the deadline exists to stop
    — a slow link must fail the *operation* once the overall budget is
    spent, not merely burn through the per-message retry allowance.
    """

    def __init__(self, message: str, *, peer: str = "") -> None:
        super().__init__(message)
        self.peer = peer


class ProtocolError(NetworkError):
    """A node received a message it cannot serve (unknown relation,
    unknown request kind) — a programming error, not a fault scenario."""
