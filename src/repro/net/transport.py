"""Pluggable message transports for the peer network runtime.

A :class:`Transport` delivers one request :class:`~repro.net.protocol.Message`
to its target node's handler and returns the reply.  Two implementations
ship:

* :class:`LoopbackTransport` — synchronous in-process dispatch, zero
  overhead; the default for correctness-focused work (the differential
  suite runs on it);
* :class:`ThreadedTransport` — every node gets a single worker thread
  draining its own mailbox (a node is single-threaded, like a real
  process); requests block on a per-call reply box.  Per-link latency,
  seeded message drops, and peer-down faults are injectable, which is
  what the fault-scenario tests and the NF1 fan-out benchmark drive.

Both transports share :class:`FaultPlan`, so `peer-down` scenarios can be
scripted without threads too.  Transports know nothing about retries or
logging — that is :class:`~repro.net.network.PeerNetwork`'s job; they
signal losses by raising the retryable
:class:`~repro.net.errors.TransportError` subclasses.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, Mapping, Optional

from .errors import MessageDropped, PeerDown
from .protocol import Message

__all__ = ["Transport", "LoopbackTransport", "ThreadedTransport",
           "FaultPlan"]

Handler = Callable[[Message], Message]


class FaultPlan:
    """Injectable fault behaviour shared by the transports.

    ``latency`` is the default one-way delivery delay in seconds;
    ``link_latency`` overrides it per ``(sender, target)`` link.
    ``drop_rate`` is the seeded probability that a request is lost in
    flight (the sender notices immediately — modelling a fast negative
    ACK — so tests stay quick).  ``down`` peers refuse delivery outright.
    """

    def __init__(self, *, latency: float = 0.0,
                 link_latency: Optional[Mapping[tuple[str, str],
                                               float]] = None,
                 drop_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.latency = latency
        self.link_latency = dict(link_latency or {})
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._down: set[str] = set()
        self._lock = threading.Lock()

    def delay(self, sender: str, target: str) -> float:
        return self.link_latency.get((sender, target), self.latency)

    def dropped(self) -> bool:
        if not self.drop_rate:
            return False
        with self._lock:
            return self._rng.random() < self.drop_rate

    def set_down(self, peer: str) -> None:
        with self._lock:
            self._down.add(peer)

    def set_up(self, peer: str) -> None:
        with self._lock:
            self._down.discard(peer)

    def is_down(self, peer: str) -> bool:
        with self._lock:
            return peer in self._down


class Transport(ABC):
    """Delivers request messages to node handlers and returns replies."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self.faults = faults if faults is not None else FaultPlan()

    @abstractmethod
    def register(self, name: str, handler: Handler) -> None:
        """Attach a node's message handler under its peer name."""

    @abstractmethod
    def request(self, message: Message) -> Message:
        """Deliver ``message`` and return the reply (Answer or Failure).

        Raises :class:`~repro.net.errors.PeerDown` when the target
        refuses delivery and :class:`~repro.net.errors.MessageDropped`
        when the message (or its reply) is lost — both retryable.
        """

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release transport resources (worker threads, mailboxes)."""

    # convenience passthroughs for fault scripting
    def set_down(self, peer: str) -> None:
        self.faults.set_down(peer)

    def set_up(self, peer: str) -> None:
        self.faults.set_up(peer)

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LoopbackTransport(Transport):
    """Synchronous in-process dispatch — the zero-overhead default."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        super().__init__(faults)
        self._handlers: dict[str, Handler] = {}

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def request(self, message: Message) -> Message:
        if self.faults.is_down(message.target):
            raise PeerDown(f"peer {message.target!r} is down")
        handler = self._handlers.get(message.target)
        if handler is None:
            raise PeerDown(f"no node registered for {message.target!r}")
        if self.faults.dropped():
            raise MessageDropped(
                f"message {message.correlation_id} to "
                f"{message.target!r} was dropped")
        delay = self.faults.delay(message.sender, message.target)
        if delay:
            time.sleep(delay)
        return handler(message)


class _Mailbox:
    """One node's worker thread plus its request queue."""

    def __init__(self, name: str, handler: Handler) -> None:
        self.name = name
        self.handler = handler
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.thread = threading.Thread(
            target=self._serve, name=f"peer-node-{name}", daemon=True)
        self.thread.start()

    def _serve(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:  # shutdown sentinel
                return
            message, delay, reply_box = item
            if delay:
                time.sleep(delay)
            try:
                reply = self.handler(message)
            except BaseException as exc:  # surface, never kill the worker
                reply = exc
            reply_box.put(reply)


class ThreadedTransport(Transport):
    """Per-node worker threads with injectable latency, drops, and
    peer-down faults.

    A node's mailbox is drained by a single thread, so each node
    processes (and pays the delivery latency of) its requests serially —
    which is exactly why concurrent fan-out to *distinct* neighbours
    wins: their workers sleep in parallel.

    ``timeout`` bounds how long a request waits for its reply before the
    loss is reported as :class:`~repro.net.errors.MessageDropped` — the
    no-hang guarantee of the fault tests.
    """

    def __init__(self, faults: Optional[FaultPlan] = None, *,
                 latency: float = 0.0,
                 link_latency: Optional[Mapping[tuple[str, str],
                                               float]] = None,
                 drop_rate: float = 0.0, seed: int = 0,
                 timeout: float = 5.0) -> None:
        if faults is None:
            faults = FaultPlan(latency=latency, link_latency=link_latency,
                               drop_rate=drop_rate, seed=seed)
        super().__init__(faults)
        self.timeout = timeout
        self._mailboxes: dict[str, _Mailbox] = {}

    def register(self, name: str, handler: Handler) -> None:
        if name in self._mailboxes:
            raise ValueError(f"node {name!r} already registered")
        self._mailboxes[name] = _Mailbox(name, handler)

    def request(self, message: Message) -> Message:
        if self.faults.is_down(message.target):
            raise PeerDown(f"peer {message.target!r} is down")
        mailbox = self._mailboxes.get(message.target)
        if mailbox is None:
            raise PeerDown(f"no node registered for {message.target!r}")
        if self.faults.dropped():
            raise MessageDropped(
                f"message {message.correlation_id} to "
                f"{message.target!r} was dropped")
        reply_box: "queue.SimpleQueue" = queue.SimpleQueue()
        delay = self.faults.delay(message.sender, message.target)
        mailbox.queue.put((message, delay, reply_box))
        try:
            reply = reply_box.get(timeout=self.timeout)
        except queue.Empty:
            raise MessageDropped(
                f"no reply to message {message.correlation_id} from "
                f"{message.target!r} within {self.timeout}s") from None
        if isinstance(reply, BaseException):
            raise reply
        return reply

    def close(self) -> None:
        for mailbox in self._mailboxes.values():
            mailbox.queue.put(None)
        for mailbox in self._mailboxes.values():
            mailbox.thread.join(timeout=1.0)
        self._mailboxes.clear()
