"""The network-backed answering service: :class:`NetworkSession`.

Mirrors :class:`~repro.core.session.PeerQuerySession`'s surface —
``answer`` / ``answer_many`` / ``explain`` returning the same rich
:class:`~repro.core.results.QueryResult` — but executes every query on
the :mod:`repro.net` runtime: the queried peer's node gathers its
accessible sub-network hop-by-hop over the transport, materialises a
local view, and answers from it.  Callers pick the execution backend
with one argument via :func:`open_session`::

    session = open_session(system)                # local, in-process
    session = open_session(system, network=True)  # message-passing nodes

The differential guarantee (locked in by ``tests/net``): on systems
whose peers are all reachable from the queried root, network answers are
tuple-for-tuple identical to the local session's, for every registered
method and both semantics.

Fault behaviour: network failures (peer down, hop budget exhausted,
transport loss beyond the retry budget) never raise out of ``answer`` /
``answer_many`` — they come back as a :class:`QueryResult` whose
``error`` is a typed :class:`~repro.core.results.QueryError`, so batch
callers degrade per-result.  ``explain`` and ``local_view`` raise,
because they have no result object to attach the error to.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Optional, Union

from ..core.results import (
    CERTAIN,
    QueryError,
    QueryRequest,
    QueryResult,
)
from ..core.session import PeerQuerySession
from ..core.system import PeerSystem
from ..relational.query import Query
from .errors import (
    DeadlineExceeded,
    HopBudgetExceeded,
    NetworkError,
    PeerUnreachableError,
    TransportError,
)
from .network import PeerNetwork
from .transport import Transport

__all__ = ["NetworkSession", "open_session"]


def _error_code(exc: NetworkError) -> str:
    if isinstance(exc, HopBudgetExceeded):
        return "hop-budget-exhausted"
    if isinstance(exc, DeadlineExceeded):
        return "deadline-exceeded"
    if isinstance(exc, PeerUnreachableError):
        return "peer-unreachable"
    if isinstance(exc, TransportError):
        return "transport"
    return "network"


class NetworkSession:
    """Query answering over message-passing peer nodes.

    Construct from a :class:`~repro.core.system.PeerSystem` (a network
    is built with :meth:`PeerNetwork.from_system`) or from an existing
    :class:`PeerNetwork`.  Keyword arguments mirror the local session's
    (``default_method``, ``include_local_ics``, ``evaluator``) plus the
    network knobs (``transport``, ``hop_budget``, ``retries``,
    ``concurrency``, ``timeout`` — an end-to-end per-query budget in
    seconds, surfacing expiry as a ``deadline-exceeded`` typed result
    error) and durability (``data_dir`` makes every node
    persist its facts, answers, and fetch cache under
    ``<data_dir>/<peer>/`` and reload them on construction;
    ``snapshot_every`` bounds the delta logs).
    """

    def __init__(self, system_or_network: Union[PeerSystem, PeerNetwork],
                 *, transport: Optional[Transport] = None,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 concurrency: str = "fanout",
                 max_workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 data_dir: Optional[Union[str, "Path"]] = None,
                 snapshot_every: int = 64,
                 routing: bool = False,
                 tracing: bool = False) -> None:
        if isinstance(system_or_network, PeerNetwork):
            if transport is not None:
                raise NetworkError(
                    "pass the transport when the network is built, not "
                    "to a session over an existing network")
            if routing:
                raise NetworkError(
                    "pass routing when the network is built, not to a "
                    "session over an existing network")
            if tracing:
                raise NetworkError(
                    "pass tracing when the network is built, not to a "
                    "session over an existing network")
            if data_dir is not None:
                raise NetworkError(
                    "pass data_dir when the network is built, not to a "
                    "session over an existing network")
            if timeout is not None:
                raise NetworkError(
                    "pass timeout when the network is built, not to a "
                    "session over an existing network")
            self.network = system_or_network
        else:
            self.network = PeerNetwork.from_system(
                system_or_network, transport=transport,
                hop_budget=hop_budget, retries=retries,
                concurrency=concurrency, max_workers=max_workers,
                timeout=timeout,
                default_method=default_method,
                include_local_ics=include_local_ics,
                evaluator=evaluator, data_dir=data_dir,
                snapshot_every=snapshot_every, routing=routing,
                tracing=tracing)
        self.default_method = default_method

    # ------------------------------------------------------------------
    def answer(self, peer: str, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer one query at ``peer`` over the network runtime.

        Network failures come back as a result with a typed
        :attr:`~repro.core.results.QueryResult.error` — empty answers
        with an error set mean *unknown*, not "no certain answers".
        """
        node = self.network.node(peer)
        request = QueryRequest(peer, query, method, semantics)
        start = time.perf_counter()
        try:
            return node.answer(request.resolved_query(),
                               method=method, semantics=semantics)
        except NetworkError as exc:
            return QueryResult(
                peer=peer,
                query=request.resolved_query(),
                answers=frozenset(),
                semantics=semantics,
                method_requested=method or self.default_method,
                method_used=method or self.default_method,
                solution_count=None,
                elapsed=time.perf_counter() - start,
                error=QueryError(code=_error_code(exc),
                                 message=str(exc),
                                 peer=getattr(exc, "peer", "") or peer),
            )

    def answer_many(self, requests: Iterable[Union[QueryRequest, tuple]]
                    ) -> list[QueryResult]:
        """Batch execution, one result per request, in order; failures
        degrade per-result instead of aborting the batch."""
        results = []
        for request in requests:
            if not isinstance(request, QueryRequest):
                request = QueryRequest(*request)
            results.append(self.answer(request.peer, request.query,
                                       method=request.method,
                                       semantics=request.semantics))
        return results

    def explain(self, peer: str, query: Union[Query, str],
                candidate: Optional[tuple] = None):
        """Definition-5 certification evidence computed at the node.

        Raises :class:`~repro.net.errors.NetworkError` on network
        failures (there is no result object to carry a typed error).
        """
        return self.network.node(peer).explain(query, candidate)

    def local_view(self, peer: str) -> PeerSystem:
        """The peer's materialised network view (gathers on first use)."""
        return self.network.node(peer).local_view()

    # ------------------------------------------------------------------
    def use_system(self, system: PeerSystem) -> "NetworkSession":
        """Push a new version of the data to every node (see
        :meth:`PeerNetwork.sync`); returns ``self`` for chaining."""
        self.network.sync(system)
        return self

    @property
    def exchange_log(self):
        """The network's thread-safe log of real message traffic."""
        return self.network.exchange_log

    def close(self) -> None:
        self.network.close()

    def __enter__(self) -> "NetworkSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"NetworkSession({self.network!r}, "
                f"default_method={self.default_method!r})")


def open_session(system: PeerSystem, *,
                 network: Union[bool, str] = False,
                 **kwargs):
    """The one-argument switch between execution backends.

    ``network=False`` returns the in-process
    :class:`~repro.core.session.PeerQuerySession`; ``network=True``
    returns a :class:`NetworkSession` running each peer as a
    message-passing node *inside this process*; ``network="wire"``
    launches every peer as an independent OS process serving the wire
    protocol over TCP (see :mod:`repro.wire`) and returns a
    :class:`~repro.wire.session.RemoteNetworkSession` connected to the
    live cluster — remember to ``close()`` it (or use ``with``), which
    shuts the processes down.

    Keyword arguments are forwarded to whichever backend is chosen (the
    local session accepts ``default_method``, ``include_local_ics``,
    ``evaluator``; the network session also takes ``transport``,
    ``hop_budget``, ``retries``, ``concurrency``, ``timeout``,
    ``data_dir``, ``routing``, ``tracing``; the wire backend takes the
    cluster knobs of :func:`repro.wire.cluster.open_wire_session` —
    ``data_dir``, ``host``, ``hop_budget``, ``retries``, ``timeout``,
    ``request_timeout``, ``snapshot_every``, ``startup_timeout``,
    ``routing``, ``tracing``).
    """
    if network == "wire":
        from ..wire import open_wire_session
        allowed = ("default_method", "retries", "timeout",
                   "request_timeout", "data_dir", "host", "hop_budget",
                   "snapshot_every", "startup_timeout", "python",
                   "routing", "tracing")
        unknown = set(kwargs) - set(allowed)
        if unknown:
            raise NetworkError(
                f"{sorted(unknown)} do not apply to the wire backend; "
                f"it takes {sorted(allowed)}")
        return open_wire_session(system, **kwargs)
    if network is True or network == "network":
        return NetworkSession(system, **kwargs)
    if network is not False and network != "local":
        raise NetworkError(
            f"unknown execution backend {network!r}; use False (local), "
            f"True (in-process network), or 'wire' (cross-process)")
    allowed = ("default_method", "include_local_ics", "evaluator")
    unknown = set(kwargs) - set(allowed)
    if unknown:
        raise NetworkError(
            f"{sorted(unknown)} only apply to the network backends; "
            f"pass network=True or network='wire'")
    return PeerQuerySession(system, **kwargs)
