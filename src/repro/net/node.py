"""An independent peer node: local data, local answering, typed messages.

A :class:`PeerNode` is one peer of a :class:`~repro.core.system.PeerSystem`
running as its own process-like unit.  It holds only what the paper lets
a peer know locally: its :class:`~repro.core.system.Peer` (schema + local
ICs), its own facts — owned by a versioned
:class:`~repro.storage.base.FactStore` rather than a bare instance — the
DECs *it owns* (Σ(P, ·)), and its own trust edges.  Everything else is
learned by exchanging protocol messages with neighbours.

Serving side — :meth:`PeerNode.handle` answers two request shapes from
its local state alone:

* :class:`~repro.net.protocol.FetchRelation` → the relation's tuples;
  when the requester names a ``known_version`` the store still retains
  the delta chain for, the reply is a *versioned delta* (insertions and
  deletions since that version) instead of the full relation;
* :class:`~repro.net.protocol.PeerQuery` (``kind="subsystem"``) → a
  description of the node's accessible sub-network, gathered hop-by-hop:
  the node describes itself, asks each unvisited DEC-neighbour for *its*
  sub-network (fanned out concurrently through the network router), then
  fetches the neighbours' relation contents — so distant peers' data is
  relayed through intermediates, never pulled from a global store.
  Fetches remember the rows and content version they last saw per
  neighbour relation, so a re-gather after a sync ships deltas instead
  of full relations.

Answering side — :meth:`PeerNode.answer` materialises the gathered
sub-network as a local view :class:`~repro.core.system.PeerSystem` and
drives a cached :class:`~repro.core.session.PeerQuerySession` over it,
so every registered answer method (``auto``/``asp``/``rewrite``/
``model``/``lav``/``transitive``) runs unchanged against node-local
state.  Views, sessions, and :class:`~repro.core.results.QueryResult`
objects are cached per system version — a *content-derived* fingerprint,
so cache entries stay valid across process restarts; :meth:`update_instance`
(called by :meth:`PeerNetwork.sync <repro.net.network.PeerNetwork.sync>`)
moves the node to a new version, records the change as a delta in the
store, and drops stale entries.

Durability — construct with ``data_dir`` and the node survives
restarts: its facts live in a
:class:`~repro.storage.durable.DurableFactStore` (append-only delta
logs + snapshots, write-through, reloaded on construction; on-disk
state wins over the ``instance`` argument), while the answer cache
(keyed by content version + answering configuration) and the
neighbour-fetch cache are flushed to ``answers.json``/``fetched.json``
on :meth:`close` — so a cleanly closed node answers known queries from
disk, and even the first post-restart gather after an update syncs by
delta.  A reloaded node returns answers,
``solution_count``, and ``method_used`` identical to a freshly built
node — the differential suite in ``tests/net`` locks that in.

Because the accessible sub-network is exactly the data Definition 3's
global instance contributes to this peer's solutions (for systems whose
peers are all reachable from the queried root — every paper workload and
:func:`~repro.workloads.synthetic.topology_system` family), the view
answers are tuple-for-tuple identical to the global session's.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

from ..core.results import CERTAIN, ExchangeStats, QueryRequest, QueryResult
from ..core.session import PeerQuerySession
from ..core.system import DataExchange, Peer, PeerSystem
from ..core.trust import TrustLevel, TrustRelation
from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from ..storage import (
    DurableFactStore,
    FactStore,
    MemoryFactStore,
    StorageError,
    merge_relation_rows,
    row_sort_key,
)
from ..routing import NeighbourDigests, RoutingIndex, subsystem_fingerprint
from ..storage.durable import write_json_atomic
from .errors import (
    DeadlineExceeded,
    HopBudgetExceeded,
    NetworkError,
    PeerUnreachableError,
    ProtocolError,
)
from .protocol import (
    SUBSYSTEM,
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    Message,
    PeerQuery,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import PeerNetwork

__all__ = ["PeerNode"]

#: cap on persisted answer-cache entries (oldest dropped first), so a
#: long-lived data directory cannot grow without bound across syncs
_MAX_PERSISTED_ANSWERS = 512


def _dec_key(dec: DataExchange) -> object:
    """A content key for deduplicating relayed DECs.

    Serialisable constraints key on their canonical dict form (stable
    across processes, so wire-decoded copies of one DEC collapse);
    exotic constraint classes outside the io codec fall back to object
    identity — exactly the old in-process behaviour.
    """
    from ..core.io import constraint_to_dict
    try:
        return (dec.owner, dec.other,
                json.dumps(constraint_to_dict(dec.constraint),
                           sort_keys=True))
    except Exception:
        return (dec.owner, dec.other, id(dec))


class PeerNode:
    """One peer served from its own (optionally durable) local state."""

    def __init__(self, peer: Peer, instance: DatabaseInstance,
                 decs: Iterable[DataExchange],
                 trust_edges: Iterable[tuple[str, TrustLevel, str]], *,
                 version: str = "",
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 data_dir: Optional[Union[str, Path]] = None,
                 snapshot_every: int = 64,
                 routing: bool = False) -> None:
        self.peer = peer
        self.name = peer.name
        self.decs = tuple(decs)
        self.trust_edges = tuple(trust_edges)
        self.default_method = default_method
        self.include_local_ics = include_local_ics
        self.evaluator = evaluator
        self.network: Optional["PeerNetwork"] = None  # set on registration
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is None:
            self.store: FactStore = MemoryFactStore(instance)
        else:
            # on-disk state (if any) wins over the seed instance: a
            # restarted node resumes from what it last persisted
            self.store = DurableFactStore(self.data_dir / "store",
                                          peer.schema, initial=instance,
                                          snapshot_every=snapshot_every)
        self._version = version
        # all caches are keyed (or valid only) per system version
        self._view: Optional[tuple[PeerSystem, ExchangeStats]] = None
        self._session: Optional[PeerQuerySession] = None
        self._answers: dict[tuple, QueryResult] = {}
        self._persisted: dict[tuple, dict] = {}
        # last rows + content version seen per (neighbour, relation)
        self._fetched: dict[tuple[str, str], tuple[str, frozenset]] = {}
        self._fetch_lock = threading.Lock()
        self._lock = threading.RLock()
        #: the learned routing state, or None when the node floods
        self.routing: Optional[RoutingIndex] = (
            RoutingIndex(peer.name) if routing else None)
        self._digest_cache: Optional[NeighbourDigests] = None
        if self.data_dir is not None:
            self._load_persisted()

    # ------------------------------------------------------------------
    # Topology as seen locally
    # ------------------------------------------------------------------
    def neighbours(self) -> tuple[str, ...]:
        """Peers this node's own DECs point at, sorted."""
        return tuple(sorted({exchange.other for exchange in self.decs}))

    @property
    def instance(self) -> DatabaseInstance:
        """The node's current local data (owned by :attr:`store`)."""
        return self.store.instance

    def version(self) -> str:
        return self._version

    def stamp_version(self, version: str) -> None:
        """Set the token identifying the node's *current* content.

        Used by :meth:`PeerNetwork.from_system
        <repro.net.network.PeerNetwork.from_system>` right after
        construction, once it knows whether the stores actually hold
        the system's data (a durable node may have resumed different
        content from disk) — stamping must never assert a version the
        data does not have, or answer caches would alias distinct data.
        """
        with self._lock:
            self._version = version

    def update_instance(self, instance: DatabaseInstance,
                        version: str) -> None:
        """Swap in new local data (a new system version).

        The change lands in the store as a normalised, logged delta —
        which is what lets this node answer neighbours' subsequent
        fetches with deltas — and all view/session caches for older
        versions are dropped.  A no-op update (same content, same
        version) keeps every cache warm.
        """
        with self._lock:
            delta = self.store.replace(instance)
            if delta.empty and version == self._version:
                return
            self._version = version
            self._view = None
            self._session = None
            # version-keyed entries for other versions can never be hit
            # again (versions are content-derived); prune them so a
            # long-lived node does not grow without bound across syncs
            self._answers = {key: value
                             for key, value in self._answers.items()
                             if key[0] == version}

    # ------------------------------------------------------------------
    # Serving: the message handler registered on the transport
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Serve one request from local state; never raises
        :class:`~repro.net.errors.NetworkError` — failures travel back
        as typed :class:`~repro.net.protocol.Failure` replies."""
        try:
            if isinstance(message, FetchRelation):
                return self._serve_fetch(message)
            if isinstance(message, PeerQuery):
                return self._serve_peer_query(message)
            if isinstance(message, AnswerQuery):
                return self._serve_answer_query(message)
        except DeadlineExceeded as exc:
            return self._failure(message, "deadline-exceeded", str(exc))
        except HopBudgetExceeded as exc:
            return self._failure(message, "hop-budget-exhausted", str(exc))
        except PeerUnreachableError as exc:
            return self._failure(message, "peer-unreachable", str(exc))
        except ProtocolError as exc:
            return self._failure(message, "protocol", str(exc))
        except NetworkError as exc:
            return self._failure(message, "network", str(exc))
        return self._failure(
            message, "unsupported-message",
            f"node {self.name!r} cannot serve "
            f"{type(message).__name__} messages")

    def _failure(self, message: Message, code: str,
                 detail: str) -> Failure:
        return Failure(sender=self.name, target=message.sender,
                       in_reply_to=message.correlation_id,
                       code=code, detail=detail)

    def _serve_fetch(self, message: FetchRelation) -> Message:
        if message.relation not in self.peer.schema.names:
            return self._failure(
                message, "unknown-relation",
                f"peer {self.name!r} does not own relation "
                f"{message.relation!r}")
        # one atomic read: a concurrent sync must never let the reply
        # stamp an older version than the rows/chain it ships
        current, chain, rows = self.store.fetch_state(
            message.relation, message.known_version)
        # piggyback digests only when the requester is behind this
        # version — a steady-state empty-delta probe carries none
        digests = None
        if self.routing is not None and message.known_version != current:
            digests = self._own_digests()
            if digests is not None and digests.version != current:
                digests = None  # raced a concurrent sync; don't mislead
        if chain is not None:
            inserted, deleted = merge_relation_rows(
                chain, message.relation)
            payload = {
                "insert": tuple(sorted(inserted, key=row_sort_key)),
                "delete": tuple(sorted(deleted, key=row_sort_key)),
            }
            return Answer(sender=self.name, target=message.sender,
                          in_reply_to=message.correlation_id,
                          payload=payload, version=current,
                          delta=True, digests=digests)
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=tuple(sorted(rows, key=row_sort_key)),
                      version=current, digests=digests)

    def _serve_answer_query(self, message: AnswerQuery) -> Message:
        """Serve a full query answer (the wire runtime's client RPC).

        The node resolves the query, gathers its view, and answers
        exactly as a local caller of :meth:`answer` would; the whole
        :class:`~repro.core.results.QueryResult` travels back as the
        reply payload.  Answering failures (bad query text, unknown
        method) surface as typed :class:`Failure` replies rather than
        killing the connection.
        """
        from ..core.errors import P2PError
        from ..relational.errors import RelationalError
        try:
            result = self.answer(message.query,
                                 method=message.method or None,
                                 semantics=message.semantics)
        except NetworkError:
            raise  # mapped onto Failure codes by handle()
        except (P2PError, RelationalError) as exc:
            return self._failure(message, "bad-request", str(exc))
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id, payload=result)

    def _serve_peer_query(self, message: PeerQuery) -> Message:
        if message.kind != SUBSYSTEM:
            return self._failure(
                message, "unsupported-message",
                f"unknown PeerQuery kind {message.kind!r}")
        if self.network is not None:
            # a served gather is an operation of its own: the *serving*
            # node's network budget bounds it (the requester's budget
            # bounds its wait independently)
            with self.network.operation_deadline():
                payload = self._gather(message.hop_budget,
                                       message.visited)
        else:
            payload = self._gather(message.hop_budget, message.visited)
        version = ""
        digests = None
        if self.routing is not None:
            version = self._subsystem_version()
            if version and message.digest_version != version:
                digests = self._subsystem_digests()
                if digests is not None and digests.version != version:
                    digests = None  # raced a concurrent sync
            token = subsystem_fingerprint(payload)
            if token and message.known_subsystem == token:
                # the requester's cached copy of this payload is still
                # byte-identical (the token is a content hash of it):
                # ship only the fresh gather stats
                payload = {"unchanged": True, "stats": payload["stats"]}
            elif message.known_instances:
                # the payload changed, but individual relayed instances
                # the requester already holds may not have: replace the
                # fingerprint-confirmed ones with dedup markers
                payload = self._dedup_instances(payload,
                                                message.known_instances)
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=payload, version=version, digests=digests)

    @staticmethod
    def _dedup_instances(payload: Mapping, known: Mapping) -> Mapping:
        """Replace relayed instances whose content the requester claims
        to already hold (its ``known_instances`` fingerprints match)
        with ``{"same": fingerprint}`` markers.  Shallow-copied — the
        gather's own payload stays intact for this node's caches."""
        deduped = {}
        hits = 0
        for name, instance in payload["instances"].items():
            fingerprint = known.get(name, "")
            if fingerprint and instance.fingerprint() == fingerprint:
                deduped[name] = {"same": fingerprint}
                hits += 1
            else:
                deduped[name] = instance
        if not hits:
            return payload
        return {**payload, "instances": deduped}

    # ------------------------------------------------------------------
    # The hop-by-hop sub-network gather
    # ------------------------------------------------------------------
    def _gather(self, hop_budget: int,
                visited: tuple[str, ...]) -> dict:
        """Describe this node's accessible sub-network.

        Returns a payload mapping with ``peers``/``instances`` (the
        *other* gathered peers' data — never this node's own, which the
        requester pulls with :class:`~repro.net.protocol.FetchRelation`),
        ``decs``, ``trust``, and the aggregated ``stats`` of every
        message this subtree cost.  ``visited`` carries the peers other
        branches already claimed, so diamonds are not re-fetched and
        cycles terminate; ``hop_budget`` bounds the residual depth and
        raises :class:`~repro.net.errors.HopBudgetExceeded` when the
        sub-network is deeper than allowed.

        Claiming covers ancestors and the current node's own pending
        neighbours only, so a peer reachable through two *non-sibling*
        branches of a diamond is gathered once per branch — duplicated
        traffic (merged away below), accepted to keep branches fully
        concurrent with no cross-branch coordination; stacked diamonds
        amplify it, so very dense graphs should prefer a wider
        ``hop_budget``-bounded topology or a routing layer (see the
        ROADMAP's sharding note).

        With :attr:`routing` enabled, the gather consults the learned
        :class:`~repro.routing.index.RoutingIndex` to elide provably
        redundant messages — synthesizing leaf-context subsystem
        replies from static descriptions, substituting token-confirmed
        cached payloads for ``unchanged`` acknowledgements, and
        skipping fetches whose cached rows (or digest-proven emptiness)
        are confirmed current *in this same gather*.  Every pending
        neighbour still receives at least one message, and anything
        unconfirmed falls back to the flooding behaviour, so answers
        and fault observability are identical in both modes.
        """
        if self.network is None:
            raise ProtocolError(
                f"node {self.name!r} is not attached to a network")
        index = self.routing
        if index is not None:
            index.ingest_log(self.network.exchange_log)
        covered = set(visited) | {self.name}
        pending = [n for n in self.neighbours() if n not in covered]
        payload: dict = {
            "peers": {self.name: self.peer},
            "instances": {},
            "decs": list(self.decs),
            "trust": list(self.trust_edges),
            "stats": ExchangeStats(),
        }
        if not pending:
            return payload
        if hop_budget <= 0:
            raise HopBudgetExceeded(
                f"hop budget exhausted at {self.name!r} with unexplored "
                f"neighbours {pending}", peer=self.name)
        claimed = tuple(visited) + (self.name,) + tuple(pending)
        # productivity ordering permutes claimed across gathers; cache
        # contexts key on the *set*, which is what child gathers see
        context = frozenset(claimed)
        pruned = 0

        # phase 1 — concurrent fan-out: each unvisited neighbour
        # describes (and relays) its own sub-network.  A routed gather
        # synthesizes the reply of any neighbour whose DEC targets are
        # all claimed (its gather would find nothing pending and answer
        # from static state alone) and contacts the rest in descending
        # learned-productivity order, quoting the digest version and
        # subsystem token it already holds.
        subs: dict[str, Mapping] = {}
        contact: list[str] = []
        for neighbour in pending:
            synthesized = (index.synthesize(neighbour, context)
                           if index is not None else None)
            if synthesized is not None:
                subs[neighbour] = synthesized
                pruned += 1
            else:
                contact.append(neighbour)
        order = index.order(contact) if index is not None else contact
        held: dict[str, dict] = {}
        queries = []
        for neighbour in order:
            digest_version = known_subsystem = ""
            known_instances = None
            if index is not None:
                digest_version = index.digest_version(neighbour)
                known_subsystem, entry = index.recall_subsystem(
                    neighbour, context)
                if entry is not None:
                    held[neighbour] = entry
                    # claim the relayed instances we hold, so a changed
                    # reply can dedup the ones that did not move
                    known_instances = {
                        name: instance.fingerprint()
                        for name, instance
                        in entry["instances"].items()} or None
                else:
                    known_subsystem = ""
            queries.append(PeerQuery(
                sender=self.name, target=neighbour,
                hop_budget=hop_budget - 1, visited=claimed,
                digest_version=digest_version,
                known_subsystem=known_subsystem,
                known_instances=known_instances))
        subsystem_answers = dict(zip(
            order, self.network.fan_out(self.name, queries)))
        stats = payload["stats"]
        stats += ExchangeStats(requests=len(queries))
        fresh_versions: dict[str, str] = {}
        for neighbour in order:
            answer = subsystem_answers[neighbour]
            sub = answer.payload
            if index is not None:
                if answer.digests is not None:
                    index.observe_digests(answer.digests)
                if answer.version:
                    fresh_versions[neighbour] = answer.version
            if isinstance(sub, Mapping) and sub.get("unchanged"):
                entry = held.get(neighbour)
                if entry is None:
                    raise ProtocolError(
                        f"{neighbour!r} acknowledged a subsystem token "
                        f"{self.name!r} never sent")
                sub = {**entry, "stats": sub["stats"]}
                pruned += 1
            else:
                sub = self._restore_instances(neighbour, sub,
                                              held.get(neighbour))
                if index is not None:
                    index.learn_topology(sub)
                    token = subsystem_fingerprint(sub)
                    if token:
                        index.remember_subsystem(neighbour, context,
                                                 token, sub)
            subs[neighbour] = sub
        for neighbour in pending:  # canonical order, mode-independent
            sub = subs[neighbour]
            payload["peers"].update(sub["peers"])
            payload["instances"].update(sub["instances"])
            payload["decs"].extend(sub["decs"])
            payload["trust"].extend(sub["trust"])
            # relayed data travelled one hop further to reach us
            sub_stats: ExchangeStats = sub["stats"]
            stats += dataclasses.replace(
                sub_stats,
                max_hops=sub_stats.max_hops + 1 if sub_stats.max_hops
                else 0)

        # phase 2 — concurrent fan-out: pull each direct neighbour's
        # relation contents (deeper peers' data arrived relayed above).
        # Each fetch names the content version this node last saw for
        # that relation, so providers reply with versioned deltas when
        # they still hold the chain — full relations otherwise.  A
        # routed gather elides a fetch only on a same-gather version
        # confirmation: cached rows already at the confirmed version,
        # or a digest at the confirmed version proving the relation
        # empty — never on an unconfirmed (possibly stale) digest.
        fetches = []
        bases: list[Optional[frozenset]] = []
        data: dict[str, dict[str, frozenset]] = {n: {} for n in pending}
        for neighbour in pending:
            confirmed = fresh_versions.get(neighbour, "")
            digests = (index.digests_for(neighbour)
                       if index is not None and confirmed else None)
            if digests is not None and digests.version != confirmed:
                digests = None
            for relation in sorted(
                    payload["peers"][neighbour].schema.names):
                with self._fetch_lock:
                    cached = self._fetched.get((neighbour, relation))
                if confirmed and cached and cached[0] == confirmed:
                    data[neighbour][relation] = cached[1]
                    pruned += 1
                    continue
                if digests is not None:
                    digest = digests.digest_for(relation)
                    if digest is not None and digest.row_count == 0:
                        empty = frozenset()
                        with self._fetch_lock:
                            self._fetched[(neighbour, relation)] = \
                                (confirmed, empty)
                        data[neighbour][relation] = empty
                        pruned += 1
                        continue
                fetches.append(FetchRelation(
                    sender=self.name, target=neighbour,
                    relation=relation, purpose="subsystem gather",
                    known_version=cached[0] if cached else ""))
                bases.append(cached[1] if cached else None)
        fetch_answers = self.network.fan_out(self.name, fetches)
        tuples_moved = bytes_moved = 0
        for request, base, answer in zip(fetches, bases, fetch_answers):
            if index is not None and answer.digests is not None:
                index.observe_digests(answer.digests)
            rows, moved = self._integrate_fetch(request, base, answer)
            data[request.target][request.relation] = rows
            tuples_moved += moved
            bytes_moved += answer.bytes_estimate
        for neighbour in pending:
            payload["instances"][neighbour] = DatabaseInstance(
                payload["peers"][neighbour].schema, data[neighbour])
        payload["stats"] = stats + ExchangeStats(
            requests=len(fetches), tuples_transferred=tuples_moved,
            bytes_estimate=bytes_moved, max_hops=1,
            neighbours_pruned=pruned,
            neighbours_contacted=len(pending))
        return payload

    def _restore_instances(self, neighbour: str, sub: Mapping,
                           entry: Optional[Mapping]) -> Mapping:
        """Expand ``{"same": fingerprint}`` dedup markers in a relayed
        payload back into the instances this node's cached subsystem
        copy holds.  A marker the cache cannot verify — no cached
        entry, an unknown peer, or a fingerprint mismatch — is a
        protocol violation: silently keeping it would corrupt the
        merged view, and this node only invites markers it can expand.
        """
        instances = sub.get("instances", {})
        if not any(isinstance(instance, Mapping)
                   for instance in instances.values()):
            return sub
        cached = (entry or {}).get("instances", {})
        restored = {}
        for name, instance in instances.items():
            if not isinstance(instance, Mapping):
                restored[name] = instance
                continue
            have = cached.get(name)
            if have is None or have.fingerprint() != instance.get(
                    "same"):
                raise ProtocolError(
                    f"{neighbour!r} deduplicated the instance of "
                    f"{name!r} against a fingerprint {self.name!r} "
                    f"does not hold")
            restored[name] = have
        return {**sub, "instances": restored}

    def _integrate_fetch(self, request: FetchRelation,
                         base: Optional[frozenset],
                         answer: Answer) -> tuple[frozenset, int]:
        """Turn one fetch reply into the relation's full rows.

        Delta replies are applied to the rows this node held at the
        ``known_version`` it asked about; full replies replace them.
        Either way the fetch cache remembers the new rows under the
        provider's stamped version for the next gather.
        """
        if answer.delta:
            if base is None:
                raise ProtocolError(
                    f"{request.target!r} sent a delta for "
                    f"{request.relation!r} but {self.name!r} holds no "
                    f"base rows at version {request.known_version!r}")
            payload = answer.payload
            inserted = frozenset(payload.get("insert", ()))
            deleted = frozenset(payload.get("delete", ()))
            rows = frozenset((base - deleted) | inserted)
            moved = len(inserted) + len(deleted)
        else:
            rows = frozenset(answer.payload)
            moved = len(rows)
        if answer.version:
            with self._fetch_lock:
                self._fetched[(request.target, request.relation)] = \
                    (answer.version, rows)
        return rows, moved

    # ------------------------------------------------------------------
    # Routing digests (piggybacked on Answers when routing is enabled)
    # ------------------------------------------------------------------
    def _own_digests(self) -> Optional[NeighbourDigests]:
        """This node's per-relation digests at its current store
        version (cached per version; ``None`` if a concurrent sync kept
        racing the consistent read)."""
        for _attempt in range(3):
            version = self.store.version()
            cached = self._digest_cache
            if cached is not None and cached.version == version:
                return cached
            tables = {}
            consistent = True
            for relation in sorted(self.peer.schema.names):
                current, _chain, rows = self.store.fetch_state(relation)
                if current != version:
                    consistent = False
                    break
                tables[relation] = rows
            if not consistent:
                continue
            digests = NeighbourDigests.from_tables(self.name, version,
                                                   tables)
            self._digest_cache = digests
            return digests
        return None

    def _subsystem_digests(self) -> Optional[NeighbourDigests]:
        """Digests to piggyback on subsystem replies.  The sharded node
        overrides this to ``None``: its store holds only a slice, and a
        slice digest (e.g. ``row_count == 0`` with rows on sibling
        shards) would misdescribe the logical peer — slice digests
        travel on fetch replies instead, composed by the
        :class:`~repro.shard.router.ShardRouter`."""
        return self._own_digests()

    def _subsystem_version(self) -> str:
        """The store version stamped on subsystem replies (the token
        requesters confirm fetch elisions against).  The sharded node
        overrides this to ``""`` — its slice version never describes
        the logical peer, so requesters must always fetch."""
        return self.store.version()

    def _complete_own_instance(self) -> tuple[DatabaseInstance,
                                              ExchangeStats]:
        """The node's own contribution to its view, plus its cost.

        A plain node holds its entire peer's data locally, so the view
        uses the store's instance for free.  The sharded node
        (:class:`~repro.shard.node.ShardedPeerNode`) overrides this to
        reassemble the *logical* instance from every sibling shard
        before answering — answer sets are not unions across data
        partitions, so the view must see the whole peer.
        """
        return self.instance, ExchangeStats()

    # ------------------------------------------------------------------
    # The local view and the answering surface
    # ------------------------------------------------------------------
    def local_view(self) -> PeerSystem:
        """The node's materialised view: a :class:`PeerSystem` assembled
        from the gathered sub-network (cached per version)."""
        return self._view_and_cost()[0]

    def _view_and_cost(self) -> tuple[PeerSystem, ExchangeStats]:
        with self._lock:
            if self._view is None:
                hop_budget = (self.network.hop_budget
                              if self.network is not None else 8)
                if self.network is not None:
                    with self.network.operation_deadline():
                        payload = self._gather(hop_budget, ())
                else:
                    payload = self._gather(hop_budget, ())
                own_instance, own_cost = self._complete_own_instance()
                payload["instances"][self.name] = own_instance
                payload["stats"] = payload["stats"] + own_cost
                peers = payload["peers"]
                # branches that race to the same peer through a diamond
                # may relay its DECs twice; the merge dedups by content
                # (identity is not enough once DECs cross a wire
                # transport, where every branch decodes fresh objects)
                seen: set = set()
                decs = [dec for dec in payload["decs"]
                        if (key := _dec_key(dec)) not in seen
                        and not seen.add(key)]
                trust = TrustRelation(
                    {(owner, level, other)
                     for owner, level, other in payload["trust"]
                     if owner in peers and other in peers})
                view = PeerSystem(
                    peers.values(), payload["instances"],
                    decs, trust, enforce_local_ics=False)
                self._view = (view, payload["stats"])
            return self._view

    def _view_session(self) -> PeerQuerySession:
        with self._lock:
            if self._session is None:
                self._session = PeerQuerySession(
                    self.local_view(),
                    default_method=self.default_method,
                    include_local_ics=self.include_local_ics,
                    evaluator=self.evaluator)
            return self._session

    def answer(self, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer a query over this node's network view.

        The result is the view session's — same methods, same planner,
        same provenance — with the exchange stats replaced by the *real*
        message traffic of the gather that built the view (zero on a
        warm view) and ``elapsed`` covering gather plus answering.
        Cached per ``(version, query, method, semantics)``; with a
        ``data_dir`` the cache is flushed to disk on :meth:`close`, so
        a cleanly restarted node serves previously answered queries
        without a single message.
        """
        parsed = QueryRequest(self.name, query).resolved_query()
        key = (self._version, str(parsed), method or self.default_method,
               semantics)
        # the whole answer path runs under the node lock: the view
        # session is single-threaded state, exactly like a real node's
        # process (serving fetches/gathers for *other* peers never takes
        # this lock, so held-while-gathering cannot deadlock)
        with self._lock:
            cached = self._answers.get(key)
            if cached is None and self._persisted:
                stored = self._persisted.get(
                    key + (self.include_local_ics, self.evaluator))
                if stored is not None:
                    cached = self._revive_answer(parsed, stored)
                    self._answers[key] = cached
            if cached is not None:
                return dataclasses.replace(cached, from_cache=True,
                                           exchange=ExchangeStats(),
                                           elapsed=0.0)
            start = time.perf_counter()
            had_view = self._view is not None
            gather_cost = self._view_and_cost()[1]
            result = self._view_session().answer(
                self.name, parsed, method=method, semantics=semantics)
            elapsed = time.perf_counter() - start
            result = dataclasses.replace(
                result,
                exchange=gather_cost if not had_view else ExchangeStats(),
                elapsed=elapsed)
            self._answers[key] = result
            return result

    def explain(self, query: Union[Query, str],
                candidate: Optional[tuple] = None):
        """Definition-5 certification evidence over the network view."""
        return self._view_session().explain(self.name, query, candidate)

    # ------------------------------------------------------------------
    # Persistence (answers + fetch cache under the data directory)
    # ------------------------------------------------------------------
    def _revive_answer(self, parsed: "Query", stored: dict) -> QueryResult:
        return QueryResult(
            peer=self.name,
            query=parsed,
            answers=frozenset(tuple(row) for row in stored["answers"]),
            semantics=stored["semantics"],
            method_requested=stored["method_requested"],
            method_used=stored["method_used"],
            solution_count=stored["solution_count"],
        )

    def _answer_config(self) -> dict:
        """The knobs a cached answer depends on beyond its key.

        ``method`` and ``semantics`` are in the key already (and the
        default method is resolved into it); these two change what a
        given key *means*, so persisted entries carry them and a node
        configured differently must not revive them.
        """
        return {"include_local_ics": self.include_local_ics,
                "evaluator": self.evaluator}

    def _load_persisted(self) -> None:
        answers_path = self.data_dir / "answers.json"
        if answers_path.is_file():
            try:
                with open(answers_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = {}
            for entry in payload.get("entries", []):
                try:
                    # the full key includes the answering configuration:
                    # entries computed under a different configuration
                    # are kept (and re-persisted), never served
                    key = (entry["version"], entry["query"],
                           entry["method"], entry["semantics"],
                           entry["include_local_ics"],
                           entry["evaluator"])
                    self._persisted[key] = entry
                except (KeyError, TypeError):
                    continue  # skip malformed entries, keep the rest
        fetched_path = self.data_dir / "fetched.json"
        if fetched_path.is_file():
            try:
                with open(fetched_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = {}
            for entry in payload.get("entries", []):
                try:
                    rows = frozenset(tuple(row)
                                     for row in entry["rows"])
                    self._fetched[(entry["peer"], entry["relation"])] = \
                        (entry["version"], rows)
                except (KeyError, TypeError):
                    continue

    def _persist_answers(self) -> None:
        if self.data_dir is None:
            return
        config = (self.include_local_ics, self.evaluator)
        entries = list(self._persisted.values())
        seen = {(e["version"], e["query"], e["method"], e["semantics"],
                 e["include_local_ics"], e["evaluator"])
                for e in entries}
        for key, result in self._answers.items():
            if key + config in seen or result.failed:
                continue
            entries.append({
                "version": key[0], "query": key[1], "method": key[2],
                "semantics": key[3], **self._answer_config(),
                "answers": [list(row) for row in sorted(
                    result.answers, key=row_sort_key)],
                "solution_count": result.solution_count,
                "method_used": result.method_used,
                "method_requested": result.method_requested,
            })
        if len(entries) > _MAX_PERSISTED_ANSWERS:
            entries = entries[-_MAX_PERSISTED_ANSWERS:]
        self._write_json(self.data_dir / "answers.json",
                         {"format": 1, "peer": self.name,
                          "entries": entries})

    def _persist_fetch_cache(self) -> None:
        if self.data_dir is None:
            return
        with self._fetch_lock:
            snapshot = dict(self._fetched)
        entries = [{"peer": peer, "relation": relation,
                    "version": version,
                    "rows": [list(row) for row in sorted(
                        rows, key=row_sort_key)]}
                   for (peer, relation), (version, rows)
                   in sorted(snapshot.items())]
        self._write_json(self.data_dir / "fetched.json",
                         {"format": 1, "entries": entries})

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        try:
            write_json_atomic(path, payload)
        except (StorageError, OSError):
            # non-JSON-safe values (exotic domains) or a full disk:
            # answer/fetch-cache persistence is best-effort — the node
            # still answers, it just re-computes after a restart
            return

    def close(self) -> None:
        """Flush persistent state (answers, fetch cache, store meta)."""
        with self._lock:
            self._persist_answers()
            self._persist_fetch_cache()
            self.store.close()

    def __repr__(self) -> str:
        return (f"PeerNode({self.name!r}, "
                f"{len(self.decs)} DECs, neighbours="
                f"{list(self.neighbours())})")
