"""An independent peer node: local data, local answering, typed messages.

A :class:`PeerNode` is one peer of a :class:`~repro.core.system.PeerSystem`
running as its own process-like unit.  It holds only what the paper lets
a peer know locally: its :class:`~repro.core.system.Peer` (schema + local
ICs), its own facts — owned by a versioned
:class:`~repro.storage.base.FactStore` rather than a bare instance — the
DECs *it owns* (Σ(P, ·)), and its own trust edges.  Everything else is
learned by exchanging protocol messages with neighbours.

Serving side — :meth:`PeerNode.handle` answers two request shapes from
its local state alone:

* :class:`~repro.net.protocol.FetchRelation` → the relation's tuples;
  when the requester names a ``known_version`` the store still retains
  the delta chain for, the reply is a *versioned delta* (insertions and
  deletions since that version) instead of the full relation;
* :class:`~repro.net.protocol.PeerQuery` (``kind="subsystem"``) → a
  description of the node's accessible sub-network, gathered hop-by-hop:
  the node describes itself, asks each unvisited DEC-neighbour for *its*
  sub-network (fanned out concurrently through the network router), then
  fetches the neighbours' relation contents — so distant peers' data is
  relayed through intermediates, never pulled from a global store.
  Fetches remember the rows and content version they last saw per
  neighbour relation, so a re-gather after a sync ships deltas instead
  of full relations.

Answering side — :meth:`PeerNode.answer` materialises the gathered
sub-network as a local view :class:`~repro.core.system.PeerSystem` and
drives a cached :class:`~repro.core.session.PeerQuerySession` over it,
so every registered answer method (``auto``/``asp``/``rewrite``/
``model``/``lav``/``transitive``) runs unchanged against node-local
state.  Views, sessions, and :class:`~repro.core.results.QueryResult`
objects are cached per system version — a *content-derived* fingerprint,
so cache entries stay valid across process restarts; :meth:`update_instance`
(called by :meth:`PeerNetwork.sync <repro.net.network.PeerNetwork.sync>`)
moves the node to a new version, records the change as a delta in the
store, and drops stale entries.

Durability — construct with ``data_dir`` and the node survives
restarts: its facts live in a
:class:`~repro.storage.durable.DurableFactStore` (append-only delta
logs + snapshots, write-through, reloaded on construction; on-disk
state wins over the ``instance`` argument), while the answer cache
(keyed by content version + answering configuration) and the
neighbour-fetch cache are flushed to ``answers.json``/``fetched.json``
on :meth:`close` — so a cleanly closed node answers known queries from
disk, and even the first post-restart gather after an update syncs by
delta.  A reloaded node returns answers,
``solution_count``, and ``method_used`` identical to a freshly built
node — the differential suite in ``tests/net`` locks that in.

Because the accessible sub-network is exactly the data Definition 3's
global instance contributes to this peer's solutions (for systems whose
peers are all reachable from the queried root — every paper workload and
:func:`~repro.workloads.synthetic.topology_system` family), the view
answers are tuple-for-tuple identical to the global session's.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

from ..core.results import CERTAIN, ExchangeStats, QueryRequest, QueryResult
from ..core.session import PeerQuerySession
from ..core.system import DataExchange, Peer, PeerSystem
from ..core.trust import TrustLevel, TrustRelation
from ..datalog.terms import Constant
from ..relational.instance import DatabaseInstance
from ..relational.query import And, Cmp, Exists, Or, Query, RelAtom, _Truth
from ..storage import (
    DurableFactStore,
    FactStore,
    MemoryFactStore,
    StorageError,
    merge_relation_rows,
    row_sort_key,
)
from ..routing import (
    NeighbourDigests,
    RoutingIndex,
    SubtreeDigest,
    aggregate_bytes,
    build_subtree,
    digest_bytes,
    subsystem_fingerprint,
)
from ..obs.trace import Span, TraceContext, new_id
from ..storage.durable import write_json_atomic
from .errors import (
    DeadlineExceeded,
    HopBudgetExceeded,
    NetworkError,
    PeerUnreachableError,
    ProtocolError,
)
from .protocol import (
    SUBSYSTEM,
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    Message,
    PeerQuery,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import PeerNetwork

__all__ = ["PeerNode"]

#: cap on persisted answer-cache entries (oldest dropped first), so a
#: long-lived data directory cannot grow without bound across syncs
_MAX_PERSISTED_ANSWERS = 512

#: the shared falsy context untraced operations run under
_UNTRACED = TraceContext()


def _serve_span_name(message: Message) -> str:
    """How a served request's span is labelled in the trace."""
    if isinstance(message, FetchRelation):
        return f"serve:fetch:{message.relation}"
    if isinstance(message, PeerQuery):
        return "serve:gather"
    if isinstance(message, AnswerQuery):
        return "serve:answer"
    return f"serve:{type(message).__name__.lower()}"


def _dec_key(dec: DataExchange) -> object:
    """A content key for deduplicating relayed DECs.

    Serialisable constraints key on their canonical dict form (stable
    across processes, so wire-decoded copies of one DEC collapse);
    exotic constraint classes outside the io codec fall back to object
    identity — exactly the old in-process behaviour.
    """
    from ..core.io import constraint_to_dict
    try:
        return (dec.owner, dec.other,
                json.dumps(constraint_to_dict(dec.constraint),
                           sort_keys=True))
    except Exception:
        return (dec.owner, dec.other, id(dec))


class PeerNode:
    """One peer served from its own (optionally durable) local state."""

    def __init__(self, peer: Peer, instance: DatabaseInstance,
                 decs: Iterable[DataExchange],
                 trust_edges: Iterable[tuple[str, TrustLevel, str]], *,
                 version: str = "",
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 data_dir: Optional[Union[str, Path]] = None,
                 snapshot_every: int = 64,
                 routing: bool = False,
                 tracing: bool = False) -> None:
        self.peer = peer
        self.name = peer.name
        self.decs = tuple(decs)
        self.trust_edges = tuple(trust_edges)
        self.default_method = default_method
        self.include_local_ics = include_local_ics
        self.evaluator = evaluator
        self.network: Optional["PeerNetwork"] = None  # set on registration
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is None:
            self.store: FactStore = MemoryFactStore(instance)
        else:
            # on-disk state (if any) wins over the seed instance: a
            # restarted node resumes from what it last persisted
            self.store = DurableFactStore(self.data_dir / "store",
                                          peer.schema, initial=instance,
                                          snapshot_every=snapshot_every)
        self._version = version
        # all caches are keyed (or valid only) per system version.
        # Views and sessions key on the relevance scope that gathered
        # them: () is the full (unscoped) view, valid for any query; a
        # constants tuple keys a scoped view valid only for queries
        # over exactly those constants
        self._views: dict[tuple, tuple[PeerSystem, ExchangeStats]] = {}
        self._sessions: dict[tuple, PeerQuerySession] = {}
        # the complete peer set of the last unscoped gather — the
        # global-safety gate for relevance scoping (static topology:
        # sync rejects topology changes, so this never goes stale)
        self._known_subsystem_peers: frozenset = frozenset()
        self._answers: dict[tuple, QueryResult] = {}
        self._persisted: dict[tuple, dict] = {}
        # last rows + content version seen per (neighbour, relation)
        self._fetched: dict[tuple[str, str], tuple[str, frozenset]] = {}
        self._fetch_lock = threading.Lock()
        self._lock = threading.RLock()
        #: the learned routing state, or None when the node floods
        self.routing: Optional[RoutingIndex] = (
            RoutingIndex(peer.name) if routing else None)
        #: whether root answers on this node open a distributed trace;
        #: served requests carrying a trace id are honoured regardless
        #: (the requester opted in and pays the span bytes)
        self.tracing = tracing
        # the trace context of the operation running on this thread —
        # thread-local because a node serves many requesters at once
        self._trace_ctx = threading.local()
        self._digest_cache: Optional[NeighbourDigests] = None
        if self.data_dir is not None:
            self._load_persisted()

    # ------------------------------------------------------------------
    # Topology as seen locally
    # ------------------------------------------------------------------
    def neighbours(self) -> tuple[str, ...]:
        """Peers this node's own DECs point at, sorted."""
        return tuple(sorted({exchange.other for exchange in self.decs}))

    @property
    def instance(self) -> DatabaseInstance:
        """The node's current local data (owned by :attr:`store`)."""
        return self.store.instance

    def version(self) -> str:
        return self._version

    def stamp_version(self, version: str) -> None:
        """Set the token identifying the node's *current* content.

        Used by :meth:`PeerNetwork.from_system
        <repro.net.network.PeerNetwork.from_system>` right after
        construction, once it knows whether the stores actually hold
        the system's data (a durable node may have resumed different
        content from disk) — stamping must never assert a version the
        data does not have, or answer caches would alias distinct data.
        """
        with self._lock:
            self._version = version

    def update_instance(self, instance: DatabaseInstance,
                        version: str) -> None:
        """Swap in new local data (a new system version).

        The change lands in the store as a normalised, logged delta —
        which is what lets this node answer neighbours' subsequent
        fetches with deltas — and all view/session caches for older
        versions are dropped.  A no-op update (same content, same
        version) keeps every cache warm.
        """
        with self._lock:
            delta = self.store.replace(instance)
            if delta.empty and version == self._version:
                return
            self._version = version
            self._views = {}
            self._sessions = {}
            # version-keyed entries for other versions can never be hit
            # again (versions are content-derived); prune them so a
            # long-lived node does not grow without bound across syncs
            self._answers = {key: value
                             for key, value in self._answers.items()
                             if key[0] == version}

    # ------------------------------------------------------------------
    # Serving: the message handler registered on the transport
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Serve one request from local state; never raises
        :class:`~repro.net.errors.NetworkError` — failures travel back
        as typed :class:`~repro.net.protocol.Failure` replies.

        A message carrying a ``trace_id`` is served under a span: the
        serve duration is recorded, every span this node (and anything
        it contacted) produced for the trace is drained from the shared
        recorder, and the lot rides back piggybacked on the reply — so
        the requester reassembles the full cross-process tree.  The
        untraced path pays one truthiness check.
        """
        recorder = self._recorder()
        if not message.trace_id or recorder is None:
            return self._dispatch(message)
        ctx = TraceContext(message.trace_id, message.span_id,
                           message.parent_span_id)
        span_id = new_id()
        previous = getattr(self._trace_ctx, "ctx", None)
        self._trace_ctx.ctx = ctx.descend(span_id)
        start = time.monotonic()
        try:
            reply = self._dispatch(message)
        finally:
            self._trace_ctx.ctx = previous
        recorder.record(Span(ctx.trace_id, span_id, ctx.span_id,
                             _serve_span_name(message), self.name,
                             start, time.monotonic() - start))
        spans = recorder.drain(ctx.trace_id)
        if spans and isinstance(reply, (Answer, Failure)):
            reply = dataclasses.replace(reply,
                                        spans=reply.spans + spans)
        return reply

    def _current_trace(self) -> TraceContext:
        return getattr(self._trace_ctx, "ctx", None) or _UNTRACED

    def _recorder(self):
        """The network-shared span recorder (None when detached)."""
        return self.network.spans if self.network is not None else None

    def _trace_fields(self, ctx: TraceContext) -> dict:
        """The trace fields to stamp on an outgoing request: a fresh
        span id for its round trip, parented under the current span.
        Empty (all-default) when untraced."""
        if not ctx:
            return {}
        return {"trace_id": ctx.trace_id, "span_id": new_id(),
                "parent_span_id": ctx.span_id}

    def _dispatch(self, message: Message) -> Message:
        try:
            if isinstance(message, FetchRelation):
                return self._serve_fetch(message)
            if isinstance(message, PeerQuery):
                return self._serve_peer_query(message)
            if isinstance(message, AnswerQuery):
                return self._serve_answer_query(message)
        except DeadlineExceeded as exc:
            return self._failure(message, "deadline-exceeded", str(exc))
        except HopBudgetExceeded as exc:
            return self._failure(message, "hop-budget-exhausted", str(exc))
        except PeerUnreachableError as exc:
            return self._failure(message, "peer-unreachable", str(exc))
        except ProtocolError as exc:
            return self._failure(message, "protocol", str(exc))
        except NetworkError as exc:
            return self._failure(message, "network", str(exc))
        return self._failure(
            message, "unsupported-message",
            f"node {self.name!r} cannot serve "
            f"{type(message).__name__} messages")

    def _failure(self, message: Message, code: str,
                 detail: str) -> Failure:
        return Failure(sender=self.name, target=message.sender,
                       in_reply_to=message.correlation_id,
                       code=code, detail=detail)

    def _serve_fetch(self, message: FetchRelation) -> Message:
        if message.relation not in self.peer.schema.names:
            return self._failure(
                message, "unknown-relation",
                f"peer {self.name!r} does not own relation "
                f"{message.relation!r}")
        # one atomic read: a concurrent sync must never let the reply
        # stamp an older version than the rows/chain it ships
        current, chain, rows = self.store.fetch_state(
            message.relation, message.known_version)
        # piggyback digests only when the requester is behind this
        # version — a steady-state empty-delta probe carries none
        digests = None
        if self.routing is not None and message.known_version != current:
            digests = self._own_digests()
            if digests is not None and digests.version != current:
                digests = None  # raced a concurrent sync; don't mislead
        if chain is not None:
            inserted, deleted = merge_relation_rows(
                chain, message.relation)
            payload = {
                "insert": tuple(sorted(inserted, key=row_sort_key)),
                "delete": tuple(sorted(deleted, key=row_sort_key)),
            }
            return Answer(sender=self.name, target=message.sender,
                          in_reply_to=message.correlation_id,
                          payload=payload, version=current,
                          delta=True, digests=digests)
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=tuple(sorted(rows, key=row_sort_key)),
                      version=current, digests=digests)

    def _serve_answer_query(self, message: AnswerQuery) -> Message:
        """Serve a full query answer (the wire runtime's client RPC).

        The node resolves the query, gathers its view, and answers
        exactly as a local caller of :meth:`answer` would; the whole
        :class:`~repro.core.results.QueryResult` travels back as the
        reply payload.  Answering failures (bad query text, unknown
        method) surface as typed :class:`Failure` replies rather than
        killing the connection.
        """
        from ..core.errors import P2PError
        from ..relational.errors import RelationalError
        try:
            result = self.answer(message.query,
                                 method=message.method or None,
                                 semantics=message.semantics)
        except NetworkError:
            raise  # mapped onto Failure codes by handle()
        except (P2PError, RelationalError) as exc:
            return self._failure(message, "bad-request", str(exc))
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id, payload=result)

    def _serve_peer_query(self, message: PeerQuery) -> Message:
        if message.kind != SUBSYSTEM:
            return self._failure(
                message, "unsupported-message",
                f"unknown PeerQuery kind {message.kind!r}")
        constants = (tuple(message.constants)
                     if self.routing is not None else ())
        if self.network is not None:
            # a served gather is an operation of its own: the *serving*
            # node's network budget bounds it (the requester's budget
            # bounds its wait independently)
            with self.network.operation_deadline():
                payload = self._gather(message.hop_budget,
                                       message.visited, constants)
        else:
            payload = self._gather(message.hop_budget, message.visited,
                                   constants)
        aggregate = payload.pop("aggregate", None)
        version = ""
        digests = None
        attach = None
        aggregate_token = ""
        if self.routing is not None:
            if aggregate is not None:
                # always stamp the current subtree token; ship the bits
                # only when the requester's quoted token is behind AND
                # the requester can use them — the query is scoped
                # (constants to prune against) or a quoted token shows
                # it maintains an aggregate for this subtree.  Unscoped
                # token-less gathers can never prune by disjointness,
                # so shipping bits there is pure overhead.
                aggregate_token = aggregate.token
                if message.aggregate_token != aggregate.token:
                    if message.constants or message.aggregate_token:
                        attach = aggregate
                elif (constants and aggregate.safe
                        and aggregate.disjoint_from(constants)):
                    # tier A — the requester holds this exact aggregate
                    # (token-confirmed in this gather) and the subtree
                    # is provably irrelevant to the query: acknowledge
                    # instead of relaying the payload
                    return Answer(
                        sender=self.name, target=message.sender,
                        in_reply_to=message.correlation_id,
                        payload={"irrelevant": True,
                                 "stats": payload["stats"]},
                        aggregate_token=aggregate_token)
            version = self._subsystem_version()
            if version and message.digest_version != version:
                digests = self._subsystem_digests()
                if digests is not None and digests.version != version:
                    digests = None  # raced a concurrent sync
            token = subsystem_fingerprint(payload)
            if token and message.known_subsystem == token:
                # the requester's cached copy of this payload is still
                # byte-identical (the token is a content hash of it):
                # ship only the fresh gather stats
                payload = {"unchanged": True, "stats": payload["stats"]}
            elif message.known_instances:
                # the payload changed, but individual relayed instances
                # the requester already holds may not have: replace the
                # fingerprint-confirmed ones with dedup markers
                payload = self._dedup_instances(payload,
                                                message.known_instances)
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=payload, version=version, digests=digests,
                      aggregate=attach, aggregate_token=aggregate_token)

    @staticmethod
    def _dedup_instances(payload: Mapping, known: Mapping) -> Mapping:
        """Replace relayed instances whose content the requester claims
        to already hold (its ``known_instances`` fingerprints match)
        with ``{"same": fingerprint}`` markers.  Shallow-copied — the
        gather's own payload stays intact for this node's caches."""
        deduped = {}
        hits = 0
        for name, instance in payload["instances"].items():
            fingerprint = known.get(name, "")
            if fingerprint and instance.fingerprint() == fingerprint:
                deduped[name] = {"same": fingerprint}
                hits += 1
            else:
                deduped[name] = instance
        if not hits:
            return payload
        return {**payload, "instances": deduped}

    # ------------------------------------------------------------------
    # Query-relevance scoping (multi-hop subtree pruning)
    # ------------------------------------------------------------------
    @staticmethod
    def _prune_safe_parts(local_ics, decs, trust) -> bool:
        """Whether one peer's static shape is *prune-safe*.

        Prune-safe means its data can only flow through the system as
        monotone, key-preserving row shipping: every owned DEC is a
        full identity :class:`~repro.relational.constraints.
        InclusionDependency` (same positions on both sides, covering
        every column — no existential witnesses, first column intact),
        every owned trust edge is ``less`` (imports union, nothing is
        repaired against the importer), and there are no local ICs
        (nothing deletes or couples tuples after import).  Under these
        conditions a query selecting on first-column constants depends
        only on rows keyed by those constants, so a subtree digest
        disjoint from them licenses omitting the subtree."""
        from ..relational.constraints import InclusionDependency
        if tuple(local_ics):
            return False
        for _owner, level, _other in trust:
            if str(level) != "less":
                return False
        for dec in decs:
            constraint = dec.constraint
            if not isinstance(constraint, InclusionDependency):
                return False
            positions = constraint.child_positions
            if (not positions
                    or positions != constraint.parent_positions
                    or positions != tuple(range(len(positions)))
                    or len(positions) != len(
                        constraint.antecedent[0].terms)
                    or len(positions) != len(
                        constraint.consequent[0].terms)):
                return False
        return True

    def _prune_safe_own(self) -> bool:
        return self._prune_safe_parts(self.peer.local_ics, self.decs,
                                      self.trust_edges)

    def _relevance(self, formula) -> Optional[tuple[frozenset,
                                                    frozenset]]:
        """``(atom-bound variables, first-column constants)`` of a
        formula in the prunable fragment — or ``None`` outside it.

        The fragment is positive and constant-keyed: conjunction,
        disjunction, existentials, comparisons, and relation atoms
        whose first term is a wire-safe constant over this peer's own
        schema.  Negation, implication, and universals are out — their
        truth can depend on rows *absent* from a scoped view.  Bound
        variables compose as union under ``And``, intersection under
        ``Or`` (a variable is only safe if every branch grounds it in
        an atom — otherwise a branch would enumerate the active domain,
        which a scoped view shrinks)."""
        if isinstance(formula, RelAtom):
            if not formula.terms:
                return None
            first = formula.terms[0]
            if not isinstance(first, Constant):
                return None
            if not isinstance(first.value, (str, int, float, bool)):
                return None
            if formula.relation not in self.peer.schema.names:
                return None
            return (frozenset(formula.free_variables()),
                    frozenset({first.value}))
        if isinstance(formula, (Cmp, _Truth)):
            return frozenset(), frozenset()
        if isinstance(formula, And):
            bound: set = set()
            constants: set = set()
            for part in formula.parts:
                result = self._relevance(part)
                if result is None:
                    return None
                bound |= result[0]
                constants |= result[1]
            return frozenset(bound), frozenset(constants)
        if isinstance(formula, Or):
            shared: Optional[frozenset] = None
            constants = set()
            for part in formula.parts:
                result = self._relevance(part)
                if result is None:
                    return None
                shared = (result[0] if shared is None
                          else shared & result[0])
                constants |= result[1]
            return frozenset(shared or ()), frozenset(constants)
        if isinstance(formula, Exists):
            result = self._relevance(formula.sub)
            if result is None:
                return None
            if not set(formula.variables) <= result[0]:
                return None
            return result[0] - set(formula.variables), result[1]
        return None

    def _scope_constants(self, parsed: Query) -> tuple:
        """The first-column constants a routed gather may prune
        against for this query — ``()`` means *never scope*.

        Scoping requires every gate, each independently conservative:
        routing on; a complete peer set recorded from a prior unscoped
        gather with every peer's description prune-safe (a retained
        peer with richer constraints could couple its constant-keyed
        rows to a pruned subtree's rows, so safety must hold
        *globally*, not just along the pruned branch); and the query
        inside the prunable fragment with every variable atom-bound.
        Anything short of that returns ``()`` and the gather floods
        exactly as before."""
        if self.routing is None:
            return ()
        known = self._known_subsystem_peers
        if not known or not self._prune_safe_own():
            return ()
        for name in known:
            if name == self.name:
                continue
            description = self.routing.description(name)
            if description is None or not self._prune_safe_parts(
                    description.peer.local_ics, description.decs,
                    description.trust):
                return ()
        result = self._relevance(parsed.formula)
        if result is None:
            return ()
        bound, constants = result
        if not constants or not parsed.formula.free_variables() <= bound:
            return ()
        return tuple(sorted(constants,
                            key=lambda v: (type(v).__name__, str(v))))

    @staticmethod
    def _subtree_covered(index: RoutingIndex, child: str, claimed: set,
                         aggregate: SubtreeDigest) -> bool:
        """Whether ``aggregate`` covers everything reachable through
        ``child`` *in this gather's context*.

        An aggregate's ``peers`` describe the subtree as it looked from
        the context that built it; a different ``visited`` set changes
        what is reachable through the same neighbour.  The walk follows
        static DEC targets (descriptions never go stale), stops at
        peers this gather already claims (another branch gathers them),
        and fails closed on any peer the aggregate does not cover or
        the index cannot describe."""
        covered = set(aggregate.peers)
        seen = {child}
        frontier = [child]
        while frontier:
            current = frontier.pop()
            if current not in covered:
                return False
            description = index.description(current)
            if description is None:
                return False
            for target in description.targets:
                if target in claimed or target in seen:
                    continue
                seen.add(target)
                frontier.append(target)
        return True

    # ------------------------------------------------------------------
    # The hop-by-hop sub-network gather
    # ------------------------------------------------------------------
    def _gather(self, hop_budget: int, visited: tuple[str, ...],
                constants: tuple = ()) -> dict:
        """Describe this node's accessible sub-network.

        Returns a payload mapping with ``peers``/``instances`` (the
        *other* gathered peers' data — never this node's own, which the
        requester pulls with :class:`~repro.net.protocol.FetchRelation`),
        ``decs``, ``trust``, and the aggregated ``stats`` of every
        message this subtree cost.  ``visited`` carries the peers other
        branches already claimed, so diamonds are not re-fetched and
        cycles terminate; ``hop_budget`` bounds the residual depth and
        raises :class:`~repro.net.errors.HopBudgetExceeded` when the
        sub-network is deeper than allowed.

        Claiming covers ancestors and the current node's own pending
        neighbours only, so a peer reachable through two *non-sibling*
        branches of a diamond is gathered once per branch — duplicated
        traffic (merged away below), accepted to keep branches fully
        concurrent with no cross-branch coordination; stacked diamonds
        amplify it, so very dense graphs should prefer a wider
        ``hop_budget``-bounded topology or a routing layer (see the
        ROADMAP's sharding note).

        With :attr:`routing` enabled, the gather consults the learned
        :class:`~repro.routing.index.RoutingIndex` to elide provably
        redundant messages — synthesizing leaf-context subsystem
        replies from static descriptions, substituting token-confirmed
        cached payloads for ``unchanged`` acknowledgements, and
        skipping fetches whose cached rows (or digest-proven emptiness)
        are confirmed current *in this same gather*.  Every pending
        neighbour still receives at least one message, and anything
        unconfirmed falls back to the flooding behaviour, so answers
        and fault observability are identical in both modes.

        ``constants`` scopes the gather to a query (see
        :meth:`_scope_constants`; always empty unless every safety gate
        passed at the querying root).  A scoped gather may skip *whole
        subtrees*: zero-message when a stored
        :class:`~repro.routing.aggregate.SubtreeDigest` is current at
        this system version, safe, disjoint from the constants, and
        covers the neighbour's reachable set in this context; and by a
        tiny ``{"irrelevant": True}`` acknowledgement when the
        contacted neighbour itself proves the same from its fresh
        aggregate against the token this node quoted.  Either way the
        gather also *builds* the aggregate it hands back up
        (``payload["aggregate"]``, popped by callers): its own full
        store digests unioned with every child subtree's — a scoped
        gather still aggregates full content, so tokens stamp
        identically at any scope.
        """
        if self.network is None:
            raise ProtocolError(
                f"node {self.name!r} is not attached to a network")
        trace = self._current_trace()
        index = self.routing
        if index is None:
            constants = ()
        else:
            index.ingest_log(self.network.exchange_log)
        version_at_start = self._version
        covered = set(visited) | {self.name}
        pending = [n for n in self.neighbours() if n not in covered]
        payload: dict = {
            "peers": {self.name: self.peer},
            "instances": {},
            "decs": list(self.decs),
            "trust": list(self.trust_edges),
            "stats": ExchangeStats(),
        }
        if not pending:
            if index is not None:
                payload["aggregate"] = build_subtree(
                    self.name, self._aggregate_own_digests(), (),
                    safe_root=self._prune_safe_own(),
                    version=version_at_start)
            return payload
        if hop_budget <= 0:
            raise HopBudgetExceeded(
                f"hop budget exhausted at {self.name!r} with unexplored "
                f"neighbours {pending}", peer=self.name)
        claimed = tuple(visited) + (self.name,) + tuple(pending)
        # productivity ordering permutes claimed across gathers; cache
        # contexts key on the *set*, which is what child gathers see.
        # A scoped gather prunes subtrees out of its payload, so its
        # cached payloads must never serve an unscoped (or differently
        # scoped) gather: the constants become part of the context key.
        context = frozenset(claimed)
        if constants:
            context = context | frozenset(
                ("constant", value) for value in constants)
        pruned = 0
        subtrees_pruned = 0

        # tier B — zero-message subtree prunes: a stored aggregate
        # current at this exact system version, safe all the way down,
        # disjoint from the query constants, and covering the
        # neighbour's reachable set in this context proves the whole
        # branch cannot contribute; the neighbour stays claimed (its
        # subtree is accounted irrelevant, not someone else's job).
        skipped: set[str] = set()
        child_aggs: dict[str, Optional[SubtreeDigest]] = {}
        tier_b = 0
        claimed_set = set(claimed)
        if index is not None and constants:
            for neighbour in pending:
                held = index.prunable_subtree(neighbour, constants,
                                              version_at_start)
                if held is None or not self._subtree_covered(
                        index, neighbour, claimed_set, held):
                    continue
                skipped.add(neighbour)
                child_aggs[neighbour] = held
                tier_b += 1
                subtrees_pruned += 1

        # phase 1 — concurrent fan-out: each unvisited neighbour
        # describes (and relays) its own sub-network.  A routed gather
        # synthesizes the reply of any neighbour whose DEC targets are
        # all claimed (its gather would find nothing pending and answer
        # from static state alone) and contacts the rest in descending
        # learned-productivity order, quoting the digest version and
        # subsystem token it already holds.
        subs: dict[str, Mapping] = {}
        contact: list[str] = []
        for neighbour in pending:
            if neighbour in skipped:
                subs[neighbour] = {"peers": {}, "instances": {},
                                   "decs": [], "trust": [],
                                   "stats": ExchangeStats()}
                continue
            synthesized = (index.synthesize(neighbour, context)
                           if index is not None else None)
            if synthesized is not None:
                subs[neighbour] = synthesized
                pruned += 1
            else:
                contact.append(neighbour)
        order = index.order(contact) if index is not None else contact
        held: dict[str, dict] = {}
        quoted_aggs: dict[str, SubtreeDigest] = {}
        queries = []
        for neighbour in order:
            digest_version = known_subsystem = ""
            known_instances = None
            aggregate_token = ""
            if index is not None:
                digest_version = index.digest_version(neighbour)
                known_subsystem, entry = index.recall_subsystem(
                    neighbour, context)
                if entry is not None:
                    held[neighbour] = entry
                    # claim the relayed instances we hold, so a changed
                    # reply can dedup the ones that did not move
                    known_instances = {
                        name: instance.fingerprint()
                        for name, instance
                        in entry["instances"].items()} or None
                else:
                    known_subsystem = ""
                quoted = index.aggregate_for(neighbour)
                if quoted is not None:
                    # quote the subtree token we hold: a current child
                    # omits the aggregate bits (and may acknowledge the
                    # whole subtree irrelevant under a scoped gather)
                    aggregate_token = quoted.token
                    quoted_aggs[neighbour] = quoted
            queries.append(PeerQuery(
                sender=self.name, target=neighbour,
                hop_budget=hop_budget - 1, visited=claimed,
                digest_version=digest_version,
                known_subsystem=known_subsystem,
                known_instances=known_instances,
                constants=constants,
                aggregate_token=aggregate_token,
                **self._trace_fields(trace)))
        subsystem_answers = dict(zip(
            order, self.network.fan_out(self.name, queries)))
        stats = payload["stats"]
        stats += ExchangeStats(requests=len(queries))
        fresh_versions: dict[str, str] = {}
        routing_overhead = 0
        for neighbour in order:
            answer = subsystem_answers[neighbour]
            sub = answer.payload
            if index is not None:
                if answer.digests is not None:
                    index.observe_digests(answer.digests)
                    # piggybacked routing state is paid-for traffic:
                    # account it like any other payload bytes
                    routing_overhead += digest_bytes(answer.digests)
                if answer.version:
                    fresh_versions[neighbour] = answer.version
                if answer.aggregate is not None:
                    index.observe_aggregate(neighbour, answer.aggregate)
                    routing_overhead += aggregate_bytes(answer.aggregate)
                    child_aggs[neighbour] = answer.aggregate
                elif answer.aggregate_token:
                    # the child quoted our token back as current:
                    # re-stamp the stored aggregate to this version
                    child_aggs[neighbour] = index.confirm_aggregate(
                        neighbour, answer.aggregate_token,
                        version_at_start)
            if isinstance(sub, Mapping) and sub.get("irrelevant"):
                if quoted_aggs.get(neighbour) is None:
                    raise ProtocolError(
                        f"{neighbour!r} acknowledged a subtree "
                        f"aggregate {self.name!r} never sent")
                # tier A — the contacted child proved its whole subtree
                # disjoint from the query constants against the token
                # we quoted: skip its relayed payload and its fetches
                sub = {"peers": {}, "instances": {}, "decs": [],
                       "trust": [], "stats": sub["stats"]}
                skipped.add(neighbour)
                subtrees_pruned += 1
            elif isinstance(sub, Mapping) and sub.get("unchanged"):
                entry = held.get(neighbour)
                if entry is None:
                    raise ProtocolError(
                        f"{neighbour!r} acknowledged a subsystem token "
                        f"{self.name!r} never sent")
                sub = {**entry, "stats": sub["stats"]}
                pruned += 1
            else:
                sub = self._restore_instances(neighbour, sub,
                                              held.get(neighbour))
                if index is not None:
                    index.learn_topology(sub)
                    token = subsystem_fingerprint(sub)
                    if token:
                        index.remember_subsystem(neighbour, context,
                                                 token, sub)
            subs[neighbour] = sub
        for neighbour in pending:  # canonical order, mode-independent
            sub = subs[neighbour]
            payload["peers"].update(sub["peers"])
            payload["instances"].update(sub["instances"])
            payload["decs"].extend(sub["decs"])
            payload["trust"].extend(sub["trust"])
            # relayed data travelled one hop further to reach us
            sub_stats: ExchangeStats = sub["stats"]
            stats += dataclasses.replace(
                sub_stats,
                max_hops=sub_stats.max_hops + 1 if sub_stats.max_hops
                else 0)

        # phase 2 — concurrent fan-out: pull each direct neighbour's
        # relation contents (deeper peers' data arrived relayed above).
        # Each fetch names the content version this node last saw for
        # that relation, so providers reply with versioned deltas when
        # they still hold the chain — full relations otherwise.  A
        # routed gather elides a fetch only on a same-gather version
        # confirmation: cached rows already at the confirmed version,
        # or a digest at the confirmed version proving the relation
        # empty — never on an unconfirmed (possibly stale) digest.
        fetches = []
        bases: list[Optional[frozenset]] = []
        data: dict[str, dict[str, frozenset]] = {n: {} for n in pending}
        for neighbour in pending:
            if neighbour in skipped:
                continue
            confirmed = fresh_versions.get(neighbour, "")
            digests = (index.digests_for(neighbour)
                       if index is not None and confirmed else None)
            if digests is not None and digests.version != confirmed:
                digests = None
            for relation in sorted(
                    payload["peers"][neighbour].schema.names):
                with self._fetch_lock:
                    cached = self._fetched.get((neighbour, relation))
                if confirmed and cached and cached[0] == confirmed:
                    data[neighbour][relation] = cached[1]
                    pruned += 1
                    continue
                if digests is not None:
                    digest = digests.digest_for(relation)
                    if digest is not None and digest.row_count == 0:
                        empty = frozenset()
                        with self._fetch_lock:
                            self._fetched[(neighbour, relation)] = \
                                (confirmed, empty)
                        data[neighbour][relation] = empty
                        pruned += 1
                        continue
                    if (constants and digest is not None
                            and digest.disjoint_from(constants)):
                        # relevance elision: the confirmed-fresh digest
                        # proves no row keyed by a query constant, and
                        # the scoped view only needs those.  The fetch
                        # cache is NOT updated — it must keep holding
                        # the relation's *actual* rows, not the scoped
                        # emptiness
                        data[neighbour][relation] = frozenset()
                        pruned += 1
                        continue
                fetches.append(FetchRelation(
                    sender=self.name, target=neighbour,
                    relation=relation, purpose="subsystem gather",
                    known_version=cached[0] if cached else "",
                    **self._trace_fields(trace)))
                bases.append(cached[1] if cached else None)
        fetch_answers = self.network.fan_out(self.name, fetches)
        tuples_moved = bytes_moved = 0
        fetched_versions: dict[str, set] = {}
        for request, base, answer in zip(fetches, bases, fetch_answers):
            if index is not None and answer.digests is not None:
                index.observe_digests(answer.digests)
                routing_overhead += digest_bytes(answer.digests)
            rows, moved = self._integrate_fetch(request, base, answer)
            data[request.target][request.relation] = rows
            tuples_moved += moved
            bytes_moved += answer.bytes_estimate
            fetched_versions.setdefault(request.target,
                                        set()).add(answer.version)
        for neighbour in pending:
            if neighbour in skipped:
                continue
            payload["instances"][neighbour] = DatabaseInstance(
                payload["peers"][neighbour].schema, data[neighbour])
        if index is not None:
            # synthesized (leaf-context) neighbours never answer a
            # PeerQuery, so no aggregate arrives for them; build their
            # singleton aggregate from the digests their own fetch
            # replies just confirmed, or the subtree chain above this
            # node could never form over warm paths
            for neighbour in pending:
                if child_aggs.get(neighbour) is not None:
                    continue
                description = index.description(neighbour)
                if (description is None
                        or not description.targets <= claimed_set):
                    continue
                versions = fetched_versions.get(neighbour)
                if versions is None or len(versions) != 1:
                    continue
                confirmed = next(iter(versions))
                digests = index.digests_for(neighbour)
                if (not confirmed or digests is None
                        or digests.version != confirmed):
                    continue
                singleton = build_subtree(
                    neighbour, digests, (),
                    safe_root=self._prune_safe_parts(
                        description.peer.local_ics, description.decs,
                        description.trust),
                    version=version_at_start)
                if singleton is not None:
                    child_aggs[neighbour] = singleton
                    index.observe_aggregate(neighbour, singleton)
            payload["aggregate"] = build_subtree(
                self.name, self._aggregate_own_digests(),
                [child_aggs.get(neighbour) for neighbour in pending],
                safe_root=self._prune_safe_own(),
                version=version_at_start)
        payload["stats"] = stats + ExchangeStats(
            requests=len(fetches), tuples_transferred=tuples_moved,
            bytes_estimate=bytes_moved + routing_overhead, max_hops=1,
            neighbours_pruned=pruned,
            neighbours_contacted=len(pending) - tier_b,
            subtrees_pruned=subtrees_pruned)
        return payload

    def _restore_instances(self, neighbour: str, sub: Mapping,
                           entry: Optional[Mapping]) -> Mapping:
        """Expand ``{"same": fingerprint}`` dedup markers in a relayed
        payload back into the instances this node's cached subsystem
        copy holds.  A marker the cache cannot verify — no cached
        entry, an unknown peer, or a fingerprint mismatch — is a
        protocol violation: silently keeping it would corrupt the
        merged view, and this node only invites markers it can expand.
        """
        instances = sub.get("instances", {})
        if not any(isinstance(instance, Mapping)
                   for instance in instances.values()):
            return sub
        cached = (entry or {}).get("instances", {})
        restored = {}
        for name, instance in instances.items():
            if not isinstance(instance, Mapping):
                restored[name] = instance
                continue
            have = cached.get(name)
            if have is None or have.fingerprint() != instance.get(
                    "same"):
                raise ProtocolError(
                    f"{neighbour!r} deduplicated the instance of "
                    f"{name!r} against a fingerprint {self.name!r} "
                    f"does not hold")
            restored[name] = have
        return {**sub, "instances": restored}

    def _integrate_fetch(self, request: FetchRelation,
                         base: Optional[frozenset],
                         answer: Answer) -> tuple[frozenset, int]:
        """Turn one fetch reply into the relation's full rows.

        Delta replies are applied to the rows this node held at the
        ``known_version`` it asked about; full replies replace them.
        Either way the fetch cache remembers the new rows under the
        provider's stamped version for the next gather.
        """
        if answer.delta:
            if base is None:
                raise ProtocolError(
                    f"{request.target!r} sent a delta for "
                    f"{request.relation!r} but {self.name!r} holds no "
                    f"base rows at version {request.known_version!r}")
            payload = answer.payload
            inserted = frozenset(payload.get("insert", ()))
            deleted = frozenset(payload.get("delete", ()))
            rows = frozenset((base - deleted) | inserted)
            moved = len(inserted) + len(deleted)
        else:
            rows = frozenset(answer.payload)
            moved = len(rows)
        if answer.version:
            with self._fetch_lock:
                self._fetched[(request.target, request.relation)] = \
                    (answer.version, rows)
        return rows, moved

    # ------------------------------------------------------------------
    # Routing digests (piggybacked on Answers when routing is enabled)
    # ------------------------------------------------------------------
    def _own_digests(self) -> Optional[NeighbourDigests]:
        """This node's per-relation digests at its current store
        version (cached per version; ``None`` if a concurrent sync kept
        racing the consistent read)."""
        for _attempt in range(3):
            version = self.store.version()
            cached = self._digest_cache
            if cached is not None and cached.version == version:
                return cached
            tables = {}
            consistent = True
            for relation in sorted(self.peer.schema.names):
                current, _chain, rows = self.store.fetch_state(relation)
                if current != version:
                    consistent = False
                    break
                tables[relation] = rows
            if not consistent:
                continue
            digests = NeighbourDigests.from_tables(self.name, version,
                                                   tables)
            self._digest_cache = digests
            return digests
        return None

    def _subsystem_digests(self) -> Optional[NeighbourDigests]:
        """Digests to piggyback on subsystem replies.  The sharded node
        overrides this to ``None``: its store holds only a slice, and a
        slice digest (e.g. ``row_count == 0`` with rows on sibling
        shards) would misdescribe the logical peer — slice digests
        travel on fetch replies instead, composed by the
        :class:`~repro.shard.router.ShardRouter`."""
        return self._own_digests()

    def _subsystem_version(self) -> str:
        """The store version stamped on subsystem replies (the token
        requesters confirm fetch elisions against).  The sharded node
        overrides this to ``""`` — its slice version never describes
        the logical peer, so requesters must always fetch."""
        return self.store.version()

    def _aggregate_own_digests(self) -> Optional[NeighbourDigests]:
        """The per-relation digests subtree aggregates union for this
        node's own data.  A plain node's store holds the whole peer, so
        its own digests serve directly; the sharded node overrides this
        with the router-composed *logical* bundle captured during its
        last self-merge — or ``None``, which degrades the whole subtree
        (no aggregate rather than a slice digest misdescribing the
        peer)."""
        return self._own_digests()

    def _complete_own_instance(self) -> tuple[DatabaseInstance,
                                              ExchangeStats]:
        """The node's own contribution to its view, plus its cost.

        A plain node holds its entire peer's data locally, so the view
        uses the store's instance for free.  The sharded node
        (:class:`~repro.shard.node.ShardedPeerNode`) overrides this to
        reassemble the *logical* instance from every sibling shard
        before answering — answer sets are not unions across data
        partitions, so the view must see the whole peer.
        """
        return self.instance, ExchangeStats()

    # ------------------------------------------------------------------
    # The local view and the answering surface
    # ------------------------------------------------------------------
    def local_view(self) -> PeerSystem:
        """The node's materialised view: a :class:`PeerSystem` assembled
        from the gathered sub-network (cached per version)."""
        return self._view_and_cost()[0]

    def _view_key(self, constants: tuple) -> tuple:
        """Which view entry answers a query scoped to ``constants``.

        A held full view is always preferred — it is a superset of any
        scoped view, sound for every query, and keeps warm-cache
        behaviour identical to flooding.  Otherwise the scope keys its
        own entry (a scoped view is only valid for queries over exactly
        those constants)."""
        return () if not constants or () in self._views else constants

    def _view_and_cost(self, constants: tuple = ()
                       ) -> tuple[PeerSystem, ExchangeStats]:
        with self._lock:
            key = self._view_key(constants)
            held = self._views.get(key)
            if held is None:
                hop_budget = (self.network.hop_budget
                              if self.network is not None else 8)
                if self.network is not None:
                    with self.network.operation_deadline():
                        payload = self._gather(hop_budget, (), key)
                else:
                    payload = self._gather(hop_budget, (), key)
                payload.pop("aggregate", None)
                own_instance, own_cost = self._complete_own_instance()
                payload["instances"][self.name] = own_instance
                payload["stats"] = payload["stats"] + own_cost
                peers = payload["peers"]
                # branches that race to the same peer through a diamond
                # may relay its DECs twice; the merge dedups by content
                # (identity is not enough once DECs cross a wire
                # transport, where every branch decodes fresh objects)
                seen: set = set()
                decs = [dec for dec in payload["decs"]
                        if (key2 := _dec_key(dec)) not in seen
                        and not seen.add(key2)]
                if key:
                    # a scoped view omits pruned subtrees, so DECs
                    # pointing into them must go too (the system
                    # constructor rejects edges to absent peers; the
                    # dropped edges only imported provably irrelevant
                    # rows)
                    decs = [dec for dec in decs
                            if dec.owner in peers and dec.other in peers]
                trust = TrustRelation(
                    {(owner, level, other)
                     for owner, level, other in payload["trust"]
                     if owner in peers and other in peers})
                view = PeerSystem(
                    peers.values(), payload["instances"],
                    decs, trust, enforce_local_ics=False)
                if not key:
                    self._known_subsystem_peers = frozenset(peers)
                held = (view, payload["stats"])
                self._views[key] = held
            return held

    def _view_session(self, constants: tuple = ()) -> PeerQuerySession:
        with self._lock:
            key = self._view_key(constants)
            session = self._sessions.get(key)
            if session is None:
                session = PeerQuerySession(
                    self._view_and_cost(constants)[0],
                    default_method=self.default_method,
                    include_local_ics=self.include_local_ics,
                    evaluator=self.evaluator)
                self._sessions[key] = session
            return session

    def answer(self, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer a query over this node's network view.

        The result is the view session's — same methods, same planner,
        same provenance — with the exchange stats replaced by the *real*
        message traffic of the gather that built the view (zero on a
        warm view) and ``elapsed`` covering gather plus answering.
        Cached per ``(version, query, method, semantics)``; with a
        ``data_dir`` the cache is flushed to disk on :meth:`close`, so
        a cleanly restarted node serves previously answered queries
        without a single message.
        """
        parsed = QueryRequest(self.name, query).resolved_query()
        key = (self._version, str(parsed), method or self.default_method,
               semantics)
        # the whole answer path runs under the node lock: the view
        # session is single-threaded state, exactly like a real node's
        # process (serving fetches/gathers for *other* peers never takes
        # this lock, so held-while-gathering cannot deadlock)
        with self._lock:
            cached = self._answers.get(key)
            if cached is None and self._persisted:
                stored = self._persisted.get(
                    key + (self.include_local_ics, self.evaluator))
                if stored is not None:
                    cached = self._revive_answer(parsed, stored)
                    self._answers[key] = cached
            if cached is not None:
                return dataclasses.replace(cached, from_cache=True,
                                           exchange=ExchangeStats(),
                                           elapsed=0.0, trace=(),
                                           timings=None)
            start = time.perf_counter()
            constants = self._scope_constants(parsed)
            had_view = self._view_key(constants) in self._views
            # serving a traced AnswerQuery inherits the requester's
            # context; a root answer on a tracing node opens its own
            ctx = self._current_trace()
            recorder = self._recorder()
            if not ctx and self.tracing and recorder is not None:
                ctx = TraceContext.root()
            if ctx and recorder is not None:
                gather_cost, result, spans, timings = \
                    self._answer_traced(ctx, recorder, parsed,
                                        constants, method, semantics)
            else:
                gather_cost = self._view_and_cost(constants)[1]
                result = self._view_session(constants).answer(
                    self.name, parsed, method=method,
                    semantics=semantics)
                spans, timings = (), None
            elapsed = time.perf_counter() - start
            result = dataclasses.replace(
                result,
                exchange=gather_cost if not had_view else ExchangeStats(),
                elapsed=elapsed, trace=spans, timings=timings)
            self._answers[key] = result
            return result

    def _answer_traced(self, ctx: TraceContext, recorder, parsed: Query,
                       constants: tuple, method: Optional[str],
                       semantics: str):
        """The traced answer path: an ``answer`` span with ``gather``
        and ``eval`` children, plus every span the gather's requests
        produced, drained into the result's trace."""
        answer_id = new_id()
        inner = ctx.descend(answer_id)
        previous = getattr(self._trace_ctx, "ctx", None)
        answer_start = time.monotonic()
        try:
            gather_id = new_id()
            self._trace_ctx.ctx = inner.descend(gather_id)
            gather_start = time.monotonic()
            try:
                gather_cost = self._view_and_cost(constants)[1]
            finally:
                gather_s = time.monotonic() - gather_start
                self._trace_ctx.ctx = inner
            recorder.record(Span(ctx.trace_id, gather_id, answer_id,
                                 "gather", self.name, gather_start,
                                 gather_s))
            eval_start = time.monotonic()
            result = self._view_session(constants).answer(
                self.name, parsed, method=method, semantics=semantics)
            eval_s = time.monotonic() - eval_start
            recorder.record(Span(ctx.trace_id, new_id(), answer_id,
                                 "eval", self.name, eval_start, eval_s))
        finally:
            self._trace_ctx.ctx = previous
        total_s = time.monotonic() - answer_start
        recorder.record(Span(ctx.trace_id, answer_id, ctx.span_id,
                             "answer", self.name, answer_start,
                             total_s))
        spans = recorder.drain(ctx.trace_id)
        timings = {"gather_s": round(gather_s, 6),
                   "eval_s": round(eval_s, 6),
                   "total_s": round(total_s, 6)}
        return gather_cost, result, spans, timings

    def explain(self, query: Union[Query, str],
                candidate: Optional[tuple] = None):
        """Definition-5 certification evidence over the network view."""
        return self._view_session().explain(self.name, query, candidate)

    # ------------------------------------------------------------------
    # Persistence (answers + fetch cache under the data directory)
    # ------------------------------------------------------------------
    def _revive_answer(self, parsed: "Query", stored: dict) -> QueryResult:
        return QueryResult(
            peer=self.name,
            query=parsed,
            answers=frozenset(tuple(row) for row in stored["answers"]),
            semantics=stored["semantics"],
            method_requested=stored["method_requested"],
            method_used=stored["method_used"],
            solution_count=stored["solution_count"],
        )

    def _answer_config(self) -> dict:
        """The knobs a cached answer depends on beyond its key.

        ``method`` and ``semantics`` are in the key already (and the
        default method is resolved into it); these two change what a
        given key *means*, so persisted entries carry them and a node
        configured differently must not revive them.
        """
        return {"include_local_ics": self.include_local_ics,
                "evaluator": self.evaluator}

    def _load_persisted(self) -> None:
        answers_path = self.data_dir / "answers.json"
        if answers_path.is_file():
            try:
                with open(answers_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = {}
            for entry in payload.get("entries", []):
                try:
                    # the full key includes the answering configuration:
                    # entries computed under a different configuration
                    # are kept (and re-persisted), never served
                    key = (entry["version"], entry["query"],
                           entry["method"], entry["semantics"],
                           entry["include_local_ics"],
                           entry["evaluator"])
                    self._persisted[key] = entry
                except (KeyError, TypeError):
                    continue  # skip malformed entries, keep the rest
        fetched_path = self.data_dir / "fetched.json"
        if fetched_path.is_file():
            try:
                with open(fetched_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = {}
            for entry in payload.get("entries", []):
                try:
                    rows = frozenset(tuple(row)
                                     for row in entry["rows"])
                    self._fetched[(entry["peer"], entry["relation"])] = \
                        (entry["version"], rows)
                except (KeyError, TypeError):
                    continue

    def _persist_answers(self) -> None:
        if self.data_dir is None:
            return
        config = (self.include_local_ics, self.evaluator)
        entries = list(self._persisted.values())
        seen = {(e["version"], e["query"], e["method"], e["semantics"],
                 e["include_local_ics"], e["evaluator"])
                for e in entries}
        for key, result in self._answers.items():
            if key + config in seen or result.failed:
                continue
            entries.append({
                "version": key[0], "query": key[1], "method": key[2],
                "semantics": key[3], **self._answer_config(),
                "answers": [list(row) for row in sorted(
                    result.answers, key=row_sort_key)],
                "solution_count": result.solution_count,
                "method_used": result.method_used,
                "method_requested": result.method_requested,
            })
        if len(entries) > _MAX_PERSISTED_ANSWERS:
            entries = entries[-_MAX_PERSISTED_ANSWERS:]
        self._write_json(self.data_dir / "answers.json",
                         {"format": 1, "peer": self.name,
                          "entries": entries})

    def _persist_fetch_cache(self) -> None:
        if self.data_dir is None:
            return
        with self._fetch_lock:
            snapshot = dict(self._fetched)
        entries = [{"peer": peer, "relation": relation,
                    "version": version,
                    "rows": [list(row) for row in sorted(
                        rows, key=row_sort_key)]}
                   for (peer, relation), (version, rows)
                   in sorted(snapshot.items())]
        self._write_json(self.data_dir / "fetched.json",
                         {"format": 1, "entries": entries})

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        try:
            write_json_atomic(path, payload)
        except (StorageError, OSError):
            # non-JSON-safe values (exotic domains) or a full disk:
            # answer/fetch-cache persistence is best-effort — the node
            # still answers, it just re-computes after a restart
            return

    def close(self) -> None:
        """Flush persistent state (answers, fetch cache, store meta)."""
        with self._lock:
            self._persist_answers()
            self._persist_fetch_cache()
            self.store.close()

    def __repr__(self) -> str:
        return (f"PeerNode({self.name!r}, "
                f"{len(self.decs)} DECs, neighbours="
                f"{list(self.neighbours())})")
