"""An independent peer node: local data, local answering, typed messages.

A :class:`PeerNode` is one peer of a :class:`~repro.core.system.PeerSystem`
running as its own process-like unit.  It holds only what the paper lets
a peer know locally: its :class:`~repro.core.system.Peer` (schema + local
ICs), its own :class:`~repro.relational.instance.DatabaseInstance`, the
DECs *it owns* (Σ(P, ·)), and its own trust edges.  Everything else is
learned by exchanging protocol messages with neighbours.

Serving side — :meth:`PeerNode.handle` answers two request shapes from
its local state alone:

* :class:`~repro.net.protocol.FetchRelation` → the relation's tuples;
* :class:`~repro.net.protocol.PeerQuery` (``kind="subsystem"``) → a
  description of the node's accessible sub-network, gathered hop-by-hop:
  the node describes itself, asks each unvisited DEC-neighbour for *its*
  sub-network (fanned out concurrently through the network router), then
  fetches the neighbours' relation contents — so distant peers' data is
  relayed through intermediates, never pulled from a global store.

Answering side — :meth:`PeerNode.answer` materialises the gathered
sub-network as a local view :class:`~repro.core.system.PeerSystem` and
drives a cached :class:`~repro.core.session.PeerQuerySession` over it,
so every registered answer method (``auto``/``asp``/``rewrite``/
``model``/``lav``/``transitive``) runs unchanged against node-local
state.  Views, sessions, and :class:`~repro.core.results.QueryResult`
objects are cached per system version; :meth:`update_instance` (called
by :meth:`PeerNetwork.sync <repro.net.network.PeerNetwork.sync>`) moves
the node to a new version and drops stale entries.

Because the accessible sub-network is exactly the data Definition 3's
global instance contributes to this peer's solutions (for systems whose
peers are all reachable from the queried root — every paper workload and
:func:`~repro.workloads.synthetic.topology_system` family), the view
answers are tuple-for-tuple identical to the global session's; the
differential suite in ``tests/net`` locks that in.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional, Union

from ..core.results import CERTAIN, ExchangeStats, QueryRequest, QueryResult
from ..core.session import PeerQuerySession
from ..core.system import DataExchange, Peer, PeerSystem
from ..core.trust import TrustLevel, TrustRelation
from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .errors import (
    HopBudgetExceeded,
    NetworkError,
    PeerUnreachableError,
    ProtocolError,
)
from .protocol import (
    SUBSYSTEM,
    Answer,
    Failure,
    FetchRelation,
    Message,
    PeerQuery,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import PeerNetwork

__all__ = ["PeerNode"]


class PeerNode:
    """One peer served from its own local state over a transport."""

    def __init__(self, peer: Peer, instance: DatabaseInstance,
                 decs: Iterable[DataExchange],
                 trust_edges: Iterable[tuple[str, TrustLevel, str]], *,
                 version: int = 0,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner") -> None:
        self.peer = peer
        self.name = peer.name
        self.instance = instance
        self.decs = tuple(decs)
        self.trust_edges = tuple(trust_edges)
        self.default_method = default_method
        self.include_local_ics = include_local_ics
        self.evaluator = evaluator
        self.network: Optional["PeerNetwork"] = None  # set on registration
        self._version = version
        # all caches are keyed (or valid only) per system version
        self._view: Optional[tuple[PeerSystem, ExchangeStats]] = None
        self._session: Optional[PeerQuerySession] = None
        self._answers: dict[tuple, QueryResult] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Topology as seen locally
    # ------------------------------------------------------------------
    def neighbours(self) -> tuple[str, ...]:
        """Peers this node's own DECs point at, sorted."""
        return tuple(sorted({exchange.other for exchange in self.decs}))

    def version(self) -> int:
        return self._version

    def update_instance(self, instance: DatabaseInstance,
                        version: int) -> None:
        """Swap in new local data (a new system version): all view,
        session, and answer caches for older versions are dropped."""
        with self._lock:
            self.instance = instance
            self._version = version
            self._view = None
            self._session = None
            self._answers.clear()

    # ------------------------------------------------------------------
    # Serving: the message handler registered on the transport
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Serve one request from local state; never raises
        :class:`~repro.net.errors.NetworkError` — failures travel back
        as typed :class:`~repro.net.protocol.Failure` replies."""
        try:
            if isinstance(message, FetchRelation):
                return self._serve_fetch(message)
            if isinstance(message, PeerQuery):
                return self._serve_peer_query(message)
        except HopBudgetExceeded as exc:
            return self._failure(message, "hop-budget-exhausted", str(exc))
        except PeerUnreachableError as exc:
            return self._failure(message, "peer-unreachable", str(exc))
        except ProtocolError as exc:
            return self._failure(message, "protocol", str(exc))
        except NetworkError as exc:
            return self._failure(message, "network", str(exc))
        return self._failure(
            message, "unsupported-message",
            f"node {self.name!r} cannot serve "
            f"{type(message).__name__} messages")

    def _failure(self, message: Message, code: str,
                 detail: str) -> Failure:
        return Failure(sender=self.name, target=message.sender,
                       in_reply_to=message.correlation_id,
                       code=code, detail=detail)

    def _serve_fetch(self, message: FetchRelation) -> Message:
        if message.relation not in self.peer.schema.names:
            return self._failure(
                message, "unknown-relation",
                f"peer {self.name!r} does not own relation "
                f"{message.relation!r}")
        rows = tuple(sorted(self.instance.tuples(message.relation),
                            key=lambda row: tuple(
                                (isinstance(v, str), str(v))
                                for v in row)))
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id, payload=rows)

    def _serve_peer_query(self, message: PeerQuery) -> Message:
        if message.kind != SUBSYSTEM:
            return self._failure(
                message, "unsupported-message",
                f"unknown PeerQuery kind {message.kind!r}")
        payload = self._gather(message.hop_budget, message.visited)
        return Answer(sender=self.name, target=message.sender,
                      in_reply_to=message.correlation_id, payload=payload)

    # ------------------------------------------------------------------
    # The hop-by-hop sub-network gather
    # ------------------------------------------------------------------
    def _gather(self, hop_budget: int,
                visited: tuple[str, ...]) -> dict:
        """Describe this node's accessible sub-network.

        Returns a payload mapping with ``peers``/``instances`` (the
        *other* gathered peers' data — never this node's own, which the
        requester pulls with :class:`~repro.net.protocol.FetchRelation`),
        ``decs``, ``trust``, and the aggregated ``stats`` of every
        message this subtree cost.  ``visited`` carries the peers other
        branches already claimed, so diamonds are not re-fetched and
        cycles terminate; ``hop_budget`` bounds the residual depth and
        raises :class:`~repro.net.errors.HopBudgetExceeded` when the
        sub-network is deeper than allowed.

        Claiming covers ancestors and the current node's own pending
        neighbours only, so a peer reachable through two *non-sibling*
        branches of a diamond is gathered once per branch — duplicated
        traffic (merged away below), accepted to keep branches fully
        concurrent with no cross-branch coordination; stacked diamonds
        amplify it, so very dense graphs should prefer a wider
        ``hop_budget``-bounded topology or a routing layer (see the
        ROADMAP's sharding note).
        """
        if self.network is None:
            raise ProtocolError(
                f"node {self.name!r} is not attached to a network")
        covered = set(visited) | {self.name}
        pending = [n for n in self.neighbours() if n not in covered]
        payload: dict = {
            "peers": {self.name: self.peer},
            "instances": {},
            "decs": list(self.decs),
            "trust": list(self.trust_edges),
            "stats": ExchangeStats(),
        }
        if not pending:
            return payload
        if hop_budget <= 0:
            raise HopBudgetExceeded(
                f"hop budget exhausted at {self.name!r} with unexplored "
                f"neighbours {pending}", peer=self.name)
        claimed = tuple(visited) + (self.name,) + tuple(pending)

        # phase 1 — concurrent fan-out: each unvisited neighbour
        # describes (and relays) its own sub-network
        subsystem_answers = self.network.fan_out(
            self.name,
            [PeerQuery(sender=self.name, target=neighbour,
                       hop_budget=hop_budget - 1, visited=claimed)
             for neighbour in pending])
        stats = payload["stats"]
        stats += ExchangeStats(requests=len(pending))
        for answer in subsystem_answers:
            sub = answer.payload
            payload["peers"].update(sub["peers"])
            payload["instances"].update(sub["instances"])
            payload["decs"].extend(sub["decs"])
            payload["trust"].extend(sub["trust"])
            # relayed data travelled one hop further to reach us
            sub_stats: ExchangeStats = sub["stats"]
            stats += dataclasses.replace(
                sub_stats,
                max_hops=sub_stats.max_hops + 1 if sub_stats.max_hops
                else 0)

        # phase 2 — concurrent fan-out: pull each direct neighbour's
        # relation contents (deeper peers' data arrived relayed above)
        fetches = [
            FetchRelation(sender=self.name, target=neighbour,
                          relation=relation, purpose="subsystem gather")
            for neighbour in pending
            for relation in sorted(
                payload["peers"][neighbour].schema.names)]
        fetch_answers = self.network.fan_out(self.name, fetches)
        data: dict[str, dict[str, tuple]] = {n: {} for n in pending}
        tuples_moved = bytes_moved = 0
        for request, answer in zip(fetches, fetch_answers):
            data[request.target][request.relation] = answer.payload
            tuples_moved += len(answer.payload)
            bytes_moved += answer.bytes_estimate
        for neighbour in pending:
            payload["instances"][neighbour] = DatabaseInstance(
                payload["peers"][neighbour].schema, data[neighbour])
        payload["stats"] = stats + ExchangeStats(
            requests=len(fetches), tuples_transferred=tuples_moved,
            bytes_estimate=bytes_moved, max_hops=1)
        return payload

    # ------------------------------------------------------------------
    # The local view and the answering surface
    # ------------------------------------------------------------------
    def local_view(self) -> PeerSystem:
        """The node's materialised view: a :class:`PeerSystem` assembled
        from the gathered sub-network (cached per version)."""
        return self._view_and_cost()[0]

    def _view_and_cost(self) -> tuple[PeerSystem, ExchangeStats]:
        with self._lock:
            if self._view is None:
                hop_budget = (self.network.hop_budget
                              if self.network is not None else 8)
                payload = self._gather(hop_budget, ())
                payload["instances"][self.name] = self.instance
                peers = payload["peers"]
                # branches that race to the same peer through a diamond
                # may relay its DECs twice; the merge dedups by identity
                seen: set[int] = set()
                decs = [dec for dec in payload["decs"]
                        if id(dec) not in seen and not seen.add(id(dec))]
                trust = TrustRelation(
                    {(owner, level, other)
                     for owner, level, other in payload["trust"]
                     if owner in peers and other in peers})
                view = PeerSystem(
                    peers.values(), payload["instances"],
                    decs, trust, enforce_local_ics=False)
                self._view = (view, payload["stats"])
            return self._view

    def _view_session(self) -> PeerQuerySession:
        with self._lock:
            if self._session is None:
                self._session = PeerQuerySession(
                    self.local_view(),
                    default_method=self.default_method,
                    include_local_ics=self.include_local_ics,
                    evaluator=self.evaluator)
            return self._session

    def answer(self, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer a query over this node's network view.

        The result is the view session's — same methods, same planner,
        same provenance — with the exchange stats replaced by the *real*
        message traffic of the gather that built the view (zero on a
        warm view) and ``elapsed`` covering gather plus answering.
        Cached per ``(version, query, method, semantics)``.
        """
        parsed = QueryRequest(self.name, query).resolved_query()
        key = (self._version, str(parsed), method or self.default_method,
               semantics)
        # the whole answer path runs under the node lock: the view
        # session is single-threaded state, exactly like a real node's
        # process (serving fetches/gathers for *other* peers never takes
        # this lock, so held-while-gathering cannot deadlock)
        with self._lock:
            cached = self._answers.get(key)
            if cached is not None:
                return dataclasses.replace(cached, from_cache=True,
                                           exchange=ExchangeStats(),
                                           elapsed=0.0)
            start = time.perf_counter()
            had_view = self._view is not None
            gather_cost = self._view_and_cost()[1]
            result = self._view_session().answer(
                self.name, parsed, method=method, semantics=semantics)
            elapsed = time.perf_counter() - start
            result = dataclasses.replace(
                result,
                exchange=gather_cost if not had_view else ExchangeStats(),
                elapsed=elapsed)
            self._answers[key] = result
            return result

    def explain(self, query: Union[Query, str],
                candidate: Optional[tuple] = None):
        """Definition-5 certification evidence over the network view."""
        return self._view_session().explain(self.name, query, candidate)

    def __repr__(self) -> str:
        return (f"PeerNode({self.name!r}, "
                f"{len(self.decs)} DECs, neighbours="
                f"{list(self.neighbours())})")
