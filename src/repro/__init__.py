"""repro — reproduction of Bertossi & Bravo (EDBT 2004):
*Query Answering in Peer-to-Peer Data Exchange Systems*.

Subpackages
-----------
``repro.datalog``
    Disjunctive ASP engine (grounder + stable-model solver + choice operator
    + HCF shifting) standing in for DLV.
``repro.relational``
    Relational substrate: schemas, instances, FO queries, integrity and
    data-exchange constraints.
``repro.cqa``
    Consistent query answering over single databases (repairs, consistent
    answers) — the baseline framework the paper builds on.
``repro.core``
    The paper's contribution: peer-to-peer data-exchange systems, trust,
    solutions for a peer, peer consistent answers, and the FO-rewriting,
    ASP (GAV), LAV, and transitive computation mechanisms — behind the
    service API: :class:`~repro.core.session.PeerQuerySession` (cached
    ``answer`` / ``answer_many`` / ``explain`` returning rich
    :class:`~repro.core.results.QueryResult` objects), the pluggable
    answer-method registry (:mod:`repro.core.methods`, with the ``auto``
    planner), and the fluent :class:`~repro.core.builder.SystemBuilder`.
``repro.storage``
    Versioned fact storage: the extracted in-memory
    :class:`~repro.storage.tables.FactTable`, normalised
    :class:`~repro.storage.deltas.Delta` change sets, and the
    :class:`~repro.storage.base.FactStore` ABC with in-memory and
    durable (append-only delta log + snapshot) backends — version
    tokens are restart-stable content fingerprints throughout.
``repro.workloads``
    Synthetic peer-network and instance generators for benchmarks.
``repro.net``
    The peer network runtime: each peer as an independent
    message-passing node (typed protocol, pluggable transports with
    fault injection, hop-by-hop routing, concurrent fan-out) behind the
    :class:`~repro.net.service.NetworkSession` facade —
    :func:`~repro.net.service.open_session` switches between local and
    network execution with one argument.
"""

__version__ = "1.3.0"

__all__ = ["datalog", "relational", "cqa", "core", "storage",
           "workloads", "net"]
