"""Parser for first-order query formulas.

Grammar (precedence from loosest to tightest)::

    formula  := implication
    implication := disjunction ( "->" implication )?
    disjunction := conjunction ( ("|" | "or") conjunction )*
    conjunction := unary ( ("&" | "and") unary )*
    unary    := ("~" | "not") unary
              | ("exists" | "forall") VAR+ unary
              | "(" formula ")"
              | atom | comparison | "true" | "false"
    atom     := RELATION "(" term ("," term)* ")"
    comparison := term OP term         OP in  = != < <= > >=

Conventions match the Datalog parser: identifiers starting with an
uppercase letter or ``_`` are variables, lowercase identifiers and numbers
and quoted strings are constants.  Relation names may start with either
case (``R1(X, Y)`` reads naturally, as in the paper) — a name directly
followed by ``(`` is a relation.

Examples::

    parse_formula("R1(X, Y) & forall Z1 (R3(X, Z1) -> Z1 = Y)")
    parse_query("q(X, Y) := R1(X, Y) | R2(X, Y)")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from ..datalog.terms import Constant, Term, Variable
from .errors import QueryError
from .query import (
    And,
    Cmp,
    Exists,
    FALSE,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    TRUE,
)

__all__ = ["parse_formula", "parse_query"]

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<INTEGER>-?\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ARROW>->)
  | (?P<ASSIGN>:=)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<AMP>&)
  | (?P<PIPE>\|)
  | (?P<TILDE>~)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "exists", "forall", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "WS":
            yield _Token(kind, match.group(), pos)
        pos = match.end()


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query text")
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None
                ) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (
                text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.text if token else "end of input"
            raise QueryError(f"expected {kind}, found {found!r}")
        return self._next()

    def at_end(self) -> bool:
        return self._peek() is None

    # ------------------------------------------------------------------
    def parse_formula(self) -> Formula:
        return self._implication()

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._accept("ARROW"):
            return Implies(left, self._implication())
        return left

    def _disjunction(self) -> Formula:
        parts = [self._conjunction()]
        while True:
            if self._accept("PIPE") or self._accept("IDENT", "or"):
                parts.append(self._conjunction())
            else:
                break
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _conjunction(self) -> Formula:
        parts = [self._unary()]
        while True:
            if self._accept("AMP") or self._accept("IDENT", "and"):
                parts.append(self._unary())
            else:
                break
        return parts[0] if len(parts) == 1 else And(*parts)

    def _unary(self) -> Formula:
        if self._accept("TILDE") or self._accept("IDENT", "not"):
            return Not(self._unary())
        quantifier = None
        token = self._peek()
        if token is not None and token.kind == "IDENT" \
                and token.text in ("exists", "forall"):
            quantifier = self._next().text
            variables = []
            while True:
                inner = self._peek()
                if inner is None or inner.kind != "IDENT" \
                        or not (inner.text[0].isupper()
                                or inner.text[0] == "_") \
                        or inner.text in _KEYWORDS:
                    break
                # After the first variable, an IDENT followed by '(' is a
                # relation atom opening the quantifier body (e.g.
                # `exists Z2 R2(X, Z2)`), not another quantified variable.
                # The first IDENT is always a variable, so
                # `forall Z1 (...)` still works.
                if variables:
                    following = (self._tokens[self._index + 1]
                                 if self._index + 1 < len(self._tokens)
                                 else None)
                    if following is not None \
                            and following.kind == "LPAREN":
                        break
                variables.append(Variable(self._next().text))
            if not variables:
                raise QueryError(f"{quantifier} needs at least one variable")
            body = self._unary()
            cls = Exists if quantifier == "exists" else Forall
            return cls(variables, body)
        if self._accept("LPAREN"):
            inner_formula = self.parse_formula()
            self._expect("RPAREN")
            return inner_formula
        return self._atom_or_comparison()

    def _atom_or_comparison(self) -> Formula:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query text")
        if token.kind == "IDENT" and token.text == "true":
            self._next()
            return TRUE
        if token.kind == "IDENT" and token.text == "false":
            self._next()
            return FALSE
        # Relation atom: IDENT immediately followed by '('
        if token.kind == "IDENT" and token.text not in _KEYWORDS:
            after = (self._tokens[self._index + 1]
                     if self._index + 1 < len(self._tokens) else None)
            if after is not None and after.kind == "LPAREN":
                name = self._next().text
                self._next()  # consume LPAREN
                terms = [self._term()]
                while self._accept("COMMA"):
                    terms.append(self._term())
                self._expect("RPAREN")
                return RelAtom(name, terms)
        # otherwise a comparison
        left = self._term()
        op_token = self._peek()
        if op_token is None or op_token.kind != "OP":
            raise QueryError(
                f"expected comparison operator after {left}, found "
                f"{op_token.text if op_token else 'end of input'!r}")
        self._next()
        right = self._term()
        return Cmp(op_token.text, left, right)

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "IDENT":
            if token.text in _KEYWORDS:
                raise QueryError(f"{token.text!r} is a reserved word")
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "INTEGER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            raw = token.text[1:-1]
            return Constant(raw.replace('\\"', '"').replace("\\\\", "\\"))
        raise QueryError(f"expected a term, found {token.text!r}")


def parse_formula(text: str) -> Formula:
    """Parse a bare FO formula."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    if not parser.at_end():
        raise QueryError("trailing input after formula")
    return formula


def parse_query(text: str) -> Query:
    """Parse ``name(X, Y) := formula`` (or a bare formula, in which case the
    answer variables are its free variables in first-appearance order and
    the query is named ``q``)."""
    parser = _Parser(text)
    # try the headed form first
    token = parser._peek()
    headed = False
    if token is not None and token.kind == "IDENT":
        save = parser._index
        try:
            name = parser._next().text
            parser._expect("LPAREN")
            head = []
            if parser._peek() is not None \
                    and parser._peek().kind != "RPAREN":
                term = parser._term()
                head.append(term)
                while parser._accept("COMMA"):
                    head.append(parser._term())
            parser._expect("RPAREN")
            if parser._accept("ASSIGN"):
                headed = True
            else:
                parser._index = save
        except QueryError:
            parser._index = save
    if headed:
        for term in head:
            if not isinstance(term, Variable):
                raise QueryError(
                    f"answer terms must be variables, got {term}")
        formula = parser.parse_formula()
        if not parser.at_end():
            raise QueryError("trailing input after query")
        return Query(name, head, formula)
    formula = parser.parse_formula()
    if not parser.at_end():
        raise QueryError("trailing input after query")
    ordered: list[Variable] = []
    for variable in _appearance_order(formula):
        if variable not in ordered:
            ordered.append(variable)
    free = formula.free_variables()
    head_vars = [v for v in ordered if v in free]
    return Query("q", head_vars, formula)


def _appearance_order(formula: Formula) -> list[Variable]:
    """Free-ish variable occurrence order for bare-formula queries."""
    out: list[Variable] = []

    def walk(f: Formula) -> None:
        if isinstance(f, RelAtom):
            out.extend(t for t in f.terms if isinstance(t, Variable))
        elif isinstance(f, Cmp):
            for side in (f.comparison.left, f.comparison.right):
                if isinstance(side, Variable):
                    out.append(side)
        elif isinstance(f, (And, Or)):
            for part in f.parts:
                walk(part)
        elif isinstance(f, Not):
            walk(f.sub)
        elif isinstance(f, Implies):
            walk(f.premise)
            walk(f.conclusion)
        elif isinstance(f, (Exists, Forall)):
            walk(f.sub)

    walk(formula)
    return out
