"""Exception hierarchy for the relational substrate."""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """Schema construction or lookup problem (unknown relation, arity
    mismatch, duplicate relation names across supposedly disjoint
    schemas)."""


class InstanceError(RelationalError):
    """Instance construction problem (tuple arity mismatch, unknown
    relation)."""


class QueryError(RelationalError):
    """Malformed first-order query (unbound answer variable, arity
    mismatch, parse failure)."""


class ConstraintError(RelationalError):
    """Malformed constraint (unsafe variables, empty antecedent where one
    is required, position out of range)."""
