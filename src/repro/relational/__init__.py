"""Relational substrate: schemas, instances, FO queries, constraints.

Implements the database vocabulary of the paper's Definitions 1–3: relation
and peer schemas, immutable instances with the fact-set Σ(r), the symmetric
difference Δ and the ≤_r order, full first-order query evaluation under
active-domain semantics, and the constraint families used as local ICs and
data-exchange constraints (TGDs, EGDs/FDs/keys, denials).

Query and constraint evaluation is index-driven by default: instances
carry lazily-built, incrementally-maintained per-column hash indexes
(:mod:`repro.relational.indexes`), and the evaluation planner
(:mod:`repro.relational.planner`) compiles formulas into plans with
selection pushdown and selectivity-ordered index joins.  The naive
active-domain evaluator remains available everywhere via
``evaluator="naive"`` for differential testing.
"""

from ..datalog.terms import Constant, Variable
from .algebra import NamedRelation, from_instance
from .indexes import TupleIndex
from .planner import (
    QueryPlanner,
    explain_plan,
    plan_answers,
    plan_bindings,
    plan_holds,
)
from .constraints import (
    Constraint,
    DenialConstraint,
    EqualityGeneratingConstraint,
    FunctionalDependency,
    InclusionDependency,
    KeyConstraint,
    TupleGeneratingConstraint,
    Violation,
)
from .errors import (
    ConstraintError,
    InstanceError,
    QueryError,
    RelationalError,
    SchemaError,
)
from .instance import DatabaseInstance, Fact
from .query import (
    And,
    Cmp,
    Exists,
    FALSE,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    TRUE,
    evaluation_domain,
    holds,
)
from .query_parser import parse_formula, parse_query
from .schema import DatabaseSchema, RelationSchema

__all__ = [
    # schema / instance
    "RelationSchema", "DatabaseSchema", "DatabaseInstance", "Fact",
    # query AST and evaluation
    "Formula", "RelAtom", "Cmp", "And", "Or", "Not", "Implies",
    "Exists", "Forall", "TRUE", "FALSE", "Query", "holds",
    "evaluation_domain", "parse_formula", "parse_query",
    # terms re-exported for convenience
    "Constant", "Variable",
    # index layer and evaluation planner
    "TupleIndex", "QueryPlanner", "plan_answers", "plan_bindings",
    "plan_holds", "explain_plan",
    # algebra
    "NamedRelation", "from_instance",
    # constraints
    "Constraint", "TupleGeneratingConstraint", "InclusionDependency",
    "EqualityGeneratingConstraint", "FunctionalDependency",
    "KeyConstraint", "DenialConstraint", "Violation",
    # errors
    "RelationalError", "SchemaError", "InstanceError", "QueryError",
    "ConstraintError",
]
