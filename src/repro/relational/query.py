"""First-order queries over relational instances.

The paper poses first-order queries ``Q(x̄) ∈ L(P)`` to a peer (Definition
5) and rewrites them into richer first-order formulas — Example 2 produces::

    Q'': [R1(x,y) ∧ ∀z1(R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y)] ∨ R2(x,y)

so the query language here supports the full FO repertoire: relation atoms,
comparisons, ∧, ∨, ¬, →, ∃, ∀.  Evaluation uses the standard *active
domain* semantics (quantifiers range over the values occurring in the
instance plus the constants of the query).

Two evaluators share these semantics:

* ``evaluator="planner"`` (the default) — the indexed evaluation planner
  of :mod:`repro.relational.planner`: formulas are compiled into plans
  with selection pushdown, greedy join ordering by bound-prefix
  selectivity, and hash-index-backed atom scans; the active domain is
  enumerated only for genuinely range-unrestricted variables.

* ``evaluator="naive"`` — the evaluator defined in this module, kept as
  the reference for differential testing: a candidate-generation pass
  (`bindings`) drives answer enumeration through relation atoms wherever
  possible, and every candidate is re-verified with the direct recursive
  truth test (`holds`), so the optimiser can be aggressive without
  risking soundness.  Guarded universals ``∀z (Atom ∧ ... → ...)`` are
  evaluated by enumerating the guard's matches rather than the whole
  domain; everything else unbound falls back to
  ``product(domain, repeat=k)``.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..datalog.terms import Comparison, Constant, Term, Variable
from .errors import QueryError
from .instance import DatabaseInstance

__all__ = [
    "Formula",
    "RelAtom",
    "Cmp",
    "And",
    "Or",
    "Not",
    "Implies",
    "Exists",
    "Forall",
    "TRUE",
    "FALSE",
    "Query",
    "evaluation_domain",
]

Env = dict[Variable, object]


class Formula:
    """Abstract base of first-order formulas."""

    __slots__ = ()

    def free_variables(self) -> set[Variable]:
        raise NotImplementedError

    def constants(self) -> set:
        raise NotImplementedError

    def relations(self) -> set[str]:
        raise NotImplementedError

    # boolean-operator sugar
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


def _coerce_term(term: object) -> Term:
    if isinstance(term, Term):
        return term
    return Constant(term)


class RelAtom(Formula):
    """A relation atom ``R(t1, ..., tn)``."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Iterable[object]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms",
                           tuple(_coerce_term(t) for t in terms))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelAtom is immutable")

    def free_variables(self) -> set[Variable]:
        return {t for t in self.terms if isinstance(t, Variable)}

    def constants(self) -> set:
        return {t.value for t in self.terms if isinstance(t, Constant)}

    def relations(self) -> set[str]:
        return {self.relation}

    def __eq__(self, other) -> bool:
        return (isinstance(other, RelAtom)
                and self.relation == other.relation
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


class Cmp(Formula):
    """A comparison ``t1 op t2`` (op in =, !=, <, <=, >, >=)."""

    __slots__ = ("comparison",)

    def __init__(self, op: str, left: object, right: object) -> None:
        object.__setattr__(self, "comparison",
                           Comparison(op, _coerce_term(left),
                                      _coerce_term(right)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Cmp is immutable")

    @property
    def op(self) -> str:
        return self.comparison.op

    def free_variables(self) -> set[Variable]:
        return self.comparison.variables()

    def constants(self) -> set:
        result = set()
        for side in (self.comparison.left, self.comparison.right):
            if isinstance(side, Constant):
                result.add(side.value)
        return result

    def relations(self) -> set[str]:
        return set()

    def __eq__(self, other) -> bool:
        return isinstance(other, Cmp) and self.comparison == other.comparison

    def __hash__(self) -> int:
        return hash(("cmp", self.comparison))

    def __str__(self) -> str:
        return str(self.comparison)


class _Junction(Formula):
    __slots__ = ("parts",)
    _symbol = "?"

    def __init__(self, *parts: Formula) -> None:
        flattened: list[Formula] = []
        for part in parts:
            if not isinstance(part, Formula):
                raise QueryError(f"expected Formula, got {part!r}")
            if type(part) is type(self):
                flattened.extend(part.parts)  # type: ignore[attr-defined]
            else:
                flattened.append(part)
        if not flattened:
            raise QueryError("empty junction")
        object.__setattr__(self, "parts", tuple(flattened))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("junctions are immutable")

    def free_variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def constants(self) -> set:
        result: set = set()
        for part in self.parts:
            result |= part.constants()
        return result

    def relations(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result |= part.relations()
        return result

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))

    def __str__(self) -> str:
        return "(" + f" {self._symbol} ".join(str(p) for p in self.parts) \
            + ")"


class And(_Junction):
    """Conjunction (n-ary, flattened)."""
    __slots__ = ()
    _symbol = "&"


class Or(_Junction):
    """Disjunction (n-ary, flattened)."""
    __slots__ = ()
    _symbol = "|"


class Not(Formula):
    """Negation."""

    __slots__ = ("sub",)

    def __init__(self, sub: Formula) -> None:
        object.__setattr__(self, "sub", sub)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Not is immutable")

    def free_variables(self) -> set[Variable]:
        return self.sub.free_variables()

    def constants(self) -> set:
        return self.sub.constants()

    def relations(self) -> set[str]:
        return self.sub.relations()

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.sub == other.sub

    def __hash__(self) -> int:
        return hash(("not", self.sub))

    def __str__(self) -> str:
        return f"~{self.sub}"


class Implies(Formula):
    """Implication ``premise -> conclusion``."""

    __slots__ = ("premise", "conclusion")

    def __init__(self, premise: Formula, conclusion: Formula) -> None:
        object.__setattr__(self, "premise", premise)
        object.__setattr__(self, "conclusion", conclusion)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Implies is immutable")

    def free_variables(self) -> set[Variable]:
        return self.premise.free_variables() | \
            self.conclusion.free_variables()

    def constants(self) -> set:
        return self.premise.constants() | self.conclusion.constants()

    def relations(self) -> set[str]:
        return self.premise.relations() | self.conclusion.relations()

    def __eq__(self, other) -> bool:
        return (isinstance(other, Implies)
                and self.premise == other.premise
                and self.conclusion == other.conclusion)

    def __hash__(self) -> int:
        return hash(("implies", self.premise, self.conclusion))

    def __str__(self) -> str:
        return f"({self.premise} -> {self.conclusion})"


class _Quantifier(Formula):
    __slots__ = ("variables", "sub")
    _symbol = "?"

    def __init__(self, variables: Union[Variable, Sequence[Variable]],
                 sub: Formula) -> None:
        if isinstance(variables, Variable):
            variables = (variables,)
        variables = tuple(variables)
        if not variables:
            raise QueryError("quantifier needs at least one variable")
        for v in variables:
            if not isinstance(v, Variable):
                raise QueryError(f"quantifier over non-variable {v!r}")
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "sub", sub)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("quantifiers are immutable")

    def free_variables(self) -> set[Variable]:
        return self.sub.free_variables() - set(self.variables)

    def constants(self) -> set:
        return self.sub.constants()

    def relations(self) -> set[str]:
        return self.sub.relations()

    def __eq__(self, other) -> bool:
        return (type(other) is type(self)
                and self.variables == other.variables
                and self.sub == other.sub)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.sub))

    def __str__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"{self._symbol}{names} {self.sub}"


class Exists(_Quantifier):
    """Existential quantification."""
    __slots__ = ()
    _symbol = "exists "


class Forall(_Quantifier):
    """Universal quantification."""
    __slots__ = ()
    _symbol = "forall "


class _Truth(Formula):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("immutable")

    def free_variables(self) -> set[Variable]:
        return set()

    def constants(self) -> set:
        return set()

    def relations(self) -> set[str]:
        return set()

    def __eq__(self, other) -> bool:
        return isinstance(other, _Truth) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("truth", self.value))

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = _Truth(True)
FALSE = _Truth(False)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def evaluation_domain(instance: DatabaseInstance,
                      formula: Formula) -> tuple:
    """Active domain: instance values plus the formula's constants."""
    domain = instance.active_domain() | formula.constants()
    return tuple(sorted(domain, key=lambda v: (isinstance(v, str), str(v))))


def _term_value(term: Term, env: Env):
    if isinstance(term, Constant):
        return term.value
    value = env.get(term)
    if value is None and term not in env:
        raise QueryError(f"unbound variable {term} during evaluation")
    return value


def holds(formula: Formula, instance: DatabaseInstance, env: Env,
          domain: tuple) -> bool:
    """Truth of ``formula`` under ``env`` (must bind all free variables)."""
    if isinstance(formula, _Truth):
        return formula.value
    if isinstance(formula, RelAtom):
        row = tuple(_term_value(t, env) for t in formula.terms)
        return row in instance.tuples(formula.relation)
    if isinstance(formula, Cmp):
        comparison = formula.comparison
        left = _term_value(comparison.left, env)
        right = _term_value(comparison.right, env)
        return Comparison(comparison.op, Constant(left),
                          Constant(right)).evaluate()
    if isinstance(formula, And):
        return all(holds(p, instance, env, domain) for p in formula.parts)
    if isinstance(formula, Or):
        return any(holds(p, instance, env, domain) for p in formula.parts)
    if isinstance(formula, Not):
        return not holds(formula.sub, instance, env, domain)
    if isinstance(formula, Implies):
        return (not holds(formula.premise, instance, env, domain)
                or holds(formula.conclusion, instance, env, domain))
    if isinstance(formula, Exists):
        if formula.variables and not domain:
            # empty active domain: no witness value exists, even when the
            # body ignores the quantified variables (bindings() would
            # otherwise certify a closed body without picking a witness)
            return False
        inner_env = {k: v for k, v in env.items()
                     if k not in formula.variables}  # shadowing
        return any(True for _ in bindings(formula.sub, instance, inner_env,
                                          domain))
    if isinstance(formula, Forall):
        return _forall_holds(formula, instance, env, domain)
    raise QueryError(f"cannot evaluate {formula!r}")


def _forall_holds(formula: Forall, instance: DatabaseInstance, env: Env,
                  domain: tuple) -> bool:
    """∀x̄ φ.  For the guarded shape ∀x̄ (ψ → χ) enumerate ψ's matches;
    otherwise enumerate the domain."""
    sub = formula.sub
    outer_env = {k: v for k, v in env.items()
                 if k not in formula.variables}  # shadowing
    if isinstance(sub, Implies):
        for candidate in bindings(sub.premise, instance, dict(outer_env),
                                  domain):
            full = dict(outer_env)
            full.update(candidate)
            # complete any still-unbound quantified variables over domain
            missing = [v for v in formula.variables if v not in full]
            for combo in product(domain, repeat=len(missing)):
                inner = dict(full)
                inner.update(zip(missing, combo))
                if holds(sub.premise, instance, inner, domain) and \
                        not holds(sub.conclusion, instance, inner, domain):
                    return False
        return True
    for combo in product(domain, repeat=len(formula.variables)):
        inner = dict(outer_env)
        inner.update(zip(formula.variables, combo))
        if not holds(sub, instance, inner, domain):
            return False
    return True


def bindings(formula: Formula, instance: DatabaseInstance, env: Env,
             domain: tuple) -> Iterator[Env]:
    """Generate (a superset of) the environments extending ``env`` that make
    ``formula`` true; every yielded environment is verified, so the stream
    contains exactly the satisfying extensions, possibly with duplicates
    and possibly *partial* for disjunctions whose branches bind fewer
    variables (callers complete and re-verify — see :meth:`Query.answers`).
    """
    if isinstance(formula, _Truth):
        if formula.value:
            yield dict(env)
        return
    if isinstance(formula, RelAtom):
        yield from _atom_bindings(formula, instance, env)
        return
    if isinstance(formula, Cmp):
        yield from _cmp_bindings(formula, instance, env, domain)
        return
    if isinstance(formula, And):
        yield from _and_bindings(list(formula.parts), instance, env, domain)
        return
    if isinstance(formula, Or):
        for part in formula.parts:
            yield from bindings(part, instance, env, domain)
        return
    if isinstance(formula, Exists):
        shadowed = {v: env[v] for v in formula.variables if v in env}
        inner_env = {k: v for k, v in env.items()
                     if k not in formula.variables}
        for result in bindings(formula.sub, instance, inner_env, domain):
            projected = {k: v for k, v in result.items()
                         if k not in formula.variables}
            projected.update(shadowed)
            yield projected
        return
    # checkers: Not / Implies / Forall — enumerate any unbound free vars.
    free = formula.free_variables()
    unbound = sorted((v for v in free if v not in env),
                     key=lambda v: v.name)
    for combo in product(domain, repeat=len(unbound)):
        candidate = dict(env)
        candidate.update(zip(unbound, combo))
        if holds(formula, instance, candidate, domain):
            yield candidate


def _atom_bindings(atom: RelAtom, instance: DatabaseInstance,
                   env: Env) -> Iterator[Env]:
    terms = atom.terms
    for row in instance.tuples(atom.relation):
        candidate: Optional[Env] = None
        ok = True
        for term, value in zip(terms, row):
            if isinstance(term, Constant):
                if term.value != value:
                    ok = False
                    break
            else:
                bound = (candidate or env).get(term, _MISSING)
                if bound is _MISSING:
                    if candidate is None:
                        candidate = dict(env)
                    candidate[term] = value
                elif bound != value:
                    ok = False
                    break
        if ok:
            yield candidate if candidate is not None else dict(env)


_MISSING = object()


def _cmp_bindings(formula: Cmp, instance: DatabaseInstance, env: Env,
                  domain: tuple) -> Iterator[Env]:
    comparison = formula.comparison
    left, right = comparison.left, comparison.right
    # `X = c` / `c = X` with X unbound binds directly.
    if comparison.op == "=":
        if isinstance(left, Variable) and left not in env:
            if isinstance(right, Constant) or right in env:
                candidate = dict(env)
                candidate[left] = _term_value(right, env)
                yield candidate
                return
        if isinstance(right, Variable) and right not in env:
            if isinstance(left, Constant) or left in env:
                candidate = dict(env)
                candidate[right] = _term_value(left, env)
                yield candidate
                return
    unbound = sorted({v for v in formula.free_variables() if v not in env},
                     key=lambda v: v.name)
    for combo in product(domain, repeat=len(unbound)):
        candidate = dict(env)
        candidate.update(zip(unbound, combo))
        if holds(formula, instance, candidate, domain):
            yield candidate


def _and_bindings(parts: list[Formula], instance: DatabaseInstance,
                  env: Env, domain: tuple) -> Iterator[Env]:
    """Greedy scheduling: fully-bound checkers first (cheap filters), then
    binders (atoms before quantified/disjunctive parts), domain enumeration
    as a last resort."""
    if not parts:
        yield dict(env)
        return
    bound_vars = set(env)
    checker_types = (Not, Implies, Forall, Cmp, _Truth)

    def fully_bound(f: Formula) -> bool:
        return f.free_variables() <= bound_vars

    chosen_index = None
    for index, part in enumerate(parts):
        if isinstance(part, checker_types) and fully_bound(part):
            chosen_index = index
            break
    if chosen_index is None:
        for index, part in enumerate(parts):
            if isinstance(part, RelAtom):
                chosen_index = index
                break
    if chosen_index is None:
        for index, part in enumerate(parts):
            if isinstance(part, (And, Or, Exists)):
                chosen_index = index
                break
    if chosen_index is None:
        chosen_index = 0
    part = parts[chosen_index]
    rest = parts[:chosen_index] + parts[chosen_index + 1:]
    if isinstance(part, checker_types) and fully_bound(part):
        if holds(part, instance, env, domain):
            yield from _and_bindings(rest, instance, env, domain)
        return
    for candidate in bindings(part, instance, env, domain):
        yield from _and_bindings(rest, instance, candidate, domain)


class Query:
    """A named FO query ``name(x̄) := formula`` with answer variables x̄.

    Answers are the tuples ``t̄`` over the evaluation domain for which the
    formula holds with ``x̄ := t̄`` (Definition 5 evaluates such queries
    against each solution's restriction to the peer).
    """

    __slots__ = ("name", "head", "formula")

    def __init__(self, name: str, head: Sequence[Variable],
                 formula: Formula) -> None:
        head = tuple(head)
        for v in head:
            if not isinstance(v, Variable):
                raise QueryError(f"answer terms must be variables: {v!r}")
        if len(set(head)) != len(head):
            raise QueryError("repeated answer variable")
        extra = formula.free_variables() - set(head)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise QueryError(
                f"free variables {{{names}}} not among answer variables; "
                f"quantify them explicitly")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "formula", formula)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Query is immutable")

    @property
    def arity(self) -> int:
        return len(self.head)

    def relations(self) -> set[str]:
        return self.formula.relations()

    def answers(self, instance: DatabaseInstance,
                domain: Optional[tuple] = None, *,
                evaluator: str = "planner") -> set[tuple]:
        """All answer tuples over ``instance`` (active-domain semantics).

        ``evaluator`` selects the engine: ``"planner"`` (default)
        compiles the formula into an index-backed plan; ``"naive"``
        keeps the candidate-generation + re-verification evaluator of
        this module (the differential-testing reference).
        """
        if domain is None:
            domain = evaluation_domain(instance, self.formula)
        if evaluator == "planner":
            from .planner import QueryPlanner
            return QueryPlanner(instance, domain).answers(self)
        if evaluator != "naive":
            raise QueryError(
                f"unknown evaluator {evaluator!r}; "
                f"choose 'planner' or 'naive'")
        results: set[tuple] = set()
        seen_envs: set[tuple] = set()
        for candidate in bindings(self.formula, instance, {}, domain):
            unbound = [v for v in self.head if v not in candidate]
            base = tuple(candidate.get(v, _MISSING) for v in self.head)
            # deduplicate *all* candidate environments, including the
            # partial ones disjunction branches binding fewer variables
            # produce: the completion below depends only on ``base``, so
            # a repeat can never contribute new rows — it only re-runs
            # the |domain|^unbound product and its ``holds`` checks.
            if base in seen_envs:
                continue
            seen_envs.add(base)
            for combo in product(domain, repeat=len(unbound)):
                env = dict(candidate)
                env.update(zip(unbound, combo))
                row = tuple(env[v] for v in self.head)
                if row in results:
                    continue
                if holds(self.formula, instance, env, domain):
                    results.add(row)
        return results

    def is_true(self, instance: DatabaseInstance, *,
                evaluator: str = "planner") -> bool:
        """Boolean query evaluation (arity 0)."""
        if self.head:
            raise QueryError("is_true applies to boolean queries only")
        domain = evaluation_domain(instance, self.formula)
        if evaluator == "planner":
            from .planner import QueryPlanner
            return QueryPlanner(instance, domain).holds(self.formula, {})
        if evaluator != "naive":
            raise QueryError(
                f"unknown evaluator {evaluator!r}; "
                f"choose 'planner' or 'naive'")
        return holds(self.formula, instance, {}, domain)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Query) and self.name == other.name
                and self.head == other.head
                and self.formula == other.formula)

    def __hash__(self) -> int:
        return hash((self.name, self.head, self.formula))

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        return f"{self.name}({head}) := {self.formula}"
