"""The shared hash-index layer behind indexed query evaluation.

Every evaluation mechanism in the reproduction — the FO planner
(:mod:`repro.relational.planner`), constraint checking
(:mod:`repro.relational.constraints`), and the ASP grounder
(:mod:`repro.datalog.grounding`) — needs the same primitive: *given some
bound columns, which tuples of a relation agree with them?*  Answering
that by scanning the whole relation (or worse, by enumerating
``product(domain, repeat=k)``) makes first-order evaluation exponential
in the number of unbound variables regardless of instance shape.

:class:`TupleIndex` provides the primitive: a mutable set of equal-arity
tuples with per-column hash indexes that are

* **lazy** — a column index is built on first use and cached;
* **incremental** — :meth:`add` and :meth:`discard` update every built
  column index in O(built columns), so derived instances and the
  grounder's growing possible-set never rebuild from scratch;
* **exact** — :meth:`matching` filters on *all* bound columns (probing
  the smallest bucket first), so callers get precisely the agreeing
  tuples and need no re-verification pass.

The index is value-agnostic: the relational layer stores raw Python
scalars, the Datalog layer stores :class:`~repro.datalog.terms.Constant`
terms; both are just hashable keys here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

__all__ = ["TupleIndex"]

_EMPTY: frozenset = frozenset()


class TupleIndex:
    """A set of equal-arity tuples with lazy per-column hash indexes."""

    __slots__ = ("rows", "_by_column")

    def __init__(self, rows: Iterable[tuple] = ()) -> None:
        self.rows: set[tuple] = set(rows)
        # column position -> {value: set of rows with that value there}
        self._by_column: dict[int, dict[object, set[tuple]]] = {}

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (f"TupleIndex({len(self.rows)} rows, "
                f"{sorted(self._by_column)} indexed)")

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add(self, row: tuple) -> bool:
        """Insert ``row``; update every built column index.  Returns
        whether the row was new."""
        if row in self.rows:
            return False
        self.rows.add(row)
        for position, column in self._by_column.items():
            column.setdefault(row[position], set()).add(row)
        return True

    def discard(self, row: tuple) -> bool:
        """Remove ``row`` if present; update every built column index."""
        if row not in self.rows:
            return False
        self.rows.remove(row)
        for position, column in self._by_column.items():
            bucket = column.get(row[position])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del column[row[position]]
        return True

    def apply_delta(self, insertions: Iterable[tuple] = (),
                    deletions: Iterable[tuple] = ()) -> None:
        """Replay a batch of row changes through the incremental path.

        Deletions run first (delta replay may delete and re-insert the
        same row; the net effect must be presence), and every built
        column index is maintained row by row — this is the primitive
        the storage layer leans on when a reloaded peer replays its
        delta log instead of rebuilding indexes from scratch.
        """
        for row in deletions:
            self.discard(row)
        for row in insertions:
            self.add(row)

    def copy(self) -> "TupleIndex":
        """Independent copy carrying the already-built column indexes
        (buckets are copied, so the clones diverge safely)."""
        clone = TupleIndex.__new__(TupleIndex)
        clone.rows = set(self.rows)
        clone._by_column = {
            position: {value: set(bucket)
                       for value, bucket in column.items()}
            for position, column in self._by_column.items()}
        return clone

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def column(self, position: int) -> dict[object, set[tuple]]:
        """The hash index for one column (built on first use)."""
        built = self._by_column.get(position)
        if built is None:
            built = {}
            for row in self.rows:
                built.setdefault(row[position], set()).add(row)
            self._by_column[position] = built
        return built

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in one column."""
        return len(self.column(position))

    def estimate(self, positions: Iterable[int]) -> float:
        """Estimated number of rows matching a lookup that binds the
        given columns (uniformity assumption; used for join ordering)."""
        size = len(self.rows)
        if not size:
            return 0.0
        best = float(size)
        for position in positions:
            distinct = self.distinct_count(position)
            if distinct:
                best = min(best, size / distinct)
        return best

    def matching(self, bound: Mapping[int, object]) -> list[tuple]:
        """Exactly the rows agreeing with every ``position: value`` pair.

        Probes the bound column with the smallest bucket and filters the
        remaining bound columns inline.  Returns a snapshot list, so
        callers may mutate the index mid-iteration (the grounder derives
        into the relation it is scanning).
        """
        if not bound:
            return list(self.rows)
        best_bucket: Optional[set] = None
        for position, value in bound.items():
            bucket = self.column(position).get(value, _EMPTY)
            if not bucket:
                return []
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
        assert best_bucket is not None
        if len(bound) == 1:
            return list(best_bucket)
        return [row for row in best_bucket
                if all(row[position] == value
                       for position, value in bound.items())]
