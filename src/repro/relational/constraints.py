"""Integrity and data-exchange constraints.

The paper's constraints all fall into three classical families:

* **Tuple-generating constraints** (TGDs) — the referential exchange
  constraints of Section 3, form (2)/(3)::

      ∀x̄ ∃ȳ (RQ(x̄) ∧ ... → RP(z̄, ȳ) ∧ ...)

  with arbitrary mixes of the two peers' relations on both sides, built-in
  conditions, and existential variables in the consequent
  (:class:`TupleGeneratingConstraint`; :class:`InclusionDependency` is the
  ``ȳ = ∅`` convenience case, like Σ(P1,P2) of Example 1).

* **Equality-generating constraints** (EGDs) — e.g. Σ(P1,P3) of Example 1,
  ``∀xyz (R1(x,y) ∧ R3(x,z) → y = z)``, and local functional dependencies
  (:class:`EqualityGeneratingConstraint`, :class:`FunctionalDependency`,
  :class:`KeyConstraint`).

* **Denial constraints** — ``← body`` program constraints used for local
  ICs in Section 3.2 (:class:`DenialConstraint`).

Each constraint can check satisfaction, enumerate ground *violations*, and
(for TGDs) enumerate *witness options*: the possible existential-variable
bindings together with the facts that would have to be inserted — exactly
the information the repair engine (and the ASP program builders) need to
implement rules (6)–(9) of the paper.

Checking goes through the indexed evaluation planner by default
(antecedent matching and witness search become selectivity-ordered index
joins); pass ``evaluator="naive"`` to any checking method to use the
naive active-domain evaluator instead — the differential property tests
assert both give identical verdicts.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Optional, Sequence

from ..datalog.terms import Comparison, Constant, Term, Variable
from .errors import ConstraintError
from .instance import DatabaseInstance, Fact
from .planner import QueryPlanner
from .query import (
    And,
    Cmp,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    RelAtom,
    TRUE,
    bindings,
    evaluation_domain,
    holds,
)

__all__ = [
    "Violation",
    "Constraint",
    "TupleGeneratingConstraint",
    "InclusionDependency",
    "EqualityGeneratingConstraint",
    "FunctionalDependency",
    "KeyConstraint",
    "DenialConstraint",
]


class Violation:
    """One ground violation of a constraint.

    ``assignment`` binds the constraint's universal variables;
    ``antecedent_facts`` are the matched ground facts (the candidates for
    deletion-based repairs).
    """

    __slots__ = ("constraint", "assignment", "antecedent_facts", "_hash")

    def __init__(self, constraint: "Constraint",
                 assignment: dict[Variable, object],
                 antecedent_facts: tuple[Fact, ...]) -> None:
        items = tuple(sorted(((v.name, value) for v, value
                              in assignment.items())))
        object.__setattr__(self, "constraint", constraint)
        object.__setattr__(self, "assignment", dict(assignment))
        object.__setattr__(self, "antecedent_facts",
                           tuple(sorted(antecedent_facts)))
        object.__setattr__(self, "_hash",
                           hash((id(constraint), items,
                                 self.antecedent_facts)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Violation is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Violation)
                and self.constraint is other.constraint
                and self.antecedent_facts == other.antecedent_facts
                and self.assignment == other.assignment)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        facts = ", ".join(str(f) for f in self.antecedent_facts)
        return f"Violation({self.constraint.name}: {facts})"


def _coerce_atoms(atoms: Iterable[object]) -> tuple[RelAtom, ...]:
    out = []
    for atom in atoms:
        if not isinstance(atom, RelAtom):
            raise ConstraintError(f"expected RelAtom, got {atom!r}")
        out.append(atom)
    return tuple(out)


def _coerce_conditions(conditions: Iterable[object]) -> tuple[Cmp, ...]:
    out = []
    for condition in conditions:
        if isinstance(condition, Cmp):
            out.append(condition)
        elif isinstance(condition, Comparison):
            out.append(Cmp(condition.op, condition.left, condition.right))
        else:
            raise ConstraintError(
                f"expected comparison condition, got {condition!r}")
    return tuple(out)


class Constraint:
    """Abstract base: a named, first-order expressible constraint.

    Checking methods accept ``evaluator="planner"`` (default, indexed)
    or ``evaluator="naive"`` (reference active-domain evaluation).
    """

    name: str

    def holds_in(self, instance: DatabaseInstance, *,
                 evaluator: str = "planner") -> bool:
        raise NotImplementedError

    def violations(self, instance: DatabaseInstance, *,
                   evaluator: str = "planner") -> list[Violation]:
        raise NotImplementedError

    def relations(self) -> set[str]:
        raise NotImplementedError

    def to_formula(self) -> Formula:
        """The constraint as a closed FO sentence (for cross-validation)."""
        raise NotImplementedError


def _antecedent_formula(atoms: Sequence[RelAtom],
                        conditions: Sequence[Cmp]) -> Formula:
    parts: list[Formula] = list(atoms) + list(conditions)
    if not parts:
        return TRUE
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def _formula_bindings(formula: Formula, instance: DatabaseInstance,
                      env: dict[Variable, object], evaluator: str,
                      planners: Optional[dict] = None
                      ) -> Iterator[dict[Variable, object]]:
    """Satisfying extensions of ``env`` via the selected evaluator.

    ``planners`` is an optional per-call cache mapping formulas to
    :class:`QueryPlanner` instances, so repeated checks of the same
    formula against the same instance (the ``holds_for`` loop inside
    ``violations``) reuse compiled plans and indexes.
    """
    if evaluator == "naive":
        domain = evaluation_domain(instance, formula)
        return bindings(formula, instance, env, domain)
    if evaluator != "planner":
        raise ConstraintError(
            f"unknown evaluator {evaluator!r}; choose 'planner' or 'naive'")
    planner = None if planners is None else planners.get(formula)
    if planner is None:
        planner = QueryPlanner(instance,
                               evaluation_domain(instance, formula))
        if planners is not None:
            planners[formula] = planner
    return planner.bindings(formula, env)


def _antecedent_matches(instance: DatabaseInstance,
                        atoms: Sequence[RelAtom],
                        conditions: Sequence[Cmp],
                        evaluator: str = "planner",
                        planners: Optional[dict] = None
                        ) -> Iterator[dict[Variable, object]]:
    formula = _antecedent_formula(atoms, conditions)
    seen: set[tuple] = set()
    variables = sorted(formula.free_variables(), key=lambda v: v.name)
    for env in _formula_bindings(formula, instance, {}, evaluator,
                                 planners):
        key = tuple(env.get(v) for v in variables)
        if key in seen:
            continue
        seen.add(key)
        yield env


def _ground_fact(atom: RelAtom, env: dict[Variable, object]) -> Fact:
    values = []
    for term in atom.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            assert isinstance(term, Variable)
            if term not in env:
                raise ConstraintError(
                    f"variable {term} of {atom} unbound; constraint unsafe")
            values.append(env[term])
    return Fact(atom.relation, values)


class TupleGeneratingConstraint(Constraint):
    """``∀x̄ (antecedent ∧ conditions → ∃ȳ consequent ∧ cons_conditions)``.

    Universal variables x̄ are those of the antecedent; every consequent
    variable not among them is existential.  Safety requires every
    condition/consequent-universal variable to appear in the antecedent.
    """

    def __init__(self, antecedent: Iterable[object],
                 consequent: Iterable[object],
                 conditions: Iterable[object] = (),
                 cons_conditions: Iterable[object] = (),
                 name: Optional[str] = None) -> None:
        self.antecedent = _coerce_atoms(antecedent)
        self.consequent = _coerce_atoms(consequent)
        self.conditions = _coerce_conditions(conditions)
        self.cons_conditions = _coerce_conditions(cons_conditions)
        if not self.antecedent:
            raise ConstraintError("TGD needs a non-empty antecedent")
        if not self.consequent:
            raise ConstraintError("TGD needs a non-empty consequent")
        self.universal_vars = frozenset().union(
            *(a.free_variables() for a in self.antecedent))
        for condition in self.conditions:
            if not condition.free_variables() <= self.universal_vars:
                raise ConstraintError(
                    f"condition {condition} uses non-antecedent variables")
        consequent_vars = frozenset().union(
            *(a.free_variables() for a in self.consequent))
        self.existential_vars = frozenset(
            consequent_vars - self.universal_vars)
        for condition in self.cons_conditions:
            allowed = self.universal_vars | self.existential_vars
            if not condition.free_variables() <= allowed:
                raise ConstraintError(
                    f"consequent condition {condition} uses unknown "
                    f"variables")
        self.name = name or f"tgd_{id(self):x}"

    # ------------------------------------------------------------------
    def relations(self) -> set[str]:
        return ({a.relation for a in self.antecedent}
                | {a.relation for a in self.consequent})

    def antecedent_relations(self) -> set[str]:
        return {a.relation for a in self.antecedent}

    def consequent_relations(self) -> set[str]:
        return {a.relation for a in self.consequent}

    def is_full(self) -> bool:
        """True when there are no existential variables (full TGD)."""
        return not self.existential_vars

    # ------------------------------------------------------------------
    def witnesses(self, instance: DatabaseInstance,
                  assignment: dict[Variable, object], *,
                  evaluator: str = "planner",
                  _planners: Optional[dict] = None
                  ) -> Iterator[dict[Variable, object]]:
        """Existential bindings making the consequent hold in ``instance``."""
        env = {v: assignment[v] for v in self.universal_vars
               if v in assignment}
        formula = _antecedent_formula(self.consequent,
                                      self.cons_conditions)
        for match in _formula_bindings(formula, instance, env, evaluator,
                                       _planners):
            yield {v: match[v] for v in self.existential_vars if v in match}

    def holds_for(self, instance: DatabaseInstance,
                  assignment: dict[Variable, object], *,
                  evaluator: str = "planner",
                  _planners: Optional[dict] = None) -> bool:
        """Does this antecedent match have a consequent witness?"""
        found = self.witnesses(instance, assignment, evaluator=evaluator,
                               _planners=_planners)
        return next(iter(found), None) is not None

    def witness_options(self, instance: DatabaseInstance,
                        assignment: dict[Variable, object],
                        insertable: set[str],
                        witness_domain: Optional[Iterable[object]] = None,
                        *, evaluator: str = "planner"
                        ) -> Iterator[tuple[dict, tuple[Fact, ...]]]:
        """All ways to *make* the consequent hold by inserting facts.

        Consequent atoms over non-``insertable`` relations must already
        match the instance (they constrain the existential variables, like
        ``S2(z, w)`` in rule (9)); atoms over insertable relations are
        inserted when missing.  Yields ``(tau, facts_to_insert)`` pairs.
        Existential variables not constrained by any fixed atom range over
        ``witness_domain`` (default: the instance's active domain plus the
        constraint's constants).
        """
        env = {v: assignment[v] for v in self.universal_vars
               if v in assignment}
        fixed_atoms = [a for a in self.consequent
                       if a.relation not in insertable]
        flex_atoms = [a for a in self.consequent
                      if a.relation in insertable]
        fixed_formula = _antecedent_formula(fixed_atoms, ())
        domain = evaluation_domain(instance, fixed_formula)
        seen: set[tuple] = set()
        exist_order = sorted(self.existential_vars, key=lambda v: v.name)
        for partial in _formula_bindings(fixed_formula, instance,
                                         dict(env), evaluator):
            unbound = [v for v in exist_order if v not in partial]
            if unbound:
                if witness_domain is None:
                    pool: tuple = tuple(sorted(
                        instance.active_domain()
                        | set().union(*(a.constants()
                                        for a in self.consequent)),
                        key=lambda v: (isinstance(v, str), str(v))))
                else:
                    pool = tuple(witness_domain)
                combos = product(pool, repeat=len(unbound))
            else:
                combos = iter([()])
            for combo in combos:
                tau_env = dict(partial)
                tau_env.update(zip(unbound, combo))
                tau = {v: tau_env[v] for v in exist_order}
                key = tuple(tau[v] for v in exist_order)
                if key in seen:
                    continue
                ok = True
                for condition in self.cons_conditions:
                    full = dict(env)
                    full.update(tau_env)
                    if not holds(condition, instance, full, domain):
                        ok = False
                        break
                if not ok:
                    continue
                seen.add(key)
                inserts = []
                full = dict(env)
                full.update(tau_env)
                for atom in flex_atoms:
                    fact = _ground_fact(atom, full)
                    if fact not in instance:
                        inserts.append(fact)
                yield tau, tuple(sorted(inserts))

    # ------------------------------------------------------------------
    def holds_in(self, instance: DatabaseInstance, *,
                 evaluator: str = "planner") -> bool:
        return not self.violations(instance, evaluator=evaluator)

    def violations(self, instance: DatabaseInstance, *,
                   evaluator: str = "planner") -> list[Violation]:
        found = []
        # one planner cache per call: the consequent formula's compiled
        # plan and indexes are reused across every antecedent match
        planners: dict = {}
        for env in _antecedent_matches(instance, self.antecedent,
                                       self.conditions, evaluator,
                                       planners):
            if not self.holds_for(instance, env, evaluator=evaluator,
                                  _planners=planners):
                facts = tuple(_ground_fact(a, env) for a in self.antecedent)
                universal_env = {v: env[v] for v in self.universal_vars}
                found.append(Violation(self, universal_env, facts))
        return found

    def to_formula(self) -> Formula:
        antecedent = _antecedent_formula(self.antecedent, self.conditions)
        consequent = _antecedent_formula(self.consequent,
                                         self.cons_conditions)
        if self.existential_vars:
            consequent = Exists(sorted(self.existential_vars,
                                       key=lambda v: v.name), consequent)
        implication = Implies(antecedent, consequent)
        if self.universal_vars:
            return Forall(sorted(self.universal_vars,
                                 key=lambda v: v.name), implication)
        return implication

    def __str__(self) -> str:
        return f"{self.name}: {self.to_formula()}"

    def __repr__(self) -> str:
        return f"TupleGeneratingConstraint({self.name!r})"


class InclusionDependency(TupleGeneratingConstraint):
    """``R[i1..ik] ⊆ S[j1..jk]`` — full when the positions cover S.

    ``InclusionDependency("R2", "R1")`` is the full inclusion Σ(P1,P2) of
    Example 1: every R2-tuple must appear in R1.  Position lists select
    columns; uncovered columns of ``parent`` become existential variables.
    """

    def __init__(self, child: str, parent: str,
                 child_positions: Optional[Sequence[int]] = None,
                 parent_positions: Optional[Sequence[int]] = None,
                 child_arity: Optional[int] = None,
                 parent_arity: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        if child_positions is None or parent_positions is None:
            if child_arity is None or parent_arity is None:
                if child_arity is None and parent_arity is None:
                    raise ConstraintError(
                        "give either positions or arities for an inclusion "
                        "dependency")
            child_arity = child_arity if child_arity is not None \
                else parent_arity
            parent_arity = parent_arity if parent_arity is not None \
                else child_arity
            assert child_arity is not None and parent_arity is not None
            if child_positions is None:
                child_positions = tuple(range(child_arity))
            if parent_positions is None:
                parent_positions = tuple(range(parent_arity))
        child_positions = tuple(child_positions)
        parent_positions = tuple(parent_positions)
        if len(child_positions) != len(parent_positions):
            raise ConstraintError(
                "inclusion dependency position lists differ in length")
        if child_arity is None:
            child_arity = max(child_positions) + 1
        if parent_arity is None:
            parent_arity = max(parent_positions) + 1
        child_vars = [Variable(f"X{i}") for i in range(child_arity)]
        parent_vars: list[Term] = [Variable(f"Y{i}")
                                   for i in range(parent_arity)]
        for c_pos, p_pos in zip(child_positions, parent_positions):
            parent_vars[p_pos] = child_vars[c_pos]
        super().__init__(
            antecedent=[RelAtom(child, child_vars)],
            consequent=[RelAtom(parent, parent_vars)],
            name=name or f"ind_{child}_in_{parent}")
        self.child = child
        self.parent = parent
        self.child_positions = child_positions
        self.parent_positions = parent_positions


class EqualityGeneratingConstraint(Constraint):
    """``∀x̄ (antecedent ∧ conditions → t1 = t1' ∧ ... ∧ tk = tk')``.

    Violations are antecedent matches where some equality fails; the only
    tuple-based repairs are deletions of antecedent facts (the paper never
    updates attribute values in place).
    """

    def __init__(self, antecedent: Iterable[object],
                 equalities: Iterable[tuple[object, object]],
                 conditions: Iterable[object] = (),
                 name: Optional[str] = None) -> None:
        self.antecedent = _coerce_atoms(antecedent)
        if not self.antecedent:
            raise ConstraintError("EGD needs a non-empty antecedent")
        self.conditions = _coerce_conditions(conditions)
        pairs = []
        for left, right in equalities:
            pairs.append((left if isinstance(left, Term)
                          else Constant(left),
                          right if isinstance(right, Term)
                          else Constant(right)))
        if not pairs:
            raise ConstraintError("EGD needs at least one equality")
        self.equalities = tuple(pairs)
        self.universal_vars = frozenset().union(
            *(a.free_variables() for a in self.antecedent))
        for left, right in self.equalities:
            for side in (left, right):
                if isinstance(side, Variable) \
                        and side not in self.universal_vars:
                    raise ConstraintError(
                        f"equality variable {side} not in antecedent")
        self.name = name or f"egd_{id(self):x}"

    def relations(self) -> set[str]:
        return {a.relation for a in self.antecedent}

    def _equalities_hold(self, env: dict[Variable, object]) -> bool:
        for left, right in self.equalities:
            lv = left.value if isinstance(left, Constant) else env[left]
            rv = right.value if isinstance(right, Constant) else env[right]
            if lv != rv:
                return False
        return True

    def holds_in(self, instance: DatabaseInstance, *,
                 evaluator: str = "planner") -> bool:
        return not self.violations(instance, evaluator=evaluator)

    def violations(self, instance: DatabaseInstance, *,
                   evaluator: str = "planner") -> list[Violation]:
        found = []
        for env in _antecedent_matches(instance, self.antecedent,
                                       self.conditions, evaluator):
            if not self._equalities_hold(env):
                facts = tuple(_ground_fact(a, env) for a in self.antecedent)
                universal_env = {v: env[v] for v in self.universal_vars}
                found.append(Violation(self, universal_env, facts))
        return found

    def to_formula(self) -> Formula:
        antecedent = _antecedent_formula(self.antecedent, self.conditions)
        eq_parts: list[Formula] = [Cmp("=", left, right)
                                   for left, right in self.equalities]
        conclusion = eq_parts[0] if len(eq_parts) == 1 else And(*eq_parts)
        implication = Implies(antecedent, conclusion)
        if self.universal_vars:
            return Forall(sorted(self.universal_vars,
                                 key=lambda v: v.name), implication)
        return implication

    def __str__(self) -> str:
        return f"{self.name}: {self.to_formula()}"

    def __repr__(self) -> str:
        return f"EqualityGeneratingConstraint({self.name!r})"


class FunctionalDependency(EqualityGeneratingConstraint):
    """``relation: lhs_positions -> rhs_positions``.

    ``FunctionalDependency("R1", [0], [1], arity=2)`` is the local FD of
    Section 3.2: ``∀xyz (R1(x,y) ∧ R1(x,z) → y = z)``.
    """

    def __init__(self, relation: str, lhs: Sequence[int],
                 rhs: Sequence[int], arity: int,
                 name: Optional[str] = None) -> None:
        lhs = tuple(lhs)
        rhs = tuple(rhs)
        if not rhs:
            raise ConstraintError("FD needs at least one determined column")
        if set(lhs) & set(rhs):
            raise ConstraintError("FD lhs and rhs overlap")
        for position in (*lhs, *rhs):
            if not 0 <= position < arity:
                raise ConstraintError(
                    f"position {position} out of range for arity {arity}")
        first: list[Term] = [Variable(f"X{i}") for i in range(arity)]
        second: list[Term] = [Variable(f"Y{i}") for i in range(arity)]
        for position in lhs:
            second[position] = first[position]
        equalities = [(first[p], second[p]) for p in rhs]
        super().__init__(
            antecedent=[RelAtom(relation, first),
                        RelAtom(relation, second)],
            equalities=equalities,
            name=name or f"fd_{relation}_{''.join(map(str, lhs))}_to_"
                         f"{''.join(map(str, rhs))}")
        self.relation_name = relation
        self.lhs = lhs
        self.rhs = rhs
        self.arity = arity


class KeyConstraint(FunctionalDependency):
    """Key: the given positions determine all the others."""

    def __init__(self, relation: str, key_positions: Sequence[int],
                 arity: int, name: Optional[str] = None) -> None:
        key_positions = tuple(key_positions)
        rest = tuple(i for i in range(arity) if i not in key_positions)
        if not rest:
            raise ConstraintError(
                "key covers every column; the constraint is vacuous")
        super().__init__(relation, key_positions, rest, arity,
                         name=name or f"key_{relation}")
        self.key_positions = key_positions


class DenialConstraint(Constraint):
    """``← antecedent ∧ conditions`` — the body must never match."""

    def __init__(self, antecedent: Iterable[object],
                 conditions: Iterable[object] = (),
                 name: Optional[str] = None) -> None:
        self.antecedent = _coerce_atoms(antecedent)
        if not self.antecedent:
            raise ConstraintError("denial needs a non-empty antecedent")
        self.conditions = _coerce_conditions(conditions)
        self.universal_vars = frozenset().union(
            *(a.free_variables() for a in self.antecedent))
        for condition in self.conditions:
            if not condition.free_variables() <= self.universal_vars:
                raise ConstraintError(
                    f"condition {condition} uses non-antecedent variables")
        self.name = name or f"denial_{id(self):x}"

    def relations(self) -> set[str]:
        return {a.relation for a in self.antecedent}

    def holds_in(self, instance: DatabaseInstance, *,
                 evaluator: str = "planner") -> bool:
        return not self.violations(instance, evaluator=evaluator)

    def violations(self, instance: DatabaseInstance, *,
                   evaluator: str = "planner") -> list[Violation]:
        found = []
        for env in _antecedent_matches(instance, self.antecedent,
                                       self.conditions, evaluator):
            facts = tuple(_ground_fact(a, env) for a in self.antecedent)
            universal_env = {v: env[v] for v in self.universal_vars}
            found.append(Violation(self, universal_env, facts))
        return found

    def to_formula(self) -> Formula:
        antecedent = _antecedent_formula(self.antecedent, self.conditions)
        negated = Not(antecedent)
        if self.universal_vars:
            return Forall(sorted(self.universal_vars,
                                 key=lambda v: v.name), negated)
        return negated

    def __str__(self) -> str:
        return f"{self.name}: {self.to_formula()}"

    def __repr__(self) -> str:
        return f"DenialConstraint({self.name!r})"
