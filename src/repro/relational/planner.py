"""Index-driven evaluation planner for first-order queries.

The naive evaluator in :mod:`repro.relational.query` enumerates
``product(domain, repeat=k)`` whenever k variables are unbound, which
makes every mechanism built on it — FO rewriting, repair checking, ASP
grounding — exponential in the free-variable count regardless of the
instance's shape.  This module compiles :class:`~repro.relational.query.
Formula`/:class:`~repro.relational.query.Query` objects into executable
plans that are first-order-*cheap*:

* **selection pushdown** — constants and already-bound variables become
  hash-index lookups (:meth:`DatabaseInstance.rows_matching`), never
  post-hoc filters over full scans;
* **greedy join ordering** — conjunctions are reordered by estimated
  bound-prefix selectivity (relation size over distinct count of the
  best bound column), with fully-bound parts scheduled immediately as
  cheap filters;
* **index-backed atom scans** — each atom yields exactly its matching
  extensions, so no re-verification pass is needed;
* **restricted domain enumeration** — ``product(domain, ...)`` survives
  only for *genuinely range-unrestricted* variables (those occurring
  solely under negation, implication, universal quantification, or
  non-equality comparisons), exactly where active-domain semantics
  requires it.

Semantics are identical to the naive evaluator (active-domain semantics,
including the empty-domain ∃ corner and quantifier shadowing); the
differential suite in ``tests/relational/test_planner_crosscheck.py``
locks the equivalence in over randomized instances and formulas.

Entry points: :class:`QueryPlanner` (reusable across many evaluations of
the same instance; plans are cached per formula and bound-variable set)
and the convenience wrappers :func:`plan_answers`, :func:`plan_holds`,
:func:`plan_bindings`, :func:`explain_plan`.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Optional, Sequence

from ..datalog.terms import Comparison, Constant, Variable
from .errors import QueryError
from .instance import DatabaseInstance
from .query import (
    And,
    Cmp,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    _MISSING,
    _Truth,
    _term_value,
    evaluation_domain,
)

__all__ = ["QueryPlanner", "plan_answers", "plan_holds", "plan_bindings",
           "explain_plan"]

Env = dict

#: cost-model ceiling so estimates never overflow into inf arithmetic.
_COST_CAP = 1e18


def _by_name(variables) -> list[Variable]:
    return sorted(variables, key=lambda v: v.name)


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

class PlanNode:
    """One executable operator.  ``run(env)`` yields exactly the
    extensions of ``env`` (which must bind the compile-time bound set)
    that bind the node's free variables and satisfy its formula."""

    __slots__ = ()

    def run(self, env: Env) -> Iterator[Env]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()


class TruePlan(PlanNode):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def run(self, env: Env) -> Iterator[Env]:
        if self.value:
            yield env

    def describe(self) -> str:
        return "true" if self.value else "false"


class ScanAtom(PlanNode):
    """Index-backed scan of one relation atom: constants and bound
    variables are pushed into the hash-index lookup; the remaining
    columns bind (with repeated-variable consistency checks)."""

    __slots__ = ("planner", "atom", "const_cols", "bound_cols", "var_cols")

    def __init__(self, planner: "QueryPlanner", atom: RelAtom,
                 bound: frozenset) -> None:
        self.planner = planner
        self.atom = atom
        const_cols: list[tuple[int, object]] = []
        bound_cols: list[tuple[int, Variable]] = []
        var_cols: list[tuple[int, Variable]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                const_cols.append((position, term.value))
            elif term in bound:
                bound_cols.append((position, term))
            else:
                var_cols.append((position, term))
        self.const_cols = tuple(const_cols)
        self.bound_cols = tuple(bound_cols)
        self.var_cols = tuple(var_cols)

    def run(self, env: Env) -> Iterator[Env]:
        lookup = dict(self.const_cols)
        for position, variable in self.bound_cols:
            lookup[position] = env[variable]
        rows = self.planner.instance.rows_matching(self.atom.relation,
                                                   lookup)
        if not self.var_cols:
            if rows:  # pure membership check
                yield env
            return
        for row in rows:
            out = dict(env)
            ok = True
            for position, variable in self.var_cols:
                value = row[position]
                current = out.get(variable, _MISSING)
                if current is _MISSING:
                    out[variable] = value
                elif current != value:
                    ok = False
                    break
            if ok:
                yield out

    def describe(self) -> str:
        pushed = len(self.const_cols) + len(self.bound_cols)
        return (f"scan {self.atom} [index on {pushed}/"
                f"{len(self.atom.terms)} columns]")


class FilterPlan(PlanNode):
    """A fully-bound subformula evaluated as a cheap filter."""

    __slots__ = ("planner", "formula")

    def __init__(self, planner: "QueryPlanner", formula: Formula) -> None:
        self.planner = planner
        self.formula = formula

    def run(self, env: Env) -> Iterator[Env]:
        if self.planner.holds(self.formula, env):
            yield env

    def describe(self) -> str:
        return f"filter {self.formula}"


class EqBindPlan(PlanNode):
    """``X = t`` with X unbound and t a constant or bound variable:
    binds directly instead of enumerating the domain."""

    __slots__ = ("variable", "source")

    def __init__(self, variable: Variable, source) -> None:
        self.variable = variable
        self.source = source

    def run(self, env: Env) -> Iterator[Env]:
        out = dict(env)
        out[self.variable] = _term_value(self.source, env)
        yield out

    def describe(self) -> str:
        return f"bind {self.variable.name} = {self.source}"


class EqPairPlan(PlanNode):
    """``X = Y`` with both unbound: one domain pass, not two."""

    __slots__ = ("planner", "left", "right")

    def __init__(self, planner: "QueryPlanner", left: Variable,
                 right: Variable) -> None:
        self.planner = planner
        self.left = left
        self.right = right

    def run(self, env: Env) -> Iterator[Env]:
        for value in self.planner.domain:
            out = dict(env)
            out[self.left] = value
            out[self.right] = value
            yield out

    def describe(self) -> str:
        return f"bind {self.left.name} = {self.right.name} over domain"


class EnumCheckPlan(PlanNode):
    """Last resort for range-unrestricted variables: enumerate the
    active domain and check (exactly where the semantics requires it)."""

    __slots__ = ("planner", "formula", "unbound")

    def __init__(self, planner: "QueryPlanner", formula: Formula,
                 unbound: Sequence[Variable]) -> None:
        self.planner = planner
        self.formula = formula
        self.unbound = tuple(unbound)

    def run(self, env: Env) -> Iterator[Env]:
        for combo in product(self.planner.domain, repeat=len(self.unbound)):
            out = dict(env)
            out.update(zip(self.unbound, combo))
            if self.planner.holds(self.formula, out):
                yield out

    def describe(self) -> str:
        names = ", ".join(v.name for v in self.unbound)
        return f"enumerate domain for {{{names}}} check {self.formula}"


class AndPlan(PlanNode):
    """Pipelined join over the greedily ordered conjuncts."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[PlanNode]) -> None:
        self.steps = tuple(steps)

    def run(self, env: Env) -> Iterator[Env]:
        steps = self.steps

        def recurse(position: int, current: Env) -> Iterator[Env]:
            if position == len(steps):
                yield current
                return
            for extension in steps[position].run(current):
                yield from recurse(position + 1, extension)

        return recurse(0, env)

    def describe(self) -> str:
        return f"join [{len(self.steps)} steps]"

    def children(self) -> tuple[PlanNode, ...]:
        return self.steps


class OrPlan(PlanNode):
    """Deduplicated union; branches binding fewer variables complete
    the missing ones over the domain (active-domain semantics)."""

    __slots__ = ("planner", "branches", "key_vars")

    def __init__(self, planner: "QueryPlanner", formula: Or,
                 bound: frozenset) -> None:
        self.planner = planner
        free = formula.free_variables()
        self.key_vars = tuple(_by_name(free - bound))
        branches = []
        for part in formula.parts:
            missing = tuple(_by_name((free - part.free_variables())
                                     - bound))
            branches.append((planner.plan(part, bound), missing))
        self.branches = tuple(branches)

    def run(self, env: Env) -> Iterator[Env]:
        seen: set[tuple] = set()
        domain = self.planner.domain
        for subplan, missing in self.branches:
            for extension in subplan.run(env):
                if missing:
                    for combo in product(domain, repeat=len(missing)):
                        full = dict(extension)
                        full.update(zip(missing, combo))
                        key = tuple(full[v] for v in self.key_vars)
                        if key not in seen:
                            seen.add(key)
                            yield full
                else:
                    key = tuple(extension[v] for v in self.key_vars)
                    if key not in seen:
                        seen.add(key)
                        yield extension

    def describe(self) -> str:
        return f"union [{len(self.branches)} branches, deduplicated]"

    def children(self) -> tuple[PlanNode, ...]:
        return tuple(plan for plan, _ in self.branches)


class ExistsPlan(PlanNode):
    """Evaluate the body (with shadowing), project the quantified
    variables out, deduplicate the projections."""

    __slots__ = ("planner", "formula", "subplan", "key_vars")

    def __init__(self, planner: "QueryPlanner", formula: Exists,
                 bound: frozenset) -> None:
        self.planner = planner
        self.formula = formula
        inner_bound = frozenset(bound - set(formula.variables))
        self.subplan = planner.plan(formula.sub, inner_bound)
        self.key_vars = tuple(_by_name(formula.free_variables() - bound))

    def run(self, env: Env) -> Iterator[Env]:
        if not self.planner.domain:
            # no witness value exists, even when the body ignores the
            # quantified variables (matches the naive evaluator)
            return
        quantified = set(self.formula.variables)
        shadowed = {v: env[v] for v in quantified if v in env}
        inner = {k: v for k, v in env.items() if k not in quantified}
        seen: set[tuple] = set()
        for extension in self.subplan.run(inner):
            out = {k: v for k, v in extension.items()
                   if k not in quantified}
            out.update(shadowed)
            key = tuple(out[v] for v in self.key_vars)
            if key not in seen:
                seen.add(key)
                yield out

    def describe(self) -> str:
        names = ", ".join(v.name for v in self.formula.variables)
        return f"project out {{{names}}} (exists, deduplicated)"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.subplan,)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

class QueryPlanner:
    """Compiles formulas into index-backed plans over one instance.

    Reuse one planner for many evaluations against the same instance:
    compiled plans are cached per ``(formula, bound-variable set)``, and
    every atom scan shares the instance's lazily-built hash indexes.

    ``domain`` is the evaluation domain (active domain plus the
    constants of the formulas to be evaluated); it must cover every
    constant of every formula handed to this planner — use
    :func:`repro.relational.query.evaluation_domain`.
    """

    __slots__ = ("instance", "domain", "_plans")

    def __init__(self, instance: DatabaseInstance, domain: tuple) -> None:
        self.instance = instance
        self.domain = tuple(domain)
        self._plans: dict[tuple[Formula, frozenset], PlanNode] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def plan(self, formula: Formula, bound: frozenset) -> PlanNode:
        key = (formula, bound)
        cached = self._plans.get(key)
        if cached is None:
            cached = self._compile(formula, bound)
            self._plans[key] = cached
        return cached

    def _compile(self, formula: Formula, bound: frozenset) -> PlanNode:
        if isinstance(formula, _Truth):
            return TruePlan(formula.value)
        if isinstance(formula, RelAtom):
            return ScanAtom(self, formula, bound)
        if isinstance(formula, Cmp):
            return self._compile_cmp(formula, bound)
        if isinstance(formula, And):
            return self._compile_and(formula, bound)
        if isinstance(formula, Or):
            return OrPlan(self, formula, bound)
        if isinstance(formula, Exists):
            return ExistsPlan(self, formula, bound)
        if isinstance(formula, (Not, Implies, Forall)):
            unbound = _by_name(formula.free_variables() - bound)
            if not unbound:
                return FilterPlan(self, formula)
            return EnumCheckPlan(self, formula, unbound)
        raise QueryError(f"cannot plan {formula!r}")

    def _compile_cmp(self, formula: Cmp, bound: frozenset) -> PlanNode:
        unbound = formula.free_variables() - bound
        if not unbound:
            return FilterPlan(self, formula)
        comparison = formula.comparison
        left, right = comparison.left, comparison.right
        if comparison.op == "=":
            if isinstance(left, Variable) and left in unbound:
                if isinstance(right, Constant) or (
                        isinstance(right, Variable) and right in bound):
                    return EqBindPlan(left, right)
            if isinstance(right, Variable) and right in unbound:
                if isinstance(left, Constant) or (
                        isinstance(left, Variable) and left in bound):
                    return EqBindPlan(right, left)
            if isinstance(left, Variable) and isinstance(right, Variable) \
                    and left in unbound and right in unbound \
                    and left != right:
                return EqPairPlan(self, left, right)
        return EnumCheckPlan(self, formula, _by_name(unbound))

    def _compile_and(self, formula: And, bound: frozenset) -> PlanNode:
        remaining = list(formula.parts)
        bound_now = set(bound)
        steps: list[PlanNode] = []
        while remaining:
            chosen = None
            for part in remaining:  # fully-bound parts filter first
                if part.free_variables() <= bound_now:
                    chosen = part
                    break
            if chosen is None:
                best_cost = None
                for part in remaining:  # cheapest binder next
                    cost = self.estimate(part, bound_now)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        chosen = part
            remaining.remove(chosen)
            steps.append(self.plan(chosen, frozenset(bound_now)))
            bound_now |= chosen.free_variables()
        return steps[0] if len(steps) == 1 else AndPlan(steps)

    # ------------------------------------------------------------------
    # Cost model (bound-prefix selectivity, uniformity assumption)
    # ------------------------------------------------------------------
    def estimate(self, formula: Formula, bound: set) -> float:
        """Rough output-cardinality estimate driving the join order."""
        if isinstance(formula, _Truth):
            return 1.0
        if isinstance(formula, RelAtom):
            index = self.instance.index(formula.relation)
            positions = [position
                         for position, term in enumerate(formula.terms)
                         if isinstance(term, Constant) or term in bound]
            return index.estimate(positions)
        if isinstance(formula, Cmp):
            unbound = formula.free_variables() - bound
            if not unbound:
                return 1.0
            if formula.op == "=" and len(unbound) >= 1:
                # at least one side bindable or a single domain pass
                return float(len(self.domain))
            return min(float(len(self.domain)) ** len(unbound), _COST_CAP)
        if isinstance(formula, And):
            total = 1.0
            bound_now = set(bound)
            for part in formula.parts:
                total *= max(1.0, self.estimate(part, bound_now))
                bound_now |= part.free_variables()
                if total > _COST_CAP:
                    return _COST_CAP
            return total
        if isinstance(formula, Or):
            free = formula.free_variables()
            total = 0.0
            for part in formula.parts:
                missing = (free - part.free_variables()) - bound
                branch = self.estimate(part, bound) \
                    * float(len(self.domain)) ** len(missing)
                total += branch
                if total > _COST_CAP:
                    return _COST_CAP
            return total
        if isinstance(formula, Exists):
            return self.estimate(formula.sub,
                                 bound - set(formula.variables))
        # Not / Implies / Forall: checkers over their unbound variables
        unbound = formula.free_variables() - bound
        return min(float(len(self.domain)) ** len(unbound), _COST_CAP)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def bindings(self, formula: Formula, env: Env) -> Iterator[Env]:
        """Exactly the satisfying extensions of ``env`` binding all free
        variables of ``formula`` (no duplicates, no partials)."""
        return self.plan(formula, frozenset(env)).run(dict(env))

    def holds(self, formula: Formula, env: Env) -> bool:
        """Truth of ``formula`` under ``env`` (must bind all free
        variables); quantifiers go through compiled plans."""
        if isinstance(formula, _Truth):
            return formula.value
        if isinstance(formula, RelAtom):
            row = tuple(_term_value(t, env) for t in formula.terms)
            return row in self.instance.tuples(formula.relation)
        if isinstance(formula, Cmp):
            comparison = formula.comparison
            return Comparison(comparison.op,
                              Constant(_term_value(comparison.left, env)),
                              Constant(_term_value(comparison.right, env))
                              ).evaluate()
        if isinstance(formula, And):
            return all(self.holds(p, env) for p in formula.parts)
        if isinstance(formula, Or):
            return any(self.holds(p, env) for p in formula.parts)
        if isinstance(formula, Not):
            return not self.holds(formula.sub, env)
        if isinstance(formula, Implies):
            return (not self.holds(formula.premise, env)
                    or self.holds(formula.conclusion, env))
        if isinstance(formula, Exists):
            if not self.domain:
                return False
            inner = {k: v for k, v in env.items()
                     if k not in formula.variables}
            subplan = self.plan(formula.sub, frozenset(inner))
            for _ in subplan.run(inner):
                return True
            return False
        if isinstance(formula, Forall):
            return self._forall_holds(formula, env)
        raise QueryError(f"cannot evaluate {formula!r}")

    def _forall_holds(self, formula: Forall, env: Env) -> bool:
        """Guarded ∀x̄ (ψ → χ): enumerate ψ's (index-backed) matches and
        check χ; only quantified variables absent from ψ fall back to
        domain enumeration.  Unguarded bodies enumerate the domain."""
        outer = {k: v for k, v in env.items()
                 if k not in formula.variables}  # shadowing
        sub = formula.sub
        if isinstance(sub, Implies):
            premise_plan = self.plan(sub.premise, frozenset(outer))
            for match in premise_plan.run(outer):
                missing = [v for v in formula.variables if v not in match]
                if missing:
                    for combo in product(self.domain,
                                         repeat=len(missing)):
                        inner = dict(match)
                        inner.update(zip(missing, combo))
                        if not self.holds(sub.conclusion, inner):
                            return False
                elif not self.holds(sub.conclusion, match):
                    return False
            return True
        for combo in product(self.domain, repeat=len(formula.variables)):
            inner = dict(outer)
            inner.update(zip(formula.variables, combo))
            if not self.holds(sub, inner):
                return False
        return True

    # ------------------------------------------------------------------
    def answers(self, query: Query) -> set[tuple]:
        """All answer tuples of ``query`` (active-domain semantics)."""
        formula = query.formula
        free = formula.free_variables()
        extra = [v for v in query.head if v not in free]
        plan = self.plan(formula, frozenset())
        results: set[tuple] = set()
        for env in plan.run({}):
            if extra:
                for combo in product(self.domain, repeat=len(extra)):
                    full = dict(env)
                    full.update(zip(extra, combo))
                    results.add(tuple(full[v] for v in query.head))
            else:
                results.add(tuple(env[v] for v in query.head))
        return results

    def explain(self, formula: Formula,
                bound: frozenset = frozenset()) -> str:
        """Human-readable plan tree (for debugging and tests)."""
        lines: list[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children():
                walk(child, depth + 1)

        walk(self.plan(formula, bound), 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------

def _make_planner(instance: DatabaseInstance, formula: Formula,
                  domain: Optional[tuple]) -> QueryPlanner:
    if domain is None:
        domain = evaluation_domain(instance, formula)
    return QueryPlanner(instance, domain)


def plan_answers(query: Query, instance: DatabaseInstance,
                 domain: Optional[tuple] = None) -> set[tuple]:
    """Indexed-planner equivalent of :meth:`Query.answers`."""
    return _make_planner(instance, query.formula, domain).answers(query)


def plan_holds(formula: Formula, instance: DatabaseInstance, env: Env,
               domain: Optional[tuple] = None) -> bool:
    """Indexed-planner equivalent of :func:`repro.relational.query.holds`."""
    return _make_planner(instance, formula, domain).holds(formula, env)


def plan_bindings(formula: Formula, instance: DatabaseInstance, env: Env,
                  domain: Optional[tuple] = None) -> Iterator[Env]:
    """Indexed-planner equivalent of
    :func:`repro.relational.query.bindings` — but exact: complete,
    duplicate-free satisfying extensions."""
    return _make_planner(instance, formula, domain).bindings(formula, env)


def explain_plan(query: Query, instance: DatabaseInstance,
                 domain: Optional[tuple] = None) -> str:
    """The compiled plan for ``query`` as an indented tree."""
    return _make_planner(instance, query.formula,
                         domain).explain(query.formula)
