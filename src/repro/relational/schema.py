"""Relation and database schemas (Definition 2 of the paper).

A :class:`RelationSchema` is a named relation with a fixed arity and
optional attribute names.  A :class:`DatabaseSchema` is a collection of
relation schemas — one per peer in the P2P setting, where the paper assumes
the per-peer schemas are *disjoint* (shared domain aside).  The
:meth:`DatabaseSchema.disjoint_union` constructor enforces exactly that
assumption and builds the global schema ``R`` of Definition 2.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from .errors import SchemaError

__all__ = ["RelationSchema", "DatabaseSchema"]


class RelationSchema:
    """A relation name with arity and optional attribute names.

    Attribute names default to ``a0, a1, ...`` and are used only for
    display and for naming positions in constraints (positions themselves
    are integers throughout the library).
    """

    __slots__ = ("name", "arity", "attributes")

    def __init__(self, name: str, arity: int,
                 attributes: Optional[Sequence[str]] = None) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if arity < 0:
            raise SchemaError(f"negative arity for relation {name!r}")
        if attributes is None:
            attributes = tuple(f"a{i}" for i in range(arity))
        else:
            attributes = tuple(attributes)
            if len(attributes) != arity:
                raise SchemaError(
                    f"relation {name!r}: {len(attributes)} attribute names "
                    f"for arity {arity}")
            if len(set(attributes)) != arity:
                raise SchemaError(
                    f"relation {name!r}: duplicate attribute names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(self, "attributes", attributes)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelationSchema is immutable")

    def position_of(self, attribute: str) -> int:
        """Index of a named attribute; raises :class:`SchemaError`."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RelationSchema)
                and self.name == other.name and self.arity == other.arity
                and self.attributes == other.attributes)

    def __hash__(self) -> int:
        return hash((self.name, self.arity, self.attributes))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """An immutable mapping of relation names to :class:`RelationSchema`.

    Plays the role of ``R(P)`` for a single peer, and — via
    :meth:`disjoint_union` — of the global schema ``R`` and the extended
    schema ``R̄(P)`` of Definition 3(a).
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        by_name: dict[str, RelationSchema] = {}
        for relation in relations:
            if not isinstance(relation, RelationSchema):
                raise SchemaError(
                    f"expected RelationSchema, got {relation!r}")
            if relation.name in by_name:
                raise SchemaError(
                    f"duplicate relation name {relation.name!r}")
            by_name[relation.name] = relation
        object.__setattr__(self, "_relations", by_name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DatabaseSchema is immutable")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def disjoint_union(self, *others: "DatabaseSchema") -> "DatabaseSchema":
        """Union of schemas that must not share relation names.

        This mirrors the paper's standing assumption "the schemata R(P)
        are disjoint" (Definition 2(b)).
        """
        relations: list[RelationSchema] = list(self)
        seen = set(self.names)
        for other in others:
            for relation in other:
                if relation.name in seen:
                    raise SchemaError(
                        f"peer schemas are not disjoint: relation "
                        f"{relation.name!r} appears twice")
                seen.add(relation.name)
                relations.append(relation)
        return DatabaseSchema(relations)

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """Subschema with only the named relations (must exist)."""
        return DatabaseSchema(self.relation(name) for name in names)

    def is_subschema_of(self, other: "DatabaseSchema") -> bool:
        return all(name in other
                   and other.relation(name) == self.relation(name)
                   for name in self.names)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DatabaseSchema)
                and self._relations == other._relations)

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.values()))

    def __repr__(self) -> str:
        return f"DatabaseSchema({sorted(self._relations)})"

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self) + "}"

    @staticmethod
    def of(spec: Mapping[str, int]) -> "DatabaseSchema":
        """Shorthand: ``DatabaseSchema.of({"R1": 2, "R2": 2})``."""
        return DatabaseSchema(RelationSchema(name, arity)
                              for name, arity in spec.items())
