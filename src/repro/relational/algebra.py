"""A small named-column relational algebra.

This is the classical select/project/join/union/difference/rename algebra
over set-semantics relations.  The FO query evaluator in
:mod:`repro.relational.query` does not need it (it evaluates formulas
directly), but the algebra is the natural target for the *safe-range*
fragment and is used by the FO-rewriting baseline benchmarks to execute
rewritten unions of conjunctive queries fast.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from .errors import QueryError
from .instance import DatabaseInstance

__all__ = ["NamedRelation", "from_instance"]


class NamedRelation:
    """An immutable set of rows with named columns."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str],
                 rows: Iterable[tuple] = ()) -> None:
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate column names: {columns}")
        frozen = frozenset(tuple(r) for r in rows)
        for row in frozen:
            if len(row) != len(columns):
                raise QueryError(
                    f"row {row} does not match columns {columns}")
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "rows", frozen)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("NamedRelation is immutable")

    # ------------------------------------------------------------------
    def _index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise QueryError(f"no column {column!r} in {self.columns}") \
                from None

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other) -> bool:
        return (isinstance(other, NamedRelation)
                and self.columns == other.columns
                and self.rows == other.rows)

    def __hash__(self) -> int:
        return hash((self.columns, self.rows))

    def __repr__(self) -> str:
        return f"NamedRelation({self.columns}, {len(self.rows)} rows)"

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[Mapping[str, object]], bool]
               ) -> "NamedRelation":
        """σ: keep rows satisfying ``predicate`` (given as a dict view)."""
        kept = [row for row in self.rows
                if predicate(dict(zip(self.columns, row)))]
        return NamedRelation(self.columns, kept)

    def select_eq(self, column: str, value: object) -> "NamedRelation":
        """σ_{column = value}."""
        index = self._index(column)
        return NamedRelation(self.columns,
                             [r for r in self.rows if r[index] == value])

    def project(self, columns: Sequence[str]) -> "NamedRelation":
        """π: keep (and reorder to) the named columns."""
        indexes = [self._index(c) for c in columns]
        return NamedRelation(columns,
                             {tuple(r[i] for i in indexes)
                              for r in self.rows})

    def rename(self, mapping: Mapping[str, str]) -> "NamedRelation":
        """ρ: rename columns."""
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        return NamedRelation(new_columns, self.rows)

    def natural_join(self, other: "NamedRelation") -> "NamedRelation":
        """⋈ on shared column names (hash join)."""
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in shared]
        result_columns = tuple(self.columns) + tuple(other_only)
        left_idx = [self._index(c) for c in shared]
        right_idx = [other._index(c) for c in shared]
        other_only_idx = [other._index(c) for c in other_only]
        # build hash index on the smaller side
        index: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_idx)
            index.setdefault(key, []).append(row)
        joined = set()
        for row in self.rows:
            key = tuple(row[i] for i in left_idx)
            for match in index.get(key, ()):
                joined.add(row + tuple(match[i] for i in other_only_idx))
        return NamedRelation(result_columns, joined)

    def union(self, other: "NamedRelation") -> "NamedRelation":
        """∪ (requires identical column lists)."""
        if self.columns != other.columns:
            raise QueryError(
                f"union of incompatible columns {self.columns} vs "
                f"{other.columns}")
        return NamedRelation(self.columns, self.rows | other.rows)

    def difference(self, other: "NamedRelation") -> "NamedRelation":
        """∖ (requires identical column lists)."""
        if self.columns != other.columns:
            raise QueryError(
                f"difference of incompatible columns {self.columns} vs "
                f"{other.columns}")
        return NamedRelation(self.columns, self.rows - other.rows)

    def cross(self, other: "NamedRelation") -> "NamedRelation":
        """× (column lists must be disjoint)."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise QueryError(f"cross product shares columns {overlap}")
        rows = {left + right for left in self.rows for right in other.rows}
        return NamedRelation(self.columns + other.columns, rows)

    def semijoin(self, other: "NamedRelation") -> "NamedRelation":
        """⋉: rows of self with a join partner in other."""
        shared = [c for c in self.columns if c in other.columns]
        right_keys = {tuple(row[other._index(c)] for c in shared)
                      for row in other.rows}
        left_idx = [self._index(c) for c in shared]
        return NamedRelation(
            self.columns,
            [r for r in self.rows
             if tuple(r[i] for i in left_idx) in right_keys])

    def antijoin(self, other: "NamedRelation") -> "NamedRelation":
        """▷: rows of self with no join partner in other."""
        shared = [c for c in self.columns if c in other.columns]
        right_keys = {tuple(row[other._index(c)] for c in shared)
                      for row in other.rows}
        left_idx = [self._index(c) for c in shared]
        return NamedRelation(
            self.columns,
            [r for r in self.rows
             if tuple(r[i] for i in left_idx) not in right_keys])


def from_instance(instance: DatabaseInstance, relation: str,
                  columns: Optional[Sequence[str]] = None,
                  where: Optional[Mapping[str, object]] = None
                  ) -> NamedRelation:
    """Wrap one relation of an instance as a :class:`NamedRelation`.

    ``where`` (column name -> value) pushes equality selections down
    into the instance's hash-index layer, so the relation is built from
    exactly the matching tuples instead of a full scan followed by
    :meth:`NamedRelation.select_eq`.
    """
    schema = instance.schema.relation(relation)
    if columns is None:
        columns = schema.attributes
    if len(columns) != schema.arity:
        raise QueryError(
            f"{len(columns)} column names for arity {schema.arity}")
    if not where:
        return NamedRelation(columns, instance.tuples(relation))
    columns = tuple(columns)
    bound: dict[int, object] = {}
    for name, value in where.items():
        try:
            bound[columns.index(name)] = value
        except ValueError:
            raise QueryError(
                f"no column {name!r} in {columns}") from None
    return NamedRelation(columns, instance.rows_matching(relation, bound))
