"""Database instances, Σ(r), the distance Δ, and the ≤_r order.

Implements Definition 1 of the paper:

* ``Σ(r)`` — the set of ground atomic facts of an instance;
* ``Δ(r1, r2)`` — the symmetric difference ``(Σ(r1)∖Σ(r2)) ∪ (Σ(r2)∖Σ(r1))``;
* ``r1 ≤_r r2``  iff  ``Δ(r, r1) ⊆ Δ(r, r2)``.

Instances are immutable: mutation-style methods return new instances, which
keeps repair search and solution enumeration free of aliasing bugs.

Each instance also carries lazily-built per-relation/per-column hash
indexes (:class:`~repro.relational.indexes.TupleIndex`) behind
:meth:`DatabaseInstance.rows_matching` — the entry point of the indexed
evaluation planner.  Functional updates (:meth:`with_facts`,
:meth:`without_facts`) maintain the already-built indexes *incrementally*
instead of rebuilding them, and relations untouched by an update share
their index object with the parent instance (safe: identical row sets,
and lazy column builds are deterministic).

Fact storage itself lives one layer down, in
:class:`~repro.storage.tables.FactTable` — an immutable
relation→rows mapping shared with the versioned
:class:`~repro.storage.base.FactStore` backends.  The instance is the
schema-validating, index-carrying view over one such table, and its
:meth:`fingerprint` (the table's content hash) is the restart-stable
version token the storage and network layers key on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

from ..storage.tables import FactTable
from .errors import InstanceError
from .indexes import TupleIndex
from .schema import DatabaseSchema

__all__ = ["Fact", "DatabaseInstance"]


class Fact:
    """A ground database atom ``relation(values...)``.

    ``values`` are raw Python scalars (str/int) — the relational layer does
    not wrap them in logic terms; conversion happens at the Datalog border.
    """

    __slots__ = ("relation", "values", "_hash")

    def __init__(self, relation: str, values: Iterable[object]) -> None:
        values = tuple(values)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_hash", hash((relation, values)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Fact is immutable")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Fact) and self.relation == other.relation
                and self.values == other.values)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Fact({self.relation!r}, {self.values!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.relation}({inner})"

    def __lt__(self, other: "Fact") -> bool:
        return (self.relation, _sort_key(self.values)) < \
            (other.relation, _sort_key(other.values))


def _sort_key(values: tuple) -> tuple:
    return tuple((0, v) if isinstance(v, int) else (1, str(v))
                 for v in values)


class DatabaseInstance:
    """An immutable instance: relation name -> frozenset of value tuples.

    The schema is carried along and enforced (arity checks on
    construction).  Relations present in the schema but without tuples are
    empty, not missing.
    """

    __slots__ = ("schema", "_data", "_hash", "_indexes", "_adom")

    def __init__(self, schema: DatabaseSchema,
                 data: Optional[Mapping[str, Iterable[tuple]]] = None
                 ) -> None:
        table: dict[str, frozenset] = {name: frozenset()
                                       for name in schema.names}
        if data:
            for name, rows in data.items():
                if name not in schema:
                    raise InstanceError(
                        f"relation {name!r} not in schema")
                arity = schema.arity(name)
                frozen = frozenset(tuple(row) for row in rows)
                for row in frozen:
                    if len(row) != arity:
                        raise InstanceError(
                            f"tuple {row} has arity {len(row)}, relation "
                            f"{name!r} expects {arity}")
                table[name] = frozen
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "_data", FactTable(table))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_indexes", {})
        object.__setattr__(self, "_adom", None)

    @classmethod
    def _derived(cls, schema: DatabaseSchema,
                 data: Union[FactTable, dict[str, frozenset]],
                 indexes: dict[str, TupleIndex]) -> "DatabaseInstance":
        """Internal constructor for functional updates: rows come from an
        already-validated instance, so arity checks are skipped and the
        (incrementally maintained) indexes are carried over."""
        if not isinstance(data, FactTable):
            data = FactTable(data)
        instance = object.__new__(cls)
        object.__setattr__(instance, "schema", schema)
        object.__setattr__(instance, "_data", data)
        object.__setattr__(instance, "_hash", None)
        object.__setattr__(instance, "_indexes", indexes)
        object.__setattr__(instance, "_adom", None)
        return instance

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DatabaseInstance is immutable")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def tuples(self, relation: str) -> frozenset:
        try:
            return self._data[relation]
        except KeyError:
            raise InstanceError(f"unknown relation {relation!r}") from None

    def __contains__(self, fact: Fact) -> bool:
        rows = self._data.get(fact.relation)
        return rows is not None and fact.values in rows

    def relations(self) -> tuple[str, ...]:
        return tuple(self._data)

    def facts(self) -> set[Fact]:
        """Σ(r): the set of ground atomic facts (Definition 1)."""
        return {Fact(name, row)
                for name, rows in self._data.items() for row in rows}

    def size(self) -> int:
        return self._data.size()

    def is_empty(self) -> bool:
        return self.size() == 0

    def fact_table(self) -> FactTable:
        """The underlying immutable fact storage (shared, never copied)."""
        return self._data

    def fingerprint(self) -> str:
        """The restart-stable content hash of the stored facts.

        Deterministic across processes (unlike ``hash``), cached on the
        shared :class:`~repro.storage.tables.FactTable` — this is the
        version token the storage layer and the peer runtime exchange.
        """
        return self._data.fingerprint()

    def active_domain(self) -> set:
        """All values occurring anywhere in the instance (cached)."""
        cached = self._adom
        if cached is None:
            domain: set = set()
            for rows in self._data.values():
                for row in rows:
                    domain.update(row)
            cached = frozenset(domain)
            object.__setattr__(self, "_adom", cached)
        return set(cached)

    # ------------------------------------------------------------------
    # Index layer
    # ------------------------------------------------------------------
    def index(self, relation: str) -> TupleIndex:
        """The (lazily built, cached) tuple index for one relation."""
        cached = self._indexes.get(relation)
        if cached is None:
            rows = self._data.get(relation)
            if rows is None:
                raise InstanceError(f"unknown relation {relation!r}")
            cached = self._indexes[relation] = TupleIndex(rows)
        return cached

    def rows_matching(self, relation: str,
                      bound: Mapping[int, object]) -> list[tuple]:
        """Exactly the tuples of ``relation`` agreeing with the bound
        columns (``position -> value``), via the hash-index layer."""
        return self.index(relation).matching(bound)

    # ------------------------------------------------------------------
    # Definition 1: distance and order
    # ------------------------------------------------------------------
    def delta(self, other: "DatabaseInstance") -> set[Fact]:
        """Δ(self, other): symmetric difference of fact sets."""
        return self.facts() ^ other.facts()

    def insertions_from(self, base: "DatabaseInstance") -> set[Fact]:
        """Facts of ``self`` missing from ``base`` (Σ(self) ∖ Σ(base))."""
        return self.facts() - base.facts()

    def deletions_from(self, base: "DatabaseInstance") -> set[Fact]:
        """Facts of ``base`` missing from ``self``."""
        return base.facts() - self.facts()

    @staticmethod
    def closer_or_equal(origin: "DatabaseInstance",
                        first: "DatabaseInstance",
                        second: "DatabaseInstance") -> bool:
        """``first ≤_origin second``: Δ(origin, first) ⊆ Δ(origin, second)."""
        return origin.delta(first) <= origin.delta(second)

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def _derive_indexes(self, touched: Mapping[str, frozenset]
                        ) -> dict[str, TupleIndex]:
        """Carry built indexes into a derived instance: untouched
        relations share the index object; touched relations get an
        incrementally updated copy (only if already built)."""
        indexes: dict[str, TupleIndex] = {}
        for name, idx in self._indexes.items():
            new_rows = touched.get(name)
            if new_rows is None:
                indexes[name] = idx
                continue
            clone = idx.copy()
            clone.apply_delta(insertions=new_rows - self._data[name],
                              deletions=self._data[name] - new_rows)
            indexes[name] = clone
        return indexes

    def with_facts(self, facts: Iterable[Fact]) -> "DatabaseInstance":
        """New instance with ``facts`` added."""
        additions: dict[str, set] = {}
        for fact in facts:
            additions.setdefault(fact.relation, set()).add(fact.values)
        if not additions:
            return self
        schema = self.schema
        for name, rows in additions.items():
            if name not in self._data:
                raise InstanceError(f"unknown relation {name!r}")
            arity = schema.arity(name)
            for row in rows:
                if len(row) != arity:
                    raise InstanceError(
                        f"tuple {row} has arity {len(row)}, relation "
                        f"{name!r} expects {arity}")
        touched = {name: self._data[name] | frozenset(rows)
                   for name, rows in additions.items()}
        data = dict(self._data)
        data.update(touched)
        return DatabaseInstance._derived(schema, data,
                                         self._derive_indexes(touched))

    def without_facts(self, facts: Iterable[Fact]) -> "DatabaseInstance":
        """New instance with ``facts`` removed (absent facts are ignored)."""
        removals: dict[str, set] = {}
        for fact in facts:
            removals.setdefault(fact.relation, set()).add(fact.values)
        if not removals:
            return self
        touched = {name: self._data[name] - removals[name]
                   for name in removals if name in self._data}
        data = dict(self._data)
        data.update(touched)
        return DatabaseInstance._derived(self.schema, data,
                                         self._derive_indexes(touched))

    def apply_change(self, insertions: Iterable[Fact],
                     deletions: Iterable[Fact]) -> "DatabaseInstance":
        return self.with_facts(insertions).without_facts(deletions)

    # ------------------------------------------------------------------
    # Restriction and combination (Definition 3)
    # ------------------------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "DatabaseInstance":
        """r|S': restriction to a subschema (Definition 3(c))."""
        names = list(names)
        sub_schema = self.schema.restrict(names)
        data = {name: self._data[name] for name in names}
        indexes = {name: idx for name, idx in self._indexes.items()
                   if name in data}
        return DatabaseInstance._derived(sub_schema, data, indexes)

    def combine(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Union of instances over disjoint schemas (Definition 3(b))."""
        schema = self.schema.disjoint_union(other.schema)
        data = dict(self._data)
        data.update(other._data)
        indexes = dict(self._indexes)
        indexes.update(other._indexes)
        return DatabaseInstance._derived(schema, data, indexes)

    def replace_relations(self, replacement: Mapping[str, Iterable[tuple]]
                          ) -> "DatabaseInstance":
        """New instance with whole relations swapped out."""
        data = dict(self._data)
        for name, rows in replacement.items():
            if name not in data:
                raise InstanceError(f"unknown relation {name!r}")
            arity = self.schema.arity(name)
            frozen = frozenset(tuple(row) for row in rows)
            for row in frozen:
                if len(row) != arity:
                    raise InstanceError(
                        f"tuple {row} has arity {len(row)}, relation "
                        f"{name!r} expects {arity}")
            data[name] = frozen
        indexes = {name: idx for name, idx in self._indexes.items()
                   if name not in replacement}
        return DatabaseInstance._derived(self.schema, data, indexes)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DatabaseInstance)
                and self.schema == other.schema
                and self._data == other._data)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.schema,
                           frozenset(self._data.items())))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"DatabaseInstance({self.size()} tuples)"

    def __str__(self) -> str:
        parts = []
        for name in sorted(self._data):
            for row in sorted(self._data[name], key=_sort_key):
                parts.append(str(Fact(name, row)))
        return "{" + ", ".join(parts) + "}"

    def sorted_facts(self) -> list[Fact]:
        """All facts in a stable display order."""
        return sorted(self.facts())

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.sorted_facts())
