"""Fluent construction of P2P systems: :class:`SystemBuilder`.

Examples, the JSON loader (:mod:`repro.core.io`), and the workload
generators all assemble the same ingredients — peers with schemas and
instances, exchange constraints, trust edges — so they share one builder::

    system = (PeerSystem.builder()
              .peer("P1", {"R1": 2}, instance={"R1": [("a", "b")]})
              .peer("P2", {"R2": 2}, instance={"R2": [("c", "d")]})
              .exchange("P1", "P2",
                        InclusionDependency("R2", "R1", child_arity=2,
                                            parent_arity=2))
              .trust("P1", "less", "P2")
              .build())

Schemas may be :class:`~repro.relational.schema.DatabaseSchema` objects or
plain ``{relation: arity}`` mappings; constraints may be
:class:`~repro.relational.constraints.Constraint` objects or the JSON
dictionary form of :func:`repro.core.io.constraint_from_dict`.  ``build``
hands everything to :class:`~repro.core.system.PeerSystem`, which performs
the full Definition-2 validation.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from ..relational.constraints import Constraint
from ..relational.instance import DatabaseInstance
from ..relational.schema import DatabaseSchema
from .errors import SystemError_
from .system import DataExchange, Peer, PeerSystem
from .trust import TrustLevel, TrustRelation, _coerce_level

__all__ = ["SystemBuilder"]

SchemaLike = Union[DatabaseSchema, Mapping[str, int]]
ConstraintLike = Union[Constraint, Mapping]


def _coerce_schema(schema: SchemaLike) -> DatabaseSchema:
    if isinstance(schema, DatabaseSchema):
        return schema
    return DatabaseSchema.of(schema)


def _coerce_constraint(constraint: ConstraintLike) -> Constraint:
    if isinstance(constraint, Constraint):
        return constraint
    if isinstance(constraint, Mapping):
        from .io import constraint_from_dict
        return constraint_from_dict(constraint)
    raise SystemError_(
        f"expected a Constraint or its dictionary form, "
        f"got {type(constraint).__name__}")


class SystemBuilder:
    """Accumulates peers, exchanges, and trust; ``build()`` validates.

    Obtain one via :meth:`PeerSystem.builder()
    <repro.core.system.PeerSystem.builder>`.  Every mutator returns
    ``self`` for chaining; :meth:`build` may be called repeatedly (each
    call constructs a fresh, independently versioned system).
    """

    def __init__(self) -> None:
        self._peers: dict[str, Peer] = {}
        self._instances: dict[str, DatabaseInstance] = {}
        self._exchanges: list[DataExchange] = []
        self._trust: list[tuple[str, str, str]] = []
        self._enforce_local_ics = True

    # ------------------------------------------------------------------
    def peer(self, name: str, schema: SchemaLike, *,
             instance: Optional[Mapping[str, Iterable[tuple]]] = None,
             local_ics: Iterable[ConstraintLike] = ()) -> "SystemBuilder":
        """Add a peer: name, schema, optional instance data and ICs.

        ``instance`` maps relation names to iterables of tuples; missing
        relations default to empty.
        """
        if name in self._peers:
            raise SystemError_(f"duplicate peer {name!r}")
        coerced = _coerce_schema(schema)
        ics = tuple(_coerce_constraint(c) for c in local_ics)
        self._peers[name] = Peer(name, coerced, local_ics=ics)
        rows = {relation: [tuple(row) for row in row_list]
                for relation, row_list in (instance or {}).items()}
        self._instances[name] = DatabaseInstance(coerced, rows)
        return self

    def exchange(self, owner: str, other: str,
                 constraint: ConstraintLike) -> "SystemBuilder":
        """Add one DEC of Σ(owner, other)."""
        self._exchanges.append(
            DataExchange(owner, other, _coerce_constraint(constraint)))
        return self

    def trust(self, owner: str, level: Union[str, TrustLevel],
              other: str) -> "SystemBuilder":
        """Add a trust edge ``(owner, level, other)``."""
        self._trust.append((owner, _coerce_level(level).value, other))
        return self

    def trust_edges(self, edges: Iterable[tuple]) -> "SystemBuilder":
        """Add several trust edges at once."""
        for owner, level, other in edges:
            self.trust(owner, level, other)
        return self

    def enforce_local_ics(self, flag: bool = True) -> "SystemBuilder":
        """Whether ``build`` asserts r(P) |= IC(P) (default True; the
        paper's footnote 1 discusses relaxing it)."""
        self._enforce_local_ics = flag
        return self

    # ------------------------------------------------------------------
    def build(self) -> PeerSystem:
        """Construct the validated :class:`PeerSystem`."""
        return PeerSystem(self._peers.values(), dict(self._instances),
                          list(self._exchanges),
                          TrustRelation(self._trust),
                          enforce_local_ics=self._enforce_local_ics)

    def __repr__(self) -> str:
        return (f"SystemBuilder({sorted(self._peers)}, "
                f"{len(self._exchanges)} DECs, "
                f"{len(self._trust)} trust edges)")
