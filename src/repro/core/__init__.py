"""The paper's contribution: query answering in P2P data exchange systems.

Implements, from Bertossi & Bravo (EDBT 2004):

* the system model — peers, schemas, instances, local ICs, data exchange
  constraints Σ(P,Q), and the trust relation (Definition 2);
* **solutions for a peer** — the two-stage prioritised-repair semantics
  (Definition 4, direct case);
* **peer consistent answers** — certain answers over all solutions
  (Definition 5);
* the four computation mechanisms: direct model-theoretic enumeration,
  first-order query rewriting (Example 2), the GAV answer-set
  specification with the choice operator (Section 3.1), the LAV
  three-layer specification (Section 4.2 + Appendix); and
* the transitive combined-program semantics (Section 4.3, Example 4).

Quick start::

    from repro.core import (Peer, DataExchange, PeerSystem, TrustRelation,
                            PeerConsistentEngine)
    from repro.relational import (DatabaseSchema, DatabaseInstance,
                                  InclusionDependency, parse_query)

    p1 = Peer("P1", DatabaseSchema.of({"R1": 2}))
    p2 = Peer("P2", DatabaseSchema.of({"R2": 2}))
    system = PeerSystem(
        [p1, p2],
        {"P1": DatabaseInstance(p1.schema, {"R1": [("a", "b")]}),
         "P2": DatabaseInstance(p2.schema, {"R2": [("c", "d")]})},
        [DataExchange("P1", "P2",
                      InclusionDependency("R2", "R1", child_arity=2,
                                          parent_arity=2))],
        TrustRelation([("P1", "less", "P2")]))
    engine = PeerConsistentEngine(system, method="asp")
    engine.peer_consistent_answers("P1", parse_query("q(X, Y) := R1(X, Y)"))
"""

from .asp_gav import (
    GavSpecification,
    asp_peer_consistent_answers,
    asp_solutions_for_peer,
)
from .asp_lav import LavSpecification, SourceLabel, labels_for_peer
from .engine import PeerConsistentEngine
from .errors import (
    NoSolutionsError,
    P2PError,
    QueryScopeError,
    RewritingNotSupported,
    SystemError_,
    TrustError,
)
from .fo_rewriting import (
    PeerQueryRewriter,
    answers_via_rewriting,
    rewrite_peer_query,
)
from .explain import AnswerExplanation, explain_answer, explain_query
from .io import (
    constraint_from_dict,
    constraint_to_dict,
    dump_system,
    load_system,
    system_from_dict,
    system_to_dict,
)
from .messaging import ExchangeEvent, ExchangeLog
from .naming import NameMap
from .pca import (
    PCAResult,
    pca_from_solutions,
    peer_consistent_answers,
    possible_peer_answers,
)
from .solutions import SolutionSearch, solutions_for_peer
from .system import DataExchange, Peer, PeerSystem
from .transitive import (
    TransitiveSpecification,
    global_solutions,
    transitive_peer_consistent_answers,
)
from .trust import TrustLevel, TrustRelation

__all__ = [
    # system model
    "Peer", "DataExchange", "PeerSystem", "TrustRelation", "TrustLevel",
    # semantics
    "SolutionSearch", "solutions_for_peer",
    "PCAResult", "peer_consistent_answers", "pca_from_solutions",
    "possible_peer_answers",
    # declarative definitions
    "system_from_dict", "system_to_dict", "load_system", "dump_system",
    "constraint_from_dict", "constraint_to_dict",
    # explanations
    "AnswerExplanation", "explain_answer", "explain_query",
    # mechanisms
    "PeerQueryRewriter", "rewrite_peer_query", "answers_via_rewriting",
    "GavSpecification", "asp_solutions_for_peer",
    "asp_peer_consistent_answers",
    "LavSpecification", "SourceLabel", "labels_for_peer",
    "TransitiveSpecification", "global_solutions",
    "transitive_peer_consistent_answers",
    "PeerConsistentEngine",
    # support
    "NameMap", "ExchangeLog", "ExchangeEvent",
    # errors
    "P2PError", "SystemError_", "TrustError", "QueryScopeError",
    "RewritingNotSupported", "NoSolutionsError",
]
