"""The paper's contribution: query answering in P2P data exchange systems.

Implements, from Bertossi & Bravo (EDBT 2004):

* the system model — peers, schemas, instances, local ICs, data exchange
  constraints Σ(P,Q), and the trust relation (Definition 2);
* **solutions for a peer** — the two-stage prioritised-repair semantics
  (Definition 4, direct case);
* **peer consistent answers** — certain answers over all solutions
  (Definition 5);
* the four computation mechanisms: direct model-theoretic enumeration,
  first-order query rewriting (Example 2), the GAV answer-set
  specification with the choice operator (Section 3.1), the LAV
  three-layer specification (Section 4.2 + Appendix); and
* the transitive combined-program semantics (Section 4.3, Example 4).

Public API
----------
The service layer (new in this release):

* :class:`PeerQuerySession` — the cached query-answering service:
  ``answer`` / ``answer_many`` / ``explain`` returning rich
  :class:`QueryResult` objects, with per-peer solutions memoized across
  queries and invalidated via :meth:`PeerSystem.version`;
* the **answer-method registry** (:mod:`repro.core.methods`) —
  ``model`` / ``asp`` / ``lav`` / ``rewrite`` / ``transitive`` as
  pluggable :class:`AnswerMethod` strategies plus the ``auto`` planner
  (FO rewriting when it applies, ASP otherwise); extend with
  :func:`register_method`;
* :class:`SystemBuilder` (via :meth:`PeerSystem.builder`) — fluent
  construction shared by examples, JSON ``io``, and the workload
  generators.

Quick start::

    from repro.core import PeerQuerySession, PeerSystem

    system = (PeerSystem.builder()
              .peer("P1", {"R1": 2}, instance={"R1": [("a", "b")]})
              .peer("P2", {"R2": 2}, instance={"R2": [("c", "d")]})
              .exchange("P1", "P2",
                        {"type": "inclusion", "child": "R2",
                         "parent": "R1", "child_arity": 2,
                         "parent_arity": 2})
              .trust("P1", "less", "P2")
              .build())
    session = PeerQuerySession(system)
    result = session.answer("P1", "q(X, Y) := R1(X, Y)")  # method="auto"
    result.answers, result.method_used, result.solution_count

The string-typed :class:`PeerConsistentEngine` façade is deprecated and
will be removed next release; it now delegates to a session internally.
"""

from .asp_gav import (
    GavSpecification,
    asp_peer_consistent_answers,
    asp_solutions_for_peer,
)
from .asp_lav import LavSpecification, SourceLabel, labels_for_peer
from .builder import SystemBuilder
from .engine import PeerConsistentEngine
from .errors import (
    NoSolutionsError,
    P2PError,
    QueryScopeError,
    RewritingNotSupported,
    SystemError_,
    TrustError,
    UnknownMethodError,
)
from .fo_rewriting import (
    PeerQueryRewriter,
    answers_via_rewriting,
    rewrite_peer_query,
)
from .explain import AnswerExplanation, explain_answer, explain_query
from .io import (
    constraint_from_dict,
    constraint_to_dict,
    dump_system,
    load_system,
    schema_from_spec,
    schema_to_spec,
    system_from_dict,
    system_to_dict,
)
from .messaging import ExchangeEvent, ExchangeLog, estimate_bytes
from .methods import (
    AnswerMethod,
    available_methods,
    get_method,
    register_method,
    unregister_method,
)
from .naming import NameMap
from .pca import (
    PCAResult,
    pca_from_solutions,
    peer_consistent_answers,
    possible_from_solutions,
    possible_peer_answers,
)
from .results import ExchangeStats, QueryError, QueryRequest, QueryResult
from .session import PeerQuerySession, SessionCacheInfo
from .solutions import SolutionSearch, solutions_for_peer
from .system import DataExchange, Peer, PeerSystem
from .transitive import (
    TransitiveSpecification,
    global_solutions,
    transitive_peer_consistent_answers,
)
from .trust import TrustLevel, TrustRelation

__all__ = [
    # system model
    "Peer", "DataExchange", "PeerSystem", "TrustRelation", "TrustLevel",
    "SystemBuilder",
    # the service API
    "PeerQuerySession", "SessionCacheInfo",
    "QueryRequest", "QueryResult", "ExchangeStats", "QueryError",
    "AnswerMethod", "register_method", "unregister_method",
    "available_methods", "get_method",
    # semantics
    "SolutionSearch", "solutions_for_peer",
    "PCAResult", "peer_consistent_answers", "pca_from_solutions",
    "possible_from_solutions", "possible_peer_answers",
    # declarative definitions
    "system_from_dict", "system_to_dict", "load_system", "dump_system",
    "schema_from_spec", "schema_to_spec",
    "constraint_from_dict", "constraint_to_dict",
    # explanations
    "AnswerExplanation", "explain_answer", "explain_query",
    # mechanisms
    "PeerQueryRewriter", "rewrite_peer_query", "answers_via_rewriting",
    "GavSpecification", "asp_solutions_for_peer",
    "asp_peer_consistent_answers",
    "LavSpecification", "SourceLabel", "labels_for_peer",
    "TransitiveSpecification", "global_solutions",
    "transitive_peer_consistent_answers",
    # deprecated façade
    "PeerConsistentEngine",
    # support
    "NameMap", "ExchangeLog", "ExchangeEvent", "estimate_bytes",
    # errors
    "P2PError", "SystemError_", "TrustError", "QueryScopeError",
    "RewritingNotSupported", "NoSolutionsError", "UnknownMethodError",
]
