"""The trust relation of Definition 2(f).

``trust ⊆ P × {less, same} × P``: ``(A, less, B)`` means peer A trusts
itself *less* than B (B's data wins conflicts); ``(A, same, B)`` means A
trusts itself the *same* as B (conflicts may be resolved at either side).
The second argument functionally depends on the other two — enforced here.

A missing edge means A does not trust B's data at least as much as its own,
so B's data is simply not consulted ("only some peers' databases are
relevant to P, those ... trusted by P at least as much as it trusts its own
data", Section 2).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator, Optional

from .errors import TrustError

__all__ = ["TrustLevel", "TrustRelation"]


class TrustLevel(str, Enum):
    """How much a peer trusts itself relative to another peer."""

    LESS = "less"   # the other peer's data is more reliable
    SAME = "same"   # equally reliable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _coerce_level(level: object) -> TrustLevel:
    if isinstance(level, TrustLevel):
        return level
    if isinstance(level, str):
        try:
            return TrustLevel(level)
        except ValueError:
            raise TrustError(f"unknown trust level {level!r}; "
                             f"use 'less' or 'same'") from None
    raise TrustError(f"unknown trust level {level!r}")


class TrustRelation:
    """An immutable set of trust edges with the functional-dependency check.

    Construct from triples ``(owner, level, other)`` mirroring the paper's
    notation, e.g. ``TrustRelation([("P1", "less", "P2"),
    ("P1", "same", "P3")])``.
    """

    __slots__ = ("_edges",)

    def __init__(self, triples: Iterable[tuple[str, object, str]] = ()
                 ) -> None:
        edges: dict[tuple[str, str], TrustLevel] = {}
        for owner, level, other in triples:
            coerced = _coerce_level(level)
            if owner == other:
                raise TrustError(
                    f"peer {owner!r} cannot appear on both sides of a "
                    f"trust edge")
            key = (owner, other)
            existing = edges.get(key)
            if existing is not None and existing != coerced:
                raise TrustError(
                    f"trust level for ({owner!r}, {other!r}) is ambiguous: "
                    f"{existing.value} vs {coerced.value} (the level must "
                    f"functionally depend on the pair, Definition 2(f))")
            edges[key] = coerced
        object.__setattr__(self, "_edges", edges)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TrustRelation is immutable")

    # ------------------------------------------------------------------
    def level(self, owner: str, other: str) -> Optional[TrustLevel]:
        """The trust level of ``owner`` toward ``other`` (None = untrusted)."""
        return self._edges.get((owner, other))

    def trusts_less(self, owner: str, other: str) -> bool:
        return self._edges.get((owner, other)) is TrustLevel.LESS

    def trusts_same(self, owner: str, other: str) -> bool:
        return self._edges.get((owner, other)) is TrustLevel.SAME

    def trusts_at_least_same(self, owner: str, other: str) -> bool:
        """True when ``other``'s data is at least as reliable as own data."""
        return (owner, other) in self._edges

    def peers_trusted_by(self, owner: str,
                         level: Optional[TrustLevel] = None) -> list[str]:
        """Peers ``owner`` trusts (optionally filtered by level), sorted."""
        result = []
        for (edge_owner, other), edge_level in self._edges.items():
            if edge_owner != owner:
                continue
            if level is not None and edge_level is not level:
                continue
            result.append(other)
        return sorted(result)

    def edges(self) -> Iterator[tuple[str, TrustLevel, str]]:
        for (owner, other), level in sorted(self._edges.items()):
            yield owner, level, other

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrustRelation) and \
            self._edges == other._edges

    def __hash__(self) -> int:
        return hash(frozenset(self._edges.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"({o}, {lv.value}, {t})"
                          for o, lv, t in self.edges())
        return f"TrustRelation([{inner}])"
