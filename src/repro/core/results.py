"""Typed requests and results for the query-answering API.

The paper's Definition 5 speaks of *peer consistent answers*; a production
service needs to say more than "here is a set of tuples": which mechanism
actually ran (``auto`` may pick FO rewriting or fall back to ASP), whether
the certifying solutions were enumerated at all (the rewriting route never
counts them — ``solution_count is None`` means *not computed*, honestly,
not a fake positive), how long the computation took, and how much data
moved between peers on the way.  :class:`QueryResult` carries all of that;
:class:`QueryRequest` is the batchable input form consumed by
:meth:`repro.core.session.PeerQuerySession.answer_many`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..relational.query import Query

__all__ = ["QueryRequest", "QueryResult", "ExchangeStats", "QueryError",
           "CERTAIN", "POSSIBLE"]

CERTAIN = "certain"
POSSIBLE = "possible"
_SEMANTICS = (CERTAIN, POSSIBLE)


def _coerce_query(query: Union[Query, str]) -> Query:
    if isinstance(query, Query):
        return query
    from ..relational.query_parser import parse_query
    return parse_query(query)


@dataclass(frozen=True)
class QueryRequest:
    """One query to pose: peer, query, mechanism, and semantics.

    ``query`` may be a parsed :class:`~repro.relational.query.Query` or the
    textual form (``"q(X, Y) := R1(X, Y)"``); ``method`` is any registered
    answer method name (default ``"auto"``: FO rewriting when it applies,
    ASP otherwise); ``semantics`` is ``"certain"`` (Definition 5) or
    ``"possible"`` (the brave dual).
    """

    peer: str
    query: Union[Query, str]
    method: Optional[str] = None
    semantics: str = CERTAIN

    def __post_init__(self) -> None:
        if self.semantics not in _SEMANTICS:
            from .errors import P2PError
            raise P2PError(f"unknown semantics {self.semantics!r}; "
                           f"choose from {_SEMANTICS}")

    def resolved_query(self) -> Query:
        """The parsed query (parses the textual form on demand)."""
        return _coerce_query(self.query)


@dataclass(frozen=True)
class ExchangeStats:
    """Peer-to-peer traffic attributable to one answered query.

    ``bytes_estimate`` is the serialized size of the payloads that
    moved.  When the messages actually crossed a wire (the
    :class:`~repro.wire.transport.SocketTransport`), it is **exact**:
    the byte length of the encoded reply frames as they went over the
    socket.  For the in-process transports (loopback/threaded), where
    nothing is ever serialized, it falls back to the
    :func:`repro.core.messaging.estimate_bytes` heuristic — close
    enough to a JSON encoding to make traffic comparable, but an
    estimate.  ``max_hops`` is the longest relay chain any of that data
    travelled — 1 for direct neighbour fetches, more when the
    :mod:`repro.net` runtime routed a transitive query hop-by-hop.

    ``neighbours_contacted`` counts the pending neighbours engaged per
    gather level (every *contacted* neighbour receives at least one
    message in both routed and flooded mode); ``neighbours_pruned``
    counts the messages the :mod:`repro.routing` index elided
    (synthesized subsystem replies plus version-confirmed fetch skips);
    ``subtrees_pruned`` counts whole gather branches skipped because a
    :class:`~repro.routing.aggregate.SubtreeDigest` proved everything
    reachable through a neighbour disjoint from the query's constants —
    all always zero when routing is off, so a routed run is auditable
    from its result.
    """

    requests: int = 0
    tuples_transferred: int = 0
    bytes_estimate: int = 0
    max_hops: int = 0
    neighbours_pruned: int = 0
    neighbours_contacted: int = 0
    subtrees_pruned: int = 0

    def __add__(self, other: "ExchangeStats") -> "ExchangeStats":
        return ExchangeStats(self.requests + other.requests,
                             self.tuples_transferred
                             + other.tuples_transferred,
                             self.bytes_estimate + other.bytes_estimate,
                             max(self.max_hops, other.max_hops),
                             self.neighbours_pruned
                             + other.neighbours_pruned,
                             self.neighbours_contacted
                             + other.neighbours_contacted,
                             self.subtrees_pruned
                             + other.subtrees_pruned)


@dataclass(frozen=True)
class QueryError:
    """A typed failure attached to a :class:`QueryResult`.

    Produced by execution backends that can fail partway — the
    :mod:`repro.net` runtime surfaces unreachable peers, exhausted hop
    budgets, and transport loss here instead of raising, so a batch over
    a flaky network degrades per-result rather than aborting.

    ``code`` is a stable machine-readable tag (``"peer-unreachable"``,
    ``"hop-budget-exhausted"``, ``"transport"``); ``message`` the human
    rendering; ``peer`` the peer the failure was observed at, when known.
    """

    code: str
    message: str
    peer: str = ""

    def __str__(self) -> str:
        where = f" at {self.peer}" if self.peer else ""
        return f"[{self.code}]{where} {self.message}"


@dataclass(frozen=True)
class QueryResult:
    """A set of answers plus full provenance.

    Attributes:
        peer: the queried peer P.
        query: the (parsed) query Q ∈ L(P).
        answers: the answer tuples.
        semantics: ``"certain"`` or ``"possible"``.
        method_requested: the method named in the request (e.g. ``auto``).
        method_used: the mechanism that actually produced the answers
            (``auto`` resolves to ``rewrite`` or ``asp``).
        solution_count: how many solutions certified the answers; ``None``
            when the mechanism does not enumerate solutions (FO
            rewriting) — *not computed*, as opposed to zero.
        elapsed: wall-clock seconds spent answering.
        exchange: peer-to-peer requests/tuples moved for this answer.
        from_cache: whether memoized per-peer solutions were reused.
        error: a typed :class:`QueryError` when the execution backend
            failed (unreachable peer, exhausted hop budget); ``answers``
            is empty and must not be read as "no certain answers".
        trace: the completed :class:`~repro.obs.trace.Span` tree of a
            traced run (every hop's gather/fetch/eval/server spans,
            reassembled cross-process); empty unless ``tracing=True``.
        timings: per-phase wall-clock breakdown of a traced run
            (``{"gather_s": ..., "eval_s": ..., "total_s": ...}``);
            ``None`` unless ``tracing=True``.
    """

    peer: str
    query: Query
    answers: frozenset
    semantics: str = CERTAIN
    method_requested: str = "auto"
    method_used: str = "auto"
    solution_count: Optional[int] = None
    elapsed: float = 0.0
    exchange: ExchangeStats = field(default_factory=ExchangeStats)
    from_cache: bool = False
    error: Optional[QueryError] = None
    trace: tuple = ()
    timings: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True iff the execution completed (no :attr:`error`)."""
        return self.error is None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def no_solutions(self) -> bool:
        """True iff the peer provably has no solutions at all.

        ``False`` when ``solution_count is None``: the mechanism did not
        enumerate solutions, so their absence was never established.
        """
        return self.solution_count == 0

    @property
    def solutions_counted(self) -> bool:
        return self.solution_count is not None

    def __iter__(self) -> Iterator[tuple]:
        return iter(sorted(self.answers))

    def __contains__(self, item: object) -> bool:
        return item in self.answers

    def __len__(self) -> int:
        return len(self.answers)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (used by the CLI)."""
        data = {
            "peer": self.peer,
            "query": str(self.query),
            "answers": sorted(list(row) for row in self.answers),
            "semantics": self.semantics,
            "method_requested": self.method_requested,
            "method_used": self.method_used,
            "solution_count": self.solution_count,
            "elapsed_ms": round(self.elapsed * 1000, 3),
            "exchange_requests": self.exchange.requests,
            "exchange_tuples": self.exchange.tuples_transferred,
            "exchange_bytes_estimate": self.exchange.bytes_estimate,
            "exchange_max_hops": self.exchange.max_hops,
            "exchange_neighbours_pruned": self.exchange.neighbours_pruned,
            "exchange_neighbours_contacted":
                self.exchange.neighbours_contacted,
            "exchange_subtrees_pruned": self.exchange.subtrees_pruned,
            "from_cache": self.from_cache,
            "error": (None if self.error is None else {
                "code": self.error.code,
                "message": self.error.message,
                "peer": self.error.peer,
            }),
        }
        # trace/timings only appear on traced runs, so untraced CLI
        # output is unchanged
        if self.trace:
            data["trace"] = [span.to_dict() for span in self.trace]
        if self.timings:
            data["timings"] = dict(self.timings)
        return data

    def __repr__(self) -> str:
        if self.error is not None:
            return (f"QueryResult({self.peer!r}, FAILED "
                    f"{self.error.code}: {self.error.message})")
        count = ("not-counted" if self.solution_count is None
                 else self.solution_count)
        return (f"QueryResult({self.peer!r}, {sorted(self.answers)}, "
                f"semantics={self.semantics}, method={self.method_used}, "
                f"solutions={count})")
