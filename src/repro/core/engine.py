"""Deprecated façade kept for one release: :class:`PeerConsistentEngine`.

The string-typed engine predates the service API; new code should use

* :class:`~repro.core.session.PeerQuerySession` — cached ``answer`` /
  ``answer_many`` / ``explain`` returning rich
  :class:`~repro.core.results.QueryResult` objects, and
* :mod:`repro.core.methods` — the pluggable answer-method registry
  (``register_method`` / ``available_methods``).

This shim delegates every call to a private session (so it benefits from
the solution cache) and preserves the historical surface: ``method`` is
validated at construction, ``transitive=True`` maps onto the registered
``transitive`` method, and results come back as bare
:class:`~repro.core.pca.PCAResult` objects.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .errors import P2PError, RewritingNotSupported
from .methods import available_methods, get_method
from .pca import PCAResult
from .session import PeerQuerySession
from .system import PeerSystem

__all__ = ["PeerConsistentEngine"]


class PeerConsistentEngine:
    """Deprecated: use :class:`~repro.core.session.PeerQuerySession`.

    Parameters:
        system: the P2P data exchange system.
        method: a registered answer-method name (see
            :func:`repro.core.methods.available_methods`).
        transitive: use the Section 4.3 combined-program semantics
            instead of the direct (Definition 4) semantics.
        include_local_ics: enforce IC(P) inside the solution semantics.
    """

    def __init__(self, system: PeerSystem, *, method: str = "asp",
                 transitive: bool = False,
                 include_local_ics: bool = True) -> None:
        warnings.warn(
            "PeerConsistentEngine is deprecated; use PeerQuerySession "
            "(repro.core.session) and the answer-method registry instead",
            DeprecationWarning, stacklevel=2)
        get_method(method)  # unknown names raise P2PError, as before
        if transitive and method not in ("asp", "model"):
            raise P2PError(
                "the transitive semantics is computed via the combined "
                "ASP program; use method='asp'")
        self.system = system
        self.method = method
        self.transitive = transitive
        self.include_local_ics = include_local_ics
        self._session = PeerQuerySession(
            system, default_method=method,
            include_local_ics=include_local_ics)

    # ------------------------------------------------------------------
    def solutions(self, peer: str) -> list[DatabaseInstance]:
        """The (direct or global) solutions for ``peer``.

        The session normalises non-enumerating methods (rewrite) and
        planners (auto) to ASP — the historical behaviour of this façade.
        """
        method = "transitive" if self.transitive else self.method
        return self._session.solutions(peer, method=method)

    def peer_consistent_answers(self, peer: str, query: Query
                                ) -> PCAResult:
        """PCAs of ``query`` posed to ``peer`` (Definition 5)."""
        method = "transitive" if self.transitive else self.method
        result = self._session.answer(peer, query, method=method)
        return PCAResult(set(result.answers), result.solution_count)

    def compare_methods(self, peer: str, query: Query,
                        methods: Sequence[str] = ("model", "asp")
                        ) -> dict[str, set[tuple]]:
        """Run several mechanisms side by side (used by benchmarks and
        cross-validation tests)."""
        results: dict[str, set[tuple]] = {}
        for method in methods:
            try:
                answered = self._session.answer(peer, query,
                                                method=method)
            except RewritingNotSupported:
                continue
            results[method] = set(answered.answers)
        return results
