"""High-level façade: one entry point for every computation mechanism.

The paper presents four ways of obtaining peer consistent answers; the
:class:`PeerConsistentEngine` exposes them behind one interface:

========== ==========================================================
method      implementation
========== ==========================================================
``model``   Definition 4/5 directly (enumerate solutions, intersect)
``asp``     GAV answer-set specification, staged (Section 3.1)
``lav``     LAV three-layer specification (Section 4.2, appendix)
``rewrite`` FO query rewriting (Example 2 fragment)
========== ==========================================================

plus the ``transitive`` flag for the combined-program semantics of
Section 4.3.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .asp_gav import asp_peer_consistent_answers, asp_solutions_for_peer
from .asp_lav import LavSpecification, labels_for_peer
from .errors import P2PError, RewritingNotSupported
from .fo_rewriting import answers_via_rewriting
from .pca import PCAResult, pca_from_solutions, peer_consistent_answers
from .solutions import solutions_for_peer
from .system import PeerSystem
from .transitive import (
    TransitiveSpecification,
    transitive_peer_consistent_answers,
)
from .trust import TrustLevel

__all__ = ["PeerConsistentEngine"]

_METHODS = ("model", "asp", "lav", "rewrite")


class PeerConsistentEngine:
    """Answers queries posed to peers of one system.

    Parameters:
        system: the P2P data exchange system.
        method: computation mechanism (see module docstring).
        transitive: use the Section 4.3 combined-program semantics
            instead of the direct (Definition 4) semantics.
        include_local_ics: enforce IC(P) inside the solution semantics.
    """

    def __init__(self, system: PeerSystem, *, method: str = "asp",
                 transitive: bool = False,
                 include_local_ics: bool = True) -> None:
        if method not in _METHODS:
            raise P2PError(f"unknown method {method!r}; "
                           f"choose from {_METHODS}")
        if transitive and method not in ("asp", "model"):
            raise P2PError(
                "the transitive semantics is computed via the combined "
                "ASP program; use method='asp'")
        self.system = system
        self.method = method
        self.transitive = transitive
        self.include_local_ics = include_local_ics

    # ------------------------------------------------------------------
    def solutions(self, peer: str) -> list[DatabaseInstance]:
        """The (direct or global) solutions for ``peer``."""
        if self.transitive:
            return TransitiveSpecification(
                self.system, peer,
                include_local_ics=self.include_local_ics).solutions()
        if self.method == "model":
            return solutions_for_peer(
                self.system, peer,
                include_local_ics=self.include_local_ics)
        if self.method == "lav":
            labels = labels_for_peer(self.system, peer)
            decs = [e.constraint
                    for e in self.system.trusted_decs_of(peer)]
            spec = LavSpecification(self.system.global_instance(), decs,
                                    labels)
            return spec.solutions()
        return asp_solutions_for_peer(
            self.system, peer,
            include_local_ics=self.include_local_ics)

    def peer_consistent_answers(self, peer: str, query: Query
                                ) -> PCAResult:
        """PCAs of ``query`` posed to ``peer`` (Definition 5)."""
        if self.transitive:
            return transitive_peer_consistent_answers(
                self.system, peer, query,
                include_local_ics=self.include_local_ics)
        if self.method == "rewrite":
            answers = answers_via_rewriting(self.system, peer, query)
            # the rewriting route does not enumerate solutions; report -1
            # ("not counted") only when answers exist is misleading, so
            # count solutions lazily only on demand — here we give the
            # answers with an unknown-but-positive marker of 1.
            return PCAResult(answers, 1)
        return pca_from_solutions(self.system, peer, query,
                                  self.solutions(peer))

    def compare_methods(self, peer: str, query: Query,
                        methods: Sequence[str] = ("model", "asp")
                        ) -> dict[str, set[tuple]]:
        """Run several mechanisms side by side (used by benchmarks and
        cross-validation tests)."""
        results: dict[str, set[tuple]] = {}
        for method in methods:
            engine = PeerConsistentEngine(
                self.system, method=method,
                include_local_ics=self.include_local_ics)
            try:
                results[method] = set(
                    engine.peer_consistent_answers(peer, query).answers)
            except RewritingNotSupported:
                continue
        return results
