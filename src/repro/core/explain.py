"""Answer certification: *why* is a tuple (not) peer consistent?

Definition 5 makes a tuple certain when it holds in every solution; this
module materialises the evidence — for each candidate tuple it reports

* ``certain`` — holds in all solutions (with the solution count),
* ``possible`` — holds in some solutions only, together with one
  *countersolution* in which it fails (the witness that blocks
  certification),
* ``absent`` — holds in no solution,
* ``no_solutions`` — the peer has no solutions at all.

This is release convenience on top of the paper's semantics: the
countersolution is exactly the object the Definition-5 universal
quantifier demands to inspect.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .solutions import SolutionSearch
from .system import PeerSystem

__all__ = ["AnswerExplanation", "explain_answer", "explain_query"]


class AnswerExplanation:
    """Evidence for one candidate answer tuple."""

    CERTAIN = "certain"
    POSSIBLE = "possible"
    ABSENT = "absent"
    NO_SOLUTIONS = "no_solutions"

    def __init__(self, tuple_: tuple, status: str,
                 supporting: int, total: int,
                 countersolution: Optional[DatabaseInstance]) -> None:
        self.tuple = tuple_
        self.status = status
        self.supporting_solutions = supporting
        self.total_solutions = total
        self.countersolution = countersolution

    def __repr__(self) -> str:
        return (f"AnswerExplanation({self.tuple}, {self.status}, "
                f"{self.supporting_solutions}/{self.total_solutions})")

    def render(self) -> str:
        """One-paragraph human-readable explanation."""
        if self.status == self.NO_SOLUTIONS:
            return (f"{self.tuple}: the peer has no solutions — the "
                    f"exchange constraints are unsatisfiable against the "
                    f"trusted peers' data.")
        if self.status == self.CERTAIN:
            return (f"{self.tuple}: CERTAIN — holds in all "
                    f"{self.total_solutions} solution(s).")
        if self.status == self.POSSIBLE:
            return (f"{self.tuple}: possible but not certain — holds in "
                    f"{self.supporting_solutions} of "
                    f"{self.total_solutions} solutions; countersolution: "
                    f"{self.countersolution}.")
        return (f"{self.tuple}: absent — holds in none of the "
                f"{self.total_solutions} solutions.")


def _explanations_over(system: PeerSystem, peer: str, query: Query,
                       solutions: Sequence[DatabaseInstance],
                       candidates: Sequence[tuple]
                       ) -> list[AnswerExplanation]:
    total = len(solutions)
    per_solution_answers = []
    for solution in solutions:
        restricted = system.restrict_to_peer(solution, peer)
        per_solution_answers.append((solution,
                                     query.answers(restricted)))
    explanations = []
    for candidate in candidates:
        if total == 0:
            explanations.append(AnswerExplanation(
                candidate, AnswerExplanation.NO_SOLUTIONS, 0, 0, None))
            continue
        supporting = 0
        countersolution = None
        for solution, answers in per_solution_answers:
            if candidate in answers:
                supporting += 1
            elif countersolution is None:
                countersolution = solution
        if supporting == total:
            status = AnswerExplanation.CERTAIN
        elif supporting > 0:
            status = AnswerExplanation.POSSIBLE
        else:
            status = AnswerExplanation.ABSENT
        explanations.append(AnswerExplanation(
            candidate, status, supporting, total, countersolution))
    return explanations


def explain_answer(system: PeerSystem, peer: str, query: Query,
                   candidate: tuple, **search_kwargs
                   ) -> AnswerExplanation:
    """Explain the status of one candidate tuple (Definition 5 evidence)."""
    system.validate_query_scope(peer, query)
    solutions = SolutionSearch(system, peer, **search_kwargs).solutions()
    return _explanations_over(system, peer, query, solutions,
                              [tuple(candidate)])[0]


def explain_query(system: PeerSystem, peer: str, query: Query,
                  **search_kwargs) -> list[AnswerExplanation]:
    """Explanations for every tuple that holds in at least one solution,
    sorted certain-first then lexicographically."""
    system.validate_query_scope(peer, query)
    solutions = SolutionSearch(system, peer, **search_kwargs).solutions()
    union: set[tuple] = set()
    for solution in solutions:
        restricted = system.restrict_to_peer(solution, peer)
        union |= query.answers(restricted)
    explanations = _explanations_over(system, peer, query, solutions,
                                      sorted(union))
    order = {AnswerExplanation.CERTAIN: 0, AnswerExplanation.POSSIBLE: 1,
             AnswerExplanation.ABSENT: 2,
             AnswerExplanation.NO_SOLUTIONS: 3}
    explanations.sort(key=lambda e: (order[e.status], e.tuple))
    return explanations
