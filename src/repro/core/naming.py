"""Relation-to-predicate naming for the ASP specifications.

The paper writes source relations ``R1`` and their virtual (solution-level)
versions ``R'1``.  Program predicates must start lowercase, so relation
``R1`` maps to source predicate ``r1`` and primed predicate ``r1_p``
(read: "R1-prime").  The map is bijective and validated: two relations may
not collide after lowercasing, and generated auxiliary names must stay
clear of relation predicates.
"""

from __future__ import annotations

import re
from typing import Iterable

from .errors import SystemError_

__all__ = ["NameMap"]

_VALID = re.compile(r"\A[A-Za-z][A-Za-z0-9_]*\Z")

PRIMED_SUFFIX = "_p"
FINAL_SUFFIX = "_f"


class NameMap:
    """Bijective relation <-> predicate naming."""

    def __init__(self, relations: Iterable[str]) -> None:
        self._source: dict[str, str] = {}
        self._relation_of_source: dict[str, str] = {}
        self._relation_of_primed: dict[str, str] = {}
        self._relation_of_final: dict[str, str] = {}
        for relation in sorted(set(relations)):
            if not _VALID.match(relation):
                raise SystemError_(
                    f"relation name {relation!r} cannot be mapped to a "
                    f"program predicate (letters, digits, underscores "
                    f"only, starting with a letter)")
            pred = relation[0].lower() + relation[1:]
            if pred in self._relation_of_source:
                raise SystemError_(
                    f"relations {self._relation_of_source[pred]!r} and "
                    f"{relation!r} collide on predicate name {pred!r}")
            self._source[relation] = pred
            self._relation_of_source[pred] = relation
            self._relation_of_primed[pred + PRIMED_SUFFIX] = relation
            self._relation_of_final[pred + FINAL_SUFFIX] = relation

    def source(self, relation: str) -> str:
        """Predicate holding the material (source) tuples."""
        try:
            return self._source[relation]
        except KeyError:
            raise SystemError_(f"unmapped relation {relation!r}") from None

    def primed(self, relation: str) -> str:
        """Predicate holding the virtual, solution-level tuples (R')."""
        return self.source(relation) + PRIMED_SUFFIX

    def final(self, relation: str) -> str:
        """Predicate of the second repair layer (Section 3.2's "more
        flexible alternative": solutions re-repaired w.r.t. local ICs)."""
        return self.source(relation) + FINAL_SUFFIX

    def relation_of_primed(self, predicate: str) -> str | None:
        """Reverse lookup for decoding answer sets."""
        return self._relation_of_primed.get(predicate)

    def relation_of_final(self, predicate: str) -> str | None:
        return self._relation_of_final.get(predicate)

    def relation_of_source(self, predicate: str) -> str | None:
        return self._relation_of_source.get(predicate)

    def reserved_predicates(self) -> set[str]:
        return (set(self._relation_of_source)
                | set(self._relation_of_primed)
                | set(self._relation_of_final))
