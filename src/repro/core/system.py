"""The P2P data exchange system of Definition 2.

A :class:`PeerSystem` bundles

(a) a finite set of :class:`Peer` objects,
(b) per-peer disjoint schemas ``R(P)``,
(c) per-peer instances ``r(P)``,
(d) per-peer local ICs ``IC(P)``,
(e) data exchange constraints ``Σ(P, Q)`` (:class:`DataExchange`), and
(f) a :class:`~repro.core.trust.TrustRelation`.

Derived notions of Definition 3 are provided as methods: the extended
schema ``R̄(P)`` (:meth:`PeerSystem.extended_schema_names`), the combined
instance ``r̄`` (:meth:`PeerSystem.global_instance`), and restrictions
``r|P`` (:meth:`PeerSystem.restrict_to_peer`).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from ..relational.constraints import Constraint, TupleGeneratingConstraint
from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from ..relational.schema import DatabaseSchema
from .errors import QueryScopeError, SystemError_
from .messaging import ExchangeLog
from .trust import TrustLevel, TrustRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .builder import SystemBuilder

__all__ = ["Peer", "DataExchange", "PeerSystem"]


class Peer:
    """A peer: name, schema R(P), and local integrity constraints IC(P)."""

    __slots__ = ("name", "schema", "local_ics")

    def __init__(self, name: str, schema: DatabaseSchema,
                 local_ics: Iterable[Constraint] = ()) -> None:
        if not name:
            raise SystemError_("peer name must be non-empty")
        local_ics = tuple(local_ics)
        for constraint in local_ics:
            foreign = constraint.relations() - set(schema.names)
            if foreign:
                raise SystemError_(
                    f"local IC {constraint.name} of peer {name!r} uses "
                    f"foreign relations {sorted(foreign)}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "local_ics", local_ics)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Peer is immutable")

    def __repr__(self) -> str:
        return f"Peer({self.name!r}, {sorted(self.schema.names)})"


class DataExchange:
    """One data exchange constraint in Σ(owner, other).

    ``constraint`` is a sentence over ``R(owner) ∪ R(other)``
    (Definition 2(e)); the builder validates that scoping against the
    system's schemas.
    """

    __slots__ = ("owner", "other", "constraint")

    def __init__(self, owner: str, other: str,
                 constraint: Constraint) -> None:
        if owner == other:
            raise SystemError_(
                f"DEC of peer {owner!r} must involve a second peer")
        object.__setattr__(self, "owner", owner)
        object.__setattr__(self, "other", other)
        object.__setattr__(self, "constraint", constraint)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DataExchange is immutable")

    def __repr__(self) -> str:
        return (f"DataExchange({self.owner!r}, {self.other!r}, "
                f"{self.constraint.name!r})")


class PeerSystem:
    """A complete P2P data exchange system (Definition 2).

    Construction validates every component: disjoint peer schemas,
    instances matching their peer's schema, DECs scoped to the two peers
    involved, trust edges between known peers, and (optionally) that each
    peer's instance satisfies its local ICs — the paper's standing
    assumption ``r(P) |= IC(P)``.
    """

    def __init__(self, peers: Iterable[Peer],
                 instances: Mapping[str, DatabaseInstance],
                 exchanges: Iterable[DataExchange] = (),
                 trust: Optional[TrustRelation] = None,
                 *, enforce_local_ics: bool = True) -> None:
        self.peers: dict[str, Peer] = {}
        for peer in peers:
            if peer.name in self.peers:
                raise SystemError_(f"duplicate peer {peer.name!r}")
            self.peers[peer.name] = peer
        if not self.peers:
            raise SystemError_("a P2P system needs at least one peer")

        # global schema R: disjoint union of the R(P) (Definition 2(b)).
        from ..relational.errors import SchemaError
        schemas = [p.schema for p in self.peers.values()]
        try:
            self.global_schema = schemas[0].disjoint_union(*schemas[1:])
        except SchemaError as exc:
            raise SystemError_(str(exc)) from exc
        self._owner_of: dict[str, str] = {}
        for peer in self.peers.values():
            for name in peer.schema.names:
                self._owner_of[name] = peer.name

        self.instances: dict[str, DatabaseInstance] = {}
        for name, peer in self.peers.items():
            instance = instances.get(name)
            if instance is None:
                instance = DatabaseInstance(peer.schema)
            if instance.schema != peer.schema:
                raise SystemError_(
                    f"instance of peer {name!r} does not match its schema")
            self.instances[name] = instance

        self.exchanges: tuple[DataExchange, ...] = tuple(exchanges)
        for exchange in self.exchanges:
            for peer_name in (exchange.owner, exchange.other):
                if peer_name not in self.peers:
                    raise SystemError_(
                        f"DEC references unknown peer {peer_name!r}")
            allowed = set(self.peers[exchange.owner].schema.names) | \
                set(self.peers[exchange.other].schema.names)
            foreign = exchange.constraint.relations() - allowed
            if foreign:
                raise SystemError_(
                    f"DEC {exchange.constraint.name} of "
                    f"Σ({exchange.owner}, {exchange.other}) uses relations "
                    f"{sorted(foreign)} outside the two peers")

        self.trust = trust if trust is not None else TrustRelation()
        for owner, _level, other in self.trust.edges():
            for peer_name in (owner, other):
                if peer_name not in self.peers:
                    raise SystemError_(
                        f"trust edge references unknown peer {peer_name!r}")

        if enforce_local_ics:
            for name, peer in self.peers.items():
                for constraint in peer.local_ics:
                    if not constraint.holds_in(self.instances[name]):
                        raise SystemError_(
                            f"instance of peer {name!r} violates local IC "
                            f"{constraint.name} (the paper assumes "
                            f"r(P) |= IC(P); pass enforce_local_ics=False "
                            f"to allow)")

        self.exchange_log = ExchangeLog()
        self._version: Optional[str] = None

    # ------------------------------------------------------------------
    # Identity and construction helpers
    # ------------------------------------------------------------------
    def version(self) -> str:
        """The content-derived version fingerprint of this system.

        Computed (lazily, then cached) from everything that defines the
        system's semantics: peers, schemas, local ICs, instances, DECs,
        and trust edges.  Two systems with identical content share a
        version — no matter which process built them, or whether one
        was reloaded from disk after a restart — so caches keyed on it
        (:class:`~repro.core.session.PeerQuerySession`, the
        :mod:`repro.net` node caches, persisted answer caches) validate
        across dump/load round-trips and restarts.  A functional update
        that actually changes data (e.g. :meth:`with_global_instance`
        with different facts) yields a different version; a no-op
        update keeps it, so warm caches survive.
        """
        cached = self._version
        if cached is None:
            cached = self._content_fingerprint()
            self._version = cached
        return cached

    def _content_fingerprint(self) -> str:
        # the io codec is the one canonical serialisation of constraints;
        # imported lazily (io imports this module at load time)
        from .io import constraint_to_dict

        def constraint_key(constraint: Constraint) -> str:
            try:
                return json.dumps(constraint_to_dict(constraint),
                                  sort_keys=True)
            except SystemError_:
                # unregistered constraint classes: fall back to their
                # textual form (stable for all shipped constraints)
                return f"{type(constraint).__name__}:{constraint}"

        digest = hashlib.sha256()

        def feed(*parts: str) -> None:
            for part in parts:
                digest.update(part.encode("utf-8"))
                digest.update(b"\x00")

        for name in sorted(self.peers):
            peer = self.peers[name]
            feed("peer", name)
            for relation in sorted(peer.schema.names):
                schema = peer.schema.relation(relation)
                feed("rel", relation, str(schema.arity),
                     *schema.attributes)
            for key in sorted(constraint_key(c) for c in peer.local_ics):
                feed("ic", key)
            feed("data", self.instances[name].fingerprint())
        for key in sorted(
                json.dumps([e.owner, e.other, constraint_key(e.constraint)])
                for e in self.exchanges):
            feed("dec", key)
        for owner, level, other in sorted(
                (owner, str(level), other)
                for owner, level, other in self.trust.edges()):
            feed("trust", owner, level, other)
        return digest.hexdigest()[:16]

    @classmethod
    def builder(cls) -> "SystemBuilder":
        """A fluent :class:`~repro.core.builder.SystemBuilder`::

            system = (PeerSystem.builder()
                      .peer("P1", {"R1": 2}, instance={"R1": [("a", "b")]})
                      .peer("P2", {"R2": 2})
                      .exchange("P1", "P2", constraint)
                      .trust("P1", "less", "P2")
                      .build())
        """
        from .builder import SystemBuilder
        return SystemBuilder()

    # ------------------------------------------------------------------
    # Definition 2/3 derived notions
    # ------------------------------------------------------------------
    def peer(self, name: str) -> Peer:
        try:
            return self.peers[name]
        except KeyError:
            raise SystemError_(f"unknown peer {name!r}") from None

    def owner_of(self, relation: str) -> str:
        try:
            return self._owner_of[relation]
        except KeyError:
            raise SystemError_(f"unknown relation {relation!r}") from None

    def decs_of(self, peer_name: str) -> tuple[DataExchange, ...]:
        """Σ(P): the DECs owned by the peer."""
        self.peer(peer_name)
        return tuple(e for e in self.exchanges if e.owner == peer_name)

    def trusted_decs_of(self, peer_name: str,
                        level: Optional[TrustLevel] = None
                        ) -> tuple[DataExchange, ...]:
        """The DECs of P toward peers trusted at least `same` (optionally a
        specific level).  Untrusted DECs are ignored, per Section 2."""
        result = []
        for exchange in self.decs_of(peer_name):
            edge = self.trust.level(peer_name, exchange.other)
            if edge is None:
                continue
            if level is not None and edge is not level:
                continue
            result.append(exchange)
        return tuple(result)

    def extended_schema_names(self, peer_name: str) -> tuple[str, ...]:
        """R̄(P): R(P) plus relations appearing in Σ(P) (Definition 3(a))."""
        names = set(self.peer(peer_name).schema.names)
        for exchange in self.decs_of(peer_name):
            names |= exchange.constraint.relations()
        return tuple(sorted(names))

    def global_instance(self) -> DatabaseInstance:
        """r̄: the union of all peers' instances over the global schema."""
        data: dict[str, frozenset] = {}
        for name in self.peers:
            instance = self.instances[name]
            for relation in instance.relations():
                data[relation] = instance.tuples(relation)
        return DatabaseInstance(self.global_schema, data)

    def restrict_to_peer(self, instance: DatabaseInstance,
                         peer_name: str) -> DatabaseInstance:
        """r|P: restriction of a global instance to R(P) (Definition 3(c))."""
        names = [n for n in self.peer(peer_name).schema.names
                 if n in instance.schema]
        return instance.restrict(names)

    def neighbours(self, peer_name: str) -> tuple[str, ...]:
        """Peers appearing in Σ(P), sorted."""
        return tuple(sorted({e.other for e in self.decs_of(peer_name)}))

    # ------------------------------------------------------------------
    # Query scoping (Definition 5) and peer-to-peer data access
    # ------------------------------------------------------------------
    def validate_query_scope(self, peer_name: str, query: Query) -> None:
        """Ensure ``query`` ∈ L(P) — only P's own relations."""
        own = set(self.peer(peer_name).schema.names)
        foreign = query.relations() - own
        if foreign:
            raise QueryScopeError(
                f"query to peer {peer_name!r} uses foreign relations "
                f"{sorted(foreign)}; Definition 5 requires Q(x̄) ∈ L(P)")

    def fetch_relation(self, requester: str, relation: str,
                       purpose: str = "") -> frozenset:
        """Tuples of ``relation``, logging cross-peer requests.

        This is the (simulated) data exchange step of Example 2: the
        requesting peer pulls another peer's relation to answer a query.
        """
        from .messaging import estimate_bytes
        provider = self.owner_of(relation)
        tuples = self.instances[provider].tuples(relation)
        self.exchange_log.record(requester, provider, relation,
                                 len(tuples), purpose,
                                 bytes_estimate=estimate_bytes(tuples))
        return tuples

    # ------------------------------------------------------------------
    # Functional updates (used by stage-wise solution computation)
    # ------------------------------------------------------------------
    def with_global_instance(self, instance: DatabaseInstance
                             ) -> "PeerSystem":
        """A copy of the system whose peer instances are taken from a
        global instance (splitting it by ownership)."""
        per_peer: dict[str, DatabaseInstance] = {}
        for name, peer in self.peers.items():
            data = {relation: instance.tuples(relation)
                    for relation in peer.schema.names}
            per_peer[name] = DatabaseInstance(peer.schema, data)
        return PeerSystem(self.peers.values(), per_peer, self.exchanges,
                          self.trust, enforce_local_ics=False)

    def __repr__(self) -> str:
        return (f"PeerSystem({sorted(self.peers)}, "
                f"{len(self.exchanges)} DECs, {len(self.trust)} trust "
                f"edges)")
