"""Exception hierarchy for the P2P data-exchange core."""

from __future__ import annotations


class P2PError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class SystemError_(P2PError):
    """Malformed P2P system (unknown peer, DEC over foreign relations,
    local IC escaping the peer's schema, instance/schema mismatch)."""


class TrustError(P2PError):
    """Malformed trust relation — the second argument must functionally
    depend on the other two (Definition 2(f))."""


class QueryScopeError(P2PError):
    """A query posed to a peer uses relations outside the peer's own
    language L(P) (Definition 5 requires Q(x̄) ∈ L(P))."""


class UnknownMethodError(P2PError):
    """An answer-method name that is not in the registry — see
    :func:`repro.core.methods.available_methods`."""


class RewritingNotSupported(P2PError):
    """The FO-rewriting mechanism does not cover this system/query
    combination — the paper itself notes the approach has "intrinsic
    limitations" (Section 1); fall back to the ASP method."""


class NoSolutionsError(P2PError):
    """Raised by APIs asked to certify answers for a peer without
    solutions (the specification program has no answer sets)."""
