"""The cached query-answering service: :class:`PeerQuerySession`.

Per-peer solutions are the expensive object in this system — every
Definition-5 answer intersects over them, and recomputing them per query
(as the old :class:`~repro.core.engine.PeerConsistentEngine` did) repeats
the repair enumeration or ASP grounding + solving on every call.  A
session memoizes solutions per ``(system version, peer, method,
include_local_ics)`` and serves any number of queries from them;
:meth:`PeerSystem.version` is a *content-derived* fingerprint, so
swapping in genuinely updated data invalidates the relevant entries
automatically, while re-binding an identical system — rebuilt, reloaded
from disk, or built by another process — keeps the warm cache.

The session front door is :meth:`answer` — pick any registered method by
name (default ``auto``: FO rewriting when it applies, ASP otherwise) and
get a :class:`~repro.core.results.QueryResult` with full provenance.
:meth:`answer_many` batches requests; :meth:`explain` certifies individual
tuples with counter-solutions.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Union

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .methods import AnswerMethod, get_method
from .results import (
    CERTAIN,
    POSSIBLE,
    QueryRequest,
    QueryResult,
)
from .system import PeerSystem

__all__ = ["PeerQuerySession", "SessionCacheInfo"]


class SessionCacheInfo:
    """Counters describing a session's cache behaviour."""

    __slots__ = ("hits", "misses", "entries")

    def __init__(self, hits: int, misses: int, entries: int) -> None:
        self.hits = hits
        self.misses = misses
        self.entries = entries

    def __repr__(self) -> str:
        return (f"SessionCacheInfo(hits={self.hits}, "
                f"misses={self.misses}, entries={self.entries})")


class PeerQuerySession:
    """Answers queries against one (evolving) P2P system, with caching.

    Parameters:
        system: the P2P data exchange system to serve.
        default_method: registered method name used when a request names
            none (default ``"auto"``).
        include_local_ics: enforce IC(P) inside the solution semantics.
        evaluator: FO-evaluation engine used by the mechanisms this
            session drives — ``"planner"`` (indexed, default) or
            ``"naive"`` (the reference evaluator, for differential
            runs).

    The bound system may be swapped (:meth:`use_system`, or assignment to
    :attr:`system`); caches are keyed on
    :meth:`~repro.core.system.PeerSystem.version`, so results computed for
    the old data are never served for the new.
    """

    def __init__(self, system: PeerSystem, *,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner") -> None:
        get_method(default_method)  # fail fast on typos
        if evaluator not in ("planner", "naive"):
            raise ValueError(
                f"unknown evaluator {evaluator!r}; "
                f"choose 'planner' or 'naive'")
        self.system = system
        self.default_method = default_method
        self.include_local_ics = include_local_ics
        self.evaluator = evaluator
        self._solutions: dict[tuple, list[DatabaseInstance]] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------
    def solutions(self, peer: str, *, method: Optional[str] = None
                  ) -> list[DatabaseInstance]:
        """The solutions for ``peer``, memoized per system version.

        ``method`` defaults to the session's default.  Planner methods
        (``auto``) and methods that do not enumerate solutions
        (``rewrite``) are normalised to ASP — the general enumerating
        mechanism — so they share one cache entry instead of crashing or
        duplicating work.
        """
        name = method or self.default_method
        resolved = get_method(name)
        if not resolved.enumerates_solutions or resolved.is_planner:
            name = "asp"
        self.system.peer(peer)  # validate before touching the cache
        key = (self.system.version(), peer, name, self.include_local_ics,
               self.evaluator)
        cached = self._solutions.get(key)
        if cached is not None:
            self._hits += 1
            return list(cached)  # copy: caller mutation must not corrupt
        self._misses += 1
        computed = get_method(name).solutions(self, peer)
        self._solutions[key] = computed
        return list(computed)

    def invalidate(self) -> None:
        """Drop every cached entry (counters survive)."""
        self._solutions.clear()

    def cache_info(self) -> SessionCacheInfo:
        return SessionCacheInfo(self._hits, self._misses,
                                len(self._solutions))

    def use_system(self, system: PeerSystem) -> "PeerQuerySession":
        """Bind the session to (a new version of) the system.

        Entries for other versions are pruned; returns ``self`` for
        chaining.
        """
        self.system = system
        version = system.version()
        self._solutions = {key: value
                           for key, value in self._solutions.items()
                           if key[0] == version}
        return self

    # ------------------------------------------------------------------
    # The service surface
    # ------------------------------------------------------------------
    def answer(self, peer: str, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer one query with full provenance.

        ``method`` is any registered name (``auto``, ``model``, ``asp``,
        ``lav``, ``rewrite``, ``transitive``, or a plug-in); ``semantics``
        is ``"certain"`` (Definition 5) or ``"possible"`` (brave dual).
        """
        return self._execute(QueryRequest(peer, query, method, semantics))

    def answer_many(self, requests: Iterable[Union[QueryRequest, tuple]]
                    ) -> list[QueryResult]:
        """Batch execution: one :class:`QueryResult` per request, in
        order.

        Requests sharing a peer (and method) reuse the same cached
        solutions, so a batch pays the expensive enumeration once.
        Tuples ``(peer, query)`` are accepted as shorthand.
        """
        results = []
        for request in requests:
            if not isinstance(request, QueryRequest):
                request = QueryRequest(*request)
            results.append(self._execute(request))
        return results

    def explain(self, peer: str, query: Union[Query, str],
                candidate: Optional[tuple] = None):
        """Certification evidence (Definition 5 witnesses).

        With ``candidate``: one
        :class:`~repro.core.explain.AnswerExplanation` for that tuple.
        Without: explanations for every tuple holding in at least one
        solution, certain-first.  Reuses the session's cached solutions.
        """
        from .explain import _explanations_over
        parsed = QueryRequest(peer, query).resolved_query()
        self.system.validate_query_scope(peer, parsed)
        solutions = self.solutions(peer)
        if candidate is not None:
            return _explanations_over(self.system, peer, parsed, solutions,
                                      [tuple(candidate)])[0]
        from .explain import AnswerExplanation
        from .pca import possible_from_solutions
        union = possible_from_solutions(self.system, peer, parsed,
                                        solutions).answers
        explanations = _explanations_over(self.system, peer, parsed,
                                          solutions, sorted(union))
        order = {AnswerExplanation.CERTAIN: 0,
                 AnswerExplanation.POSSIBLE: 1,
                 AnswerExplanation.ABSENT: 2,
                 AnswerExplanation.NO_SOLUTIONS: 3}
        explanations.sort(key=lambda e: (order[e.status], e.tuple))
        return explanations

    # ------------------------------------------------------------------
    def _resolve(self, method: AnswerMethod, peer: str, query: Query,
                 semantics: str) -> AnswerMethod:
        """Planner hook: planner methods (``auto``) pick the concrete
        mechanism per request."""
        if not method.is_planner:
            return method
        return method.select(self.system, peer, query,
                             semantics=semantics)

    def _execute(self, request: QueryRequest) -> QueryResult:
        query = request.resolved_query()
        requested = request.method or self.default_method
        log = self.system.exchange_log
        mark = log.mark()
        hits_before = self._hits
        start = time.perf_counter()
        # selection is part of answering: the planner's support probe
        # counts toward elapsed
        method = self._resolve(get_method(requested), request.peer,
                               query, request.semantics)
        if request.semantics == POSSIBLE:
            pca = method.possible_answers(self, request.peer, query)
        else:
            pca = method.certain_answers(self, request.peer, query)
        elapsed = time.perf_counter() - start
        # the actual logged events for this execution, not synthesised
        # counter deltas — includes byte estimates and hop depth
        exchange = log.stats_since(mark)
        return QueryResult(
            peer=request.peer,
            query=query,
            answers=frozenset(pca.answers),
            semantics=request.semantics,
            method_requested=requested,
            method_used=method.name,
            solution_count=pca.solution_count,
            elapsed=elapsed,
            exchange=exchange,
            from_cache=self._hits > hits_before,
        )

    def __repr__(self) -> str:
        return (f"PeerQuerySession({self.system!r}, "
                f"default_method={self.default_method!r}, "
                f"{self.cache_info()!r})")
