"""Pluggable answer methods: the strategy registry behind the service API.

The paper presents four mechanisms for computing peer consistent answers —
direct model enumeration (Definition 4/5), the GAV answer-set
specification (Section 3.1), the LAV three-layer specification (Section
4.2/Appendix), and FO query rewriting (Example 2) — plus the transitive
combined-program semantics of Section 4.3.  Each is packaged here as an
:class:`AnswerMethod` so that

* new mechanisms can be plugged in with :func:`register_method` without
  touching the session/engine layers;
* each mechanism declares :meth:`AnswerMethod.supports`, letting the
  ``auto`` planner pick the cheap FO rewriting when it applies and fall
  back to ASP otherwise (the method-selection concern of the follow-up
  literature on peer data exchange);
* per-peer solutions are obtained through the calling
  :class:`~repro.core.session.PeerQuerySession`, which memoizes them
  across queries.

Methods are stateless singletons; all system state travels through the
session handed to every call — including the session's ``evaluator``
setting, which selects the FO evaluation engine (the indexed planner by
default, or the naive reference evaluator for differential runs) used by
the mechanisms that evaluate queries and constraints directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .errors import P2PError, RewritingNotSupported, UnknownMethodError
from .pca import PCAResult, pca_from_solutions, possible_from_solutions
from .system import PeerSystem
from .trust import TrustLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import PeerQuerySession

__all__ = [
    "AnswerMethod",
    "register_method",
    "unregister_method",
    "available_methods",
    "get_method",
    "AUTO_PREFERENCE",
]


class AnswerMethod(ABC):
    """One mechanism for computing peer consistent answers.

    Subclasses implement :meth:`certain_answers` (and usually
    :meth:`solutions`); :meth:`supports` is the capability declaration the
    ``auto`` planner consults.  ``enumerates_solutions`` tells the service
    layer whether :attr:`~repro.core.pca.PCAResult.solution_count` is
    meaningful for this method (the FO-rewriting route never enumerates,
    so it reports ``None`` — *not computed*).
    """

    #: registry key; must be unique and non-empty.
    name: str = ""
    #: whether :meth:`solutions` is implemented (and counts are honest).
    enumerates_solutions: bool = True
    #: planners (``auto``) define ``select()`` and resolve to a concrete
    #: method per request; the session checks this flag, never duck-types.
    is_planner: bool = False

    # ------------------------------------------------------------------
    def supports(self, system: PeerSystem, peer: str,
                 query: Optional[Query] = None) -> bool:
        """Can this method answer ``query`` at ``peer`` of ``system``?

        The default is unconditional support; restricted mechanisms (FO
        rewriting, the transitive semantics) override this.
        """
        return True

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        """The solutions for ``peer`` as computed by this mechanism."""
        raise P2PError(
            f"method {self.name!r} does not enumerate solutions")

    def certain_answers(self, session: "PeerQuerySession", peer: str,
                        query: Query) -> PCAResult:
        """Peer consistent answers (Definition 5) via this mechanism.

        Default route: intersect over the session's (memoized) solutions.
        """
        session.system.validate_query_scope(peer, query)
        solutions = session.solutions(peer, method=self.name)
        return pca_from_solutions(
            session.system, peer, query, solutions,
            evaluator=getattr(session, "evaluator", "planner"))

    def possible_answers(self, session: "PeerQuerySession", peer: str,
                         query: Query) -> PCAResult:
        """The brave dual: tuples true in *some* solution restriction."""
        session.system.validate_query_scope(peer, query)
        solutions = session.solutions(peer, method=self.name)
        return possible_from_solutions(
            session.system, peer, query, solutions,
            evaluator=getattr(session, "evaluator", "planner"))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, AnswerMethod] = {}


def register_method(method: AnswerMethod | type[AnswerMethod], *,
                    replace: bool = False) -> AnswerMethod:
    """Register an :class:`AnswerMethod` (instance or zero-arg class).

    Usable as a class decorator::

        @register_method
        class MyMethod(AnswerMethod):
            name = "mine"
            ...

    Raises :class:`~repro.core.errors.P2PError` on empty or duplicate
    names unless ``replace=True``.
    """
    if isinstance(method, type):
        method = method()
    if not isinstance(method, AnswerMethod):
        raise P2PError(f"register_method expects an AnswerMethod, "
                       f"got {type(method).__name__}")
    if not method.name:
        raise P2PError("answer method needs a non-empty name")
    if method.name in _REGISTRY and not replace:
        raise P2PError(f"answer method {method.name!r} is already "
                       f"registered; pass replace=True to override")
    _REGISTRY[method.name] = method
    return method


def unregister_method(name: str) -> None:
    """Remove a method from the registry (raises if unknown)."""
    if name not in _REGISTRY:
        raise UnknownMethodError(
            f"unknown method {name!r}; registered: {available_methods()}")
    del _REGISTRY[name]


def available_methods() -> tuple[str, ...]:
    """Sorted names of every registered method."""
    return tuple(sorted(_REGISTRY))


def get_method(name: str) -> AnswerMethod:
    """Look a method up by name.

    Raises :class:`~repro.core.errors.UnknownMethodError` (a
    :class:`~repro.core.errors.P2PError`) on misses — with the available
    names, so typos are self-diagnosing.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {name!r}; "
            f"choose from {available_methods()}") from None


# ----------------------------------------------------------------------
# Built-in methods
# ----------------------------------------------------------------------
@register_method
class ModelMethod(AnswerMethod):
    """Reference semantics: enumerate Definition-4 solutions directly."""

    name = "model"

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        from .solutions import solutions_for_peer
        return solutions_for_peer(
            session.system, peer,
            include_local_ics=session.include_local_ics,
            evaluator=getattr(session, "evaluator", "planner"))


@register_method
class AspMethod(AnswerMethod):
    """GAV answer-set specification, staged (Section 3.1)."""

    name = "asp"

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        from .asp_gav import asp_solutions_for_peer
        return asp_solutions_for_peer(
            session.system, peer,
            include_local_ics=session.include_local_ics)


@register_method
class LavMethod(AnswerMethod):
    """LAV three-layer specification (Section 4.2, Appendix)."""

    name = "lav"

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        from .asp_lav import LavSpecification, labels_for_peer
        system = session.system
        labels = labels_for_peer(system, peer)
        decs = [e.constraint for e in system.trusted_decs_of(peer)]
        spec = LavSpecification(system.global_instance(), decs, labels)
        return spec.solutions()


@register_method
class RewriteMethod(AnswerMethod):
    """FO query rewriting (Example 2) — certain answers only, within the
    supported fragment, without ever enumerating solutions."""

    name = "rewrite"
    enumerates_solutions = False

    def supports(self, system: PeerSystem, peer: str,
                 query: Optional[Query] = None) -> bool:
        # probing performs the full rewrite (DEC classification alone
        # cannot see query constructs outside the fragment); the auto
        # path therefore rewrites twice, which is accepted — the rewrite
        # is a formula transformation, orders of magnitude cheaper than
        # the ASP grounding it avoids
        from .fo_rewriting import PeerQueryRewriter
        try:
            rewriter = PeerQueryRewriter(system, peer)
            if query is not None:
                rewriter.rewrite(query)
        except (RewritingNotSupported, P2PError):
            return False
        return True

    def certain_answers(self, session: "PeerQuerySession", peer: str,
                        query: Query) -> PCAResult:
        from .fo_rewriting import answers_via_rewriting
        answers = answers_via_rewriting(
            session.system, peer, query,
            evaluator=getattr(session, "evaluator", "planner"))
        # the rewriting evaluates one FO query; solutions are never
        # enumerated, so the count is honestly "not computed".
        return PCAResult(answers, None)

    def possible_answers(self, session: "PeerQuerySession", peer: str,
                         query: Query) -> PCAResult:
        raise P2PError(
            "the FO-rewriting method computes certain answers only; "
            "use method='asp' (or 'auto') for possible-answer semantics")


@register_method
class TransitiveMethod(AnswerMethod):
    """Combined-program (global) semantics of Section 4.3."""

    name = "transitive"

    def supports(self, system: PeerSystem, peer: str,
                 query: Optional[Query] = None) -> bool:
        # Section 4.3 is defined for `less`-trusted chains only.
        return not any(system.trusted_decs_of(name, TrustLevel.SAME)
                       for name in system.peers)

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        from .transitive import TransitiveSpecification
        return TransitiveSpecification(
            session.system, peer,
            include_local_ics=session.include_local_ics).solutions()


#: the planner's preference order: cheap first, general last.
AUTO_PREFERENCE: tuple[str, ...] = ("rewrite", "asp")


@register_method
class AutoMethod(AnswerMethod):
    """The planner: first supported method in :data:`AUTO_PREFERENCE`.

    FO rewriting answers with one query evaluation but covers a limited
    fragment; ASP is general but pays grounding and enumeration.  ``auto``
    asks each method in order whether it supports the (system, peer,
    query) combination and delegates to the first that does.
    """

    name = "auto"
    is_planner = True

    def select(self, system: PeerSystem, peer: str,
               query: Optional[Query] = None, *,
               semantics: str = "certain") -> AnswerMethod:
        """The concrete method ``auto`` resolves to for this request."""
        for name in AUTO_PREFERENCE:
            candidate = get_method(name)
            if semantics == "possible" \
                    and not candidate.enumerates_solutions:
                continue
            if candidate.supports(system, peer, query):
                return candidate
        # asp supports everything, so this is unreachable unless the
        # preference list was customised away from a general method
        raise P2PError(
            f"no method in {AUTO_PREFERENCE} supports peer {peer!r}")

    def solutions(self, session: "PeerQuerySession", peer: str
                  ) -> list[DatabaseInstance]:
        # through the session so the entry is shared with method="asp"
        return session.solutions(peer, method="asp")

    def certain_answers(self, session: "PeerQuerySession", peer: str,
                        query: Query) -> PCAResult:
        method = self.select(session.system, peer, query)
        return method.certain_answers(session, peer, query)

    def possible_answers(self, session: "PeerQuerySession", peer: str,
                         query: Query) -> PCAResult:
        method = self.select(session.system, peer, query,
                             semantics="possible")
        return method.possible_answers(session, peer, query)
