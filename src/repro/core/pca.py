"""Peer consistent answers — Definition 5.

A ground tuple ``t̄`` is *peer consistent* for peer P iff
``r'|P |= Q(t̄)`` for **every** solution ``r'`` for P.  The query is posed
in P's own language L(P); data from other peers influences the answers
only through the solutions (which may import tuples into P's relations —
hence, as the paper stresses, a PCA need not be an answer to Q over P's
original data).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .solutions import SolutionSearch
from .system import PeerSystem

__all__ = ["PCAResult", "peer_consistent_answers", "pca_from_solutions",
           "possible_from_solutions", "possible_peer_answers"]


class PCAResult:
    """Answers plus provenance: how many solutions certified them.

    ``no_solutions`` flags the degenerate case where the peer has no
    solutions at all (e.g. contradictory DECs against fixed data): the
    paper's program-based characterisation shows "the absence of solutions
    ... captured by the non existence of answer sets" — we report it
    explicitly instead of answering vacuously.

    ``solution_count`` may be ``None``: the mechanism (FO rewriting) did
    not enumerate solutions, so the count was *not computed* — which is
    distinct from zero, and leaves ``no_solutions`` False.
    """

    def __init__(self, answers: set[tuple],
                 solution_count: Optional[int]) -> None:
        self.answers = answers
        self.solution_count = solution_count

    @property
    def no_solutions(self) -> bool:
        return self.solution_count == 0

    def __iter__(self):
        return iter(sorted(self.answers))

    def __eq__(self, other) -> bool:
        if isinstance(other, PCAResult):
            return (self.answers == other.answers
                    and self.solution_count == other.solution_count)
        if isinstance(other, set):
            return self.answers == other
        return NotImplemented

    def __repr__(self) -> str:
        count = ("not-counted" if self.solution_count is None
                 else self.solution_count)
        return (f"PCAResult({sorted(self.answers)}, "
                f"solutions={count})")


def pca_from_solutions(system: PeerSystem, peer: str, query: Query,
                       solutions: Sequence[DatabaseInstance], *,
                       evaluator: str = "planner") -> PCAResult:
    """Intersect the query answers over ``r'|P`` for each solution."""
    system.validate_query_scope(peer, query)
    if not solutions:
        return PCAResult(set(), 0)
    common: Optional[set[tuple]] = None
    for solution in solutions:
        restricted = system.restrict_to_peer(solution, peer)
        answers = query.answers(restricted, evaluator=evaluator)
        common = answers if common is None else (common & answers)
        if not common:
            break
    assert common is not None
    return PCAResult(common, len(solutions))


def possible_from_solutions(system: PeerSystem, peer: str, query: Query,
                            solutions: Sequence[DatabaseInstance], *,
                            evaluator: str = "planner") -> PCAResult:
    """Union the query answers over ``r'|P`` for each solution (the brave
    dual of :func:`pca_from_solutions`)."""
    system.validate_query_scope(peer, query)
    union: set[tuple] = set()
    for solution in solutions:
        restricted = system.restrict_to_peer(solution, peer)
        union |= query.answers(restricted, evaluator=evaluator)
    return PCAResult(union, len(solutions))


def peer_consistent_answers(system: PeerSystem, peer: str, query: Query,
                            **search_kwargs) -> PCAResult:
    """PCAs by the reference (model-theoretic) route: enumerate solutions,
    evaluate, intersect.  Exponential; see :mod:`repro.core.asp_gav` and
    :mod:`repro.core.fo_rewriting` for the paper's computation methods."""
    search = SolutionSearch(system, peer, **search_kwargs)
    return pca_from_solutions(system, peer, query, search.solutions(),
                              evaluator=search.evaluator)


def possible_peer_answers(system: PeerSystem, peer: str, query: Query,
                          **search_kwargs) -> PCAResult:
    """The brave counterpart of Definition 5: tuples true in *some*
    solution's restriction to the peer.

    Not defined in the paper (which only studies the certain semantics),
    but the natural dual — it corresponds to brave answer-set reasoning
    over the specification program and brackets the certain answers:
    ``peer_consistent_answers ⊆ possible_peer_answers``.
    """
    system.validate_query_scope(peer, query)  # before the expensive search
    search = SolutionSearch(system, peer, **search_kwargs)
    return possible_from_solutions(system, peer, query,
                                   search.solutions(),
                                   evaluator=search.evaluator)
