"""Shared machinery for the ASP specifications (GAV, LAV, transitive).

Translates relational-layer objects (instances, FO atoms, constraints)
into Datalog-layer objects (facts, rules) under a :class:`NameMap`,
implementing the rule shapes of Section 3.1:

* persistence defaults (4)–(5),
* deletion exceptions with ``aux1``/``aux2`` (6)–(8),
* the disjunctive choice rule (9), generalised to multiple deletable
  antecedent atoms and multiple insertable consequent atoms, and
* hard-constraint encodings for DECs that must *stay* satisfied
  (the stage-2 side conditions of Definition 4(c3)) and for local ICs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..datalog.program import Rule
from ..datalog.terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Variable,
)
from ..relational.constraints import (
    Constraint,
    DenialConstraint,
    EqualityGeneratingConstraint,
    TupleGeneratingConstraint,
)
from ..relational.instance import DatabaseInstance
from ..relational.query import Cmp, RelAtom
from .errors import SystemError_
from .naming import NameMap

__all__ = ["TranslationContext", "instance_facts", "translate_atom",
           "translate_cmp", "dec_rules", "hard_constraint_rules",
           "local_ic_rules", "decode_model"]


class TranslationContext:
    """Everything a constraint translation needs to know.

    ``changeable``: relations whose primed version may differ from the
    source (deletions/insertions allowed).
    ``foreign_primed``: relations owned by *other* peers whose primed
    versions are defined elsewhere in a combined (transitive) program —
    references to them use the primed predicate (rules (10)–(13)), while
    the owner's own relations are referenced through their sources.
    """

    def __init__(self, name_map: NameMap, changeable: Iterable[str],
                 foreign_primed: Iterable[str] = (),
                 domain_pred: str = "dom") -> None:
        self.name_map = name_map
        self.changeable = frozenset(changeable)
        self.foreign_primed = frozenset(foreign_primed)
        overlap = self.changeable & self.foreign_primed
        if overlap:
            raise SystemError_(
                f"relations {sorted(overlap)} cannot be both locally "
                f"changeable and foreign-primed")
        # Existential witnesses with no fixed guard atom (the same-trust
        # variant of Section 3.1, where S1, S2 get virtual versions too)
        # range over an explicit active-domain predicate; `domain_used`
        # tells the program builder to emit its facts.
        self.domain_pred = domain_pred
        self.domain_used = False

    # -- predicate selection -------------------------------------------
    def body_pred(self, relation: str) -> str:
        """Predicate used when *reading* a relation in rule bodies:
        sources for local relations (changeable or not), primed versions
        for foreign-primed ones."""
        if relation in self.foreign_primed:
            return self.name_map.primed(relation)
        return self.name_map.source(relation)

    def solution_pred(self, relation: str) -> str:
        """Predicate holding the relation's *solution-level* contents."""
        if relation in self.changeable or relation in self.foreign_primed:
            return self.name_map.primed(relation)
        return self.name_map.source(relation)


def instance_facts(instance: DatabaseInstance, relations: Iterable[str],
                   name_map: NameMap) -> list[Rule]:
    """Source facts for the given relations, deterministic order."""
    facts: list[Rule] = []
    for relation in sorted(set(relations)):
        pred = name_map.source(relation)
        for values in sorted(instance.tuples(relation),
                             key=lambda row: tuple(
                                 (isinstance(v, str), str(v))
                                 for v in row)):
            facts.append(Rule(head=[Atom(pred, values)]))
    return facts


def translate_atom(atom: RelAtom, pred: str) -> Atom:
    """A relational FO atom as a Datalog atom under the given predicate."""
    return Atom(pred, atom.terms)


def translate_cmp(cmp_: Cmp) -> Comparison:
    return cmp_.comparison


def _universal_args(variables: Iterable[Variable]) -> tuple[Variable, ...]:
    return tuple(sorted(set(variables), key=lambda v: v.name))


class _AuxNames:
    """Fresh aux/ins predicate names per translated constraint."""

    def __init__(self, reserved: set[str]) -> None:
        self._reserved = set(reserved)
        self._counter = 0

    def fresh(self, base: str) -> str:
        while True:
            self._counter += 1
            candidate = f"{base}{self._counter}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate


def dec_rules(constraint: Constraint, context: TranslationContext,
              aux: _AuxNames) -> list[Rule]:
    """Repair rules for one DEC (the rules (6)-(9) generalisation).

    Dispatches on the constraint family; see the per-family helpers.
    """
    if isinstance(constraint, TupleGeneratingConstraint):
        return _tgd_rules(constraint, context, aux)
    if isinstance(constraint, EqualityGeneratingConstraint):
        return _egd_rules(constraint, context)
    if isinstance(constraint, DenialConstraint):
        return _denial_rules(constraint, context)
    raise SystemError_(
        f"unsupported constraint type {type(constraint).__name__} in ASP "
        f"translation")


def _deletion_heads(antecedent: Sequence[RelAtom],
                    context: TranslationContext) -> list[Literal]:
    """``-R'(x̄)`` head literals for the changeable antecedent atoms."""
    heads = []
    for atom in antecedent:
        if atom.relation in context.changeable:
            primed = context.name_map.primed(atom.relation)
            heads.append(Literal(translate_atom(atom, primed),
                                 positive=False))
    return heads


def _trigger_body(antecedent: Sequence[RelAtom],
                  conditions: Sequence[Cmp],
                  context: TranslationContext) -> list:
    body: list = [Literal(translate_atom(a, context.body_pred(a.relation)))
                  for a in antecedent]
    body.extend(translate_cmp(c) for c in conditions)
    return body


def _tgd_rules(constraint: TupleGeneratingConstraint,
               context: TranslationContext, aux: _AuxNames) -> list[Rule]:
    rules: list[Rule] = []
    trigger = _trigger_body(constraint.antecedent, constraint.conditions,
                            context)
    deletions = _deletion_heads(constraint.antecedent, context)

    fixed_consequent = [a for a in constraint.consequent
                        if a.relation not in context.changeable]
    insertable = [a for a in constraint.consequent
                  if a.relation in context.changeable]

    for condition in constraint.cons_conditions:
        allowed = constraint.universal_vars | set().union(
            *(a.free_variables() for a in fixed_consequent)) \
            if fixed_consequent else constraint.universal_vars
        allowed = set(allowed) | constraint.existential_vars
        if not condition.free_variables() <= allowed:
            raise SystemError_(
                f"consequent condition {condition} of {constraint.name} "
                f"is outside the supported ASP fragment")

    # aux1: the consequent is already satisfied at the source level
    # (rule (7): aux1(x,z) <- R2(x,w), S2(z,w)).
    consequent_uvars = _universal_args(
        v for a in constraint.consequent
        for v in a.free_variables() & constraint.universal_vars)
    aux1 = aux.fresh("aux1_")
    aux1_head = Atom(aux1, consequent_uvars)
    aux1_body: list = [
        Literal(translate_atom(a, context.body_pred(a.relation)))
        for a in constraint.consequent]
    aux1_body.extend(translate_cmp(c) for c in constraint.cons_conditions)
    rules.append(Rule(head=[aux1_head], body=aux1_body))
    aux1_literal = Literal(Atom(aux1, consequent_uvars), naf=True)

    if constraint.existential_vars and fixed_consequent:
        # aux2: a witness value exists among the fixed consequent atoms
        # (rule (8): aux2(z) <- S2(z,w)).
        aux2_uvars = _universal_args(
            v for a in fixed_consequent
            for v in a.free_variables() & constraint.universal_vars)
        aux2 = aux.fresh("aux2_")
        aux2_body: list = [
            Literal(translate_atom(a, context.body_pred(a.relation)))
            for a in fixed_consequent]
        rules.append(Rule(head=[Atom(aux2, aux2_uvars)], body=aux2_body))
        no_witness_literal: Optional[Literal] = Literal(
            Atom(aux2, aux2_uvars), naf=True)
    else:
        no_witness_literal = None

    if not insertable:
        # No insertions possible: violations force deletions (or are
        # outright inconsistencies when nothing is deletable either).
        body = trigger + [aux1_literal]
        rules.append(Rule(head=deletions, body=body))
        return rules

    # Rule (6) generalisation: when no witness is available, delete.
    if no_witness_literal is not None:
        rules.append(Rule(head=deletions,
                          body=trigger + [aux1_literal,
                                          no_witness_literal]))

    # Rule (9) generalisation: delete or insert a chosen witness.
    witness_atoms = [
        Literal(translate_atom(a, context.body_pred(a.relation)))
        for a in fixed_consequent]
    choice_domain = _universal_args(
        v for a in constraint.consequent
        for v in a.free_variables() & constraint.universal_vars)
    exist_vars = _universal_args(constraint.existential_vars)
    body = trigger + [aux1_literal] + witness_atoms
    body.extend(translate_cmp(c) for c in constraint.cons_conditions)
    if exist_vars and not fixed_consequent:
        # unguarded witnesses range over the active domain
        context.domain_used = True
        body.extend(Literal(Atom(context.domain_pred, (v,)))
                    for v in exist_vars)
    if exist_vars:
        body.append(ChoiceGoal(choice_domain, exist_vars))

    if len(insertable) == 1:
        insert_heads = [Literal(translate_atom(
            insertable[0],
            context.name_map.primed(insertable[0].relation)))]
        rules.append(Rule(head=deletions + insert_heads, body=body))
    else:
        # several atoms must be inserted together: use an `ins` marker
        ins = aux.fresh("ins_")
        ins_args = tuple(choice_domain) + tuple(exist_vars)
        ins_atom = Atom(ins, ins_args)
        rules.append(Rule(head=deletions + [Literal(ins_atom)], body=body))
        for atom in insertable:
            rules.append(Rule(
                head=[translate_atom(
                    atom, context.name_map.primed(atom.relation))],
                body=[Literal(ins_atom)]))
    return rules


def _egd_rules(constraint: EqualityGeneratingConstraint,
               context: TranslationContext) -> list[Rule]:
    rules = []
    deletions = _deletion_heads(constraint.antecedent, context)
    trigger = _trigger_body(constraint.antecedent, constraint.conditions,
                            context)
    for left, right in constraint.equalities:
        body = trigger + [Comparison("!=", left, right)]
        rules.append(Rule(head=deletions, body=body))
    return rules


def _denial_rules(constraint: DenialConstraint,
                  context: TranslationContext) -> list[Rule]:
    deletions = _deletion_heads(constraint.antecedent, context)
    trigger = _trigger_body(constraint.antecedent, constraint.conditions,
                            context)
    return [Rule(head=deletions, body=trigger)]


def hard_constraint_rules(constraint: Constraint,
                          context: TranslationContext,
                          aux: _AuxNames) -> list[Rule]:
    """Encode a constraint that must HOLD of the solution state (no repair
    options): used for the stage-2 `less` DECs (Definition 4(c3)) and for
    local ICs expressed over the virtual relations (Section 3.2)."""
    if isinstance(constraint, TupleGeneratingConstraint):
        rules: list[Rule] = []
        sat = aux.fresh("sat_")
        uvars = _universal_args(
            v for a in constraint.consequent
            for v in a.free_variables() & constraint.universal_vars)
        sat_body: list = [
            Literal(translate_atom(a, context.solution_pred(a.relation)))
            for a in constraint.consequent]
        sat_body.extend(translate_cmp(c)
                        for c in constraint.cons_conditions)
        rules.append(Rule(head=[Atom(sat, uvars)], body=sat_body))
        constraint_body: list = [
            Literal(translate_atom(a, context.solution_pred(a.relation)))
            for a in constraint.antecedent]
        constraint_body.extend(translate_cmp(c)
                               for c in constraint.conditions)
        constraint_body.append(Literal(Atom(sat, uvars), naf=True))
        rules.append(Rule(head=(), body=constraint_body))
        return rules
    if isinstance(constraint, EqualityGeneratingConstraint):
        rules = []
        body_atoms: list = [
            Literal(translate_atom(a, context.solution_pred(a.relation)))
            for a in constraint.antecedent]
        body_atoms.extend(translate_cmp(c) for c in constraint.conditions)
        for left, right in constraint.equalities:
            rules.append(Rule(head=(), body=body_atoms
                              + [Comparison("!=", left, right)]))
        return rules
    if isinstance(constraint, DenialConstraint):
        body_atoms = [
            Literal(translate_atom(a, context.solution_pred(a.relation)))
            for a in constraint.antecedent]
        body_atoms.extend(translate_cmp(c) for c in constraint.conditions)
        return [Rule(head=(), body=body_atoms)]
    raise SystemError_(
        f"unsupported constraint type {type(constraint).__name__} in ASP "
        f"translation")


def local_ic_rules(constraints: Iterable[Constraint],
                   context: TranslationContext,
                   aux: _AuxNames) -> list[Rule]:
    """Local ICs as program denial constraints over the solution state
    (Section 3.2: "program should take care of those constraints ...
    using program denial constraints")."""
    rules: list[Rule] = []
    for constraint in constraints:
        rules.extend(hard_constraint_rules(constraint, context, aux))
    return rules


def decode_model(model: Iterable[Literal], base: DatabaseInstance,
                 context: TranslationContext) -> DatabaseInstance:
    """Read a solution instance off an answer set.

    Changeable (and foreign-primed) relations take their primed contents;
    all other relations keep their source tuples from ``base``.
    """
    replaced: dict[str, set[tuple]] = {
        relation: set()
        for relation in context.changeable | context.foreign_primed
        if relation in base.schema}
    for literal in model:
        if not literal.positive or literal.naf:
            continue
        relation = context.name_map.relation_of_primed(literal.predicate)
        if relation is None or relation not in replaced:
            continue
        replaced[relation].add(literal.atom.value_tuple())
    return base.replace_relations(replaced)


def make_aux_names(name_map: NameMap,
                   extra_reserved: Iterable[str] = ()) -> _AuxNames:
    """Aux-name factory avoiding the relation predicates."""
    return _AuxNames(name_map.reserved_predicates() | set(extra_reserved))
