"""Declarative (JSON-friendly) system definitions.

A downstream user should not have to write Python object constructions to
describe a peer network.  :func:`system_from_dict` builds a
:class:`~repro.core.system.PeerSystem` from a plain dictionary (e.g.
loaded from a JSON file), and :func:`system_to_dict` round-trips it back.

Schema (all atoms and conditions use the FO query syntax of
:mod:`repro.relational.query_parser`)::

    {
      "peers": {
        "P1": {
          "schema":    {"R1": 2},
          "instance":  {"R1": [["a", "b"], ["s", "t"]]},
          "local_ics": [{"type": "fd", "relation": "R1",
                         "lhs": [0], "rhs": [1]}]
        },
        ...
      },
      "exchanges": [
        {"owner": "P1", "other": "P2",
         "constraint": {"type": "inclusion",
                        "child": "R2", "parent": "R1"}},
        {"owner": "P1", "other": "P3",
         "constraint": {"type": "egd",
                        "antecedent": ["R1(X, Y)", "R3(X, Z)"],
                        "equalities": [["Y", "Z"]]}}
      ],
      "trust": [["P1", "less", "P2"], ["P1", "same", "P3"]]
    }

Constraint types: ``inclusion`` (full or positional), ``tgd``, ``egd``,
``fd``, ``key``, ``denial``.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from ..datalog.terms import Constant, Variable
from ..storage.tables import row_sort_key
from ..relational.constraints import (
    Constraint,
    DenialConstraint,
    EqualityGeneratingConstraint,
    FunctionalDependency,
    InclusionDependency,
    KeyConstraint,
    TupleGeneratingConstraint,
)
from ..relational.query import Cmp, RelAtom
from ..relational.query_parser import parse_formula
from ..relational.schema import DatabaseSchema, RelationSchema
from .errors import SystemError_
from .system import PeerSystem

__all__ = ["system_from_dict", "system_to_dict", "load_system",
           "dump_system", "constraint_from_dict", "constraint_to_dict",
           "schema_from_spec", "schema_to_spec"]


def schema_from_spec(spec: Mapping) -> DatabaseSchema:
    """Build a schema from its dictionary form.

    Each relation maps either to a bare arity (``{"R1": 2}``) or, when
    attribute names matter, to ``{"arity": 2, "attributes": ["a", "b"]}``.
    """
    relations = []
    for name, entry in spec.items():
        if isinstance(entry, Mapping):
            relations.append(RelationSchema(name, entry["arity"],
                                            entry.get("attributes")))
        else:
            relations.append(RelationSchema(name, entry))
    return DatabaseSchema(relations)


def schema_to_spec(schema: DatabaseSchema) -> dict:
    """Serialise a schema (inverse of :func:`schema_from_spec`).

    Default attribute names (``a0, a1, ...``) collapse to the bare-arity
    shorthand; custom names round-trip explicitly — they used to be
    silently dropped.
    """
    spec: dict = {}
    for relation in schema:
        default = tuple(f"a{i}" for i in range(relation.arity))
        if relation.attributes == default:
            spec[relation.name] = relation.arity
        else:
            spec[relation.name] = {"arity": relation.arity,
                                   "attributes":
                                   list(relation.attributes)}
    return spec


def _parse_atom(text: str) -> RelAtom:
    formula = parse_formula(text)
    if not isinstance(formula, RelAtom):
        raise SystemError_(f"expected a relation atom, got {text!r}")
    return formula


def _parse_atoms(texts: Sequence[str]) -> list[RelAtom]:
    return [_parse_atom(t) for t in texts]


def _parse_conditions(texts: Sequence[str]) -> list[Cmp]:
    out = []
    for text in texts:
        formula = parse_formula(text)
        if not isinstance(formula, Cmp):
            raise SystemError_(f"expected a comparison, got {text!r}")
        out.append(formula)
    return out


def _parse_term(text: str):
    if isinstance(text, int):
        return Constant(text)
    if text and (text[0].isupper() or text[0] == "_"):
        return Variable(text)
    return Constant(text)


def constraint_from_dict(data: Mapping) -> Constraint:
    """Build a constraint from its dictionary form."""
    kind = data.get("type")
    name = data.get("name")
    if kind == "inclusion":
        return InclusionDependency(
            data["child"], data["parent"],
            child_positions=data.get("child_positions"),
            parent_positions=data.get("parent_positions"),
            child_arity=data.get("child_arity"),
            parent_arity=data.get("parent_arity"),
            name=name)
    if kind == "tgd":
        return TupleGeneratingConstraint(
            antecedent=_parse_atoms(data["antecedent"]),
            consequent=_parse_atoms(data["consequent"]),
            conditions=_parse_conditions(data.get("conditions", [])),
            cons_conditions=_parse_conditions(
                data.get("cons_conditions", [])),
            name=name)
    if kind == "egd":
        equalities = [(_parse_term(left), _parse_term(right))
                      for left, right in data["equalities"]]
        return EqualityGeneratingConstraint(
            antecedent=_parse_atoms(data["antecedent"]),
            equalities=equalities,
            conditions=_parse_conditions(data.get("conditions", [])),
            name=name)
    if kind == "fd":
        return FunctionalDependency(
            data["relation"], data["lhs"], data["rhs"],
            arity=data["arity"], name=name)
    if kind == "key":
        return KeyConstraint(data["relation"], data["key"],
                             arity=data["arity"], name=name)
    if kind == "denial":
        return DenialConstraint(
            antecedent=_parse_atoms(data["antecedent"]),
            conditions=_parse_conditions(data.get("conditions", [])),
            name=name)
    raise SystemError_(f"unknown constraint type {kind!r}")


def constraint_to_dict(constraint: Constraint) -> dict:
    """Serialise a constraint (inverse of :func:`constraint_from_dict`)."""
    if isinstance(constraint, KeyConstraint):
        return {"type": "key", "relation": constraint.relation_name,
                "key": list(constraint.key_positions),
                "arity": constraint.arity, "name": constraint.name}
    if isinstance(constraint, FunctionalDependency):
        return {"type": "fd", "relation": constraint.relation_name,
                "lhs": list(constraint.lhs), "rhs": list(constraint.rhs),
                "arity": constraint.arity, "name": constraint.name}
    if isinstance(constraint, InclusionDependency):
        return {"type": "inclusion", "child": constraint.child,
                "parent": constraint.parent,
                "child_positions": list(constraint.child_positions),
                "parent_positions": list(constraint.parent_positions),
                "child_arity": len(constraint.antecedent[0].terms),
                "parent_arity": len(constraint.consequent[0].terms),
                "name": constraint.name}
    if isinstance(constraint, TupleGeneratingConstraint):
        return {"type": "tgd",
                "antecedent": [str(a) for a in constraint.antecedent],
                "consequent": [str(a) for a in constraint.consequent],
                "conditions": [str(c) for c in constraint.conditions],
                "cons_conditions": [str(c) for c in
                                    constraint.cons_conditions],
                "name": constraint.name}
    if isinstance(constraint, EqualityGeneratingConstraint):
        return {"type": "egd",
                "antecedent": [str(a) for a in constraint.antecedent],
                "equalities": [[str(left), str(right)]
                               for left, right in constraint.equalities],
                "conditions": [str(c) for c in constraint.conditions],
                "name": constraint.name}
    if isinstance(constraint, DenialConstraint):
        return {"type": "denial",
                "antecedent": [str(a) for a in constraint.antecedent],
                "conditions": [str(c) for c in constraint.conditions],
                "name": constraint.name}
    raise SystemError_(
        f"cannot serialise constraint type {type(constraint).__name__}")


def system_from_dict(data: Mapping, *,
                     enforce_local_ics: bool = True) -> PeerSystem:
    """Build a :class:`PeerSystem` from its dictionary form.

    Thin wrapper over :class:`~repro.core.builder.SystemBuilder`, so the
    JSON route and programmatic construction share one code path.
    """
    builder = PeerSystem.builder().enforce_local_ics(enforce_local_ics)
    for name, spec in data.get("peers", {}).items():
        builder.peer(name, schema_from_spec(spec["schema"]),
                     instance={relation: [tuple(row) for row in rows]
                               for relation, rows
                               in spec.get("instance", {}).items()},
                     local_ics=[constraint_from_dict(c)
                                for c in spec.get("local_ics", [])])
    for e in data.get("exchanges", []):
        builder.exchange(e["owner"], e["other"],
                         constraint_from_dict(e["constraint"]))
    builder.trust_edges(tuple(edge) for edge in data.get("trust", []))
    return builder.build()


def system_to_dict(system: PeerSystem) -> dict:
    """Serialise a system (inverse of :func:`system_from_dict`)."""
    peers: dict = {}
    for name, peer in system.peers.items():
        instance = system.instances[name]
        peers[name] = {
            "schema": schema_to_spec(peer.schema),
            # rows sorted with the mixed-type-safe key: a relation
            # holding both ints and strings in one column used to crash
            # the bare sorted() here
            "instance": {relation: [list(row) for row in sorted(
                instance.tuples(relation), key=row_sort_key)]
                for relation in peer.schema.names
                if instance.tuples(relation)},
            "local_ics": [constraint_to_dict(c)
                          for c in peer.local_ics],
        }
    return {
        "peers": peers,
        "exchanges": [{"owner": e.owner, "other": e.other,
                       "constraint": constraint_to_dict(e.constraint)}
                      for e in system.exchanges],
        "trust": [[owner, str(level), other]
                  for owner, level, other in system.trust.edges()],
    }


def load_system(path: str, **kwargs) -> PeerSystem:
    """Load a system from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return system_from_dict(json.load(handle), **kwargs)


def dump_system(system: PeerSystem, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(system_to_dict(system), handle, indent=2,
                  sort_keys=True)
