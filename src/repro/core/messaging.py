"""In-process peer messaging log.

The semantics of the paper is defined over the global instance (Definition
3), so no real networking is needed — but the *narrative* of query
answering is peer-to-peer: "P1 will first issue a query to P2 to retrieve
the tuples in R2; next, a query is issued to P3 ..." (Example 2).  The
:class:`ExchangeLog` records exactly those data requests so examples and
tests can observe who asked whom for what, and how many tuples flowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["ExchangeEvent", "ExchangeLog"]


@dataclass(frozen=True)
class ExchangeEvent:
    """One peer-to-peer data request."""

    requester: str
    provider: str
    relation: str
    tuples_transferred: int
    purpose: str = ""

    def __str__(self) -> str:
        note = f" ({self.purpose})" if self.purpose else ""
        return (f"{self.requester} <- {self.provider}: "
                f"{self.relation} [{self.tuples_transferred} tuples]{note}")


class ExchangeLog:
    """An append-only log of :class:`ExchangeEvent`."""

    def __init__(self) -> None:
        self._events: list[ExchangeEvent] = []

    def record(self, requester: str, provider: str, relation: str,
               tuples_transferred: int, purpose: str = "") -> None:
        if requester != provider:  # local reads are not exchanges
            self._events.append(ExchangeEvent(
                requester, provider, relation, tuples_transferred, purpose))

    def events(self, requester: Optional[str] = None
               ) -> list[ExchangeEvent]:
        if requester is None:
            return list(self._events)
        return [e for e in self._events if e.requester == requester]

    def total_tuples(self) -> int:
        return sum(e.tuples_transferred for e in self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ExchangeEvent]:
        return iter(self._events)
