"""In-process peer messaging log.

The semantics of the paper is defined over the global instance (Definition
3), so no real networking is needed — but the *narrative* of query
answering is peer-to-peer: "P1 will first issue a query to P2 to retrieve
the tuples in R2; next, a query is issued to P3 ..." (Example 2).  The
:class:`ExchangeLog` records exactly those data requests so examples and
tests can observe who asked whom for what, and how many tuples flowed.

The log is shared state: the :mod:`repro.net` runtime appends to it from
several node worker threads at once, so every operation takes the log's
lock, and iteration walks a snapshot rather than the live list.  Events
carry a serialized-size estimate (:func:`estimate_bytes`) and the hop
count the payload travelled, which :meth:`ExchangeLog.stats_since` folds
into the :class:`~repro.core.results.ExchangeStats` attached to each
:class:`~repro.core.results.QueryResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["ExchangeEvent", "ExchangeLog", "estimate_bytes"]


def estimate_bytes(rows: Iterable[tuple]) -> int:
    """A cheap serialized-size estimate for a set of tuples.

    Each value contributes its textual length plus two bytes of framing
    (delimiter + separator) — close enough to a JSON/CSV wire encoding to
    make per-query traffic comparable, without ever serializing anything.
    """
    total = 0
    for row in rows:
        total += sum(len(str(value)) + 2 for value in row) + 2
    return total


@dataclass(frozen=True)
class ExchangeEvent:
    """One peer-to-peer data request.

    ``bytes_estimate`` approximates the payload's serialized size
    (:func:`estimate_bytes`); ``hop`` is how many network hops the data
    travelled to reach the requester (1 for a direct neighbour fetch,
    more when an intermediate peer relayed it).  ``timestamp`` is the
    recording process's ``time.monotonic()`` at record time (0.0 on
    events predating it, e.g. replayed from old captures) — deltas
    between events of one process give durations and rates; values are
    not comparable across processes or to wall-clock time.
    """

    requester: str
    provider: str
    relation: str
    tuples_transferred: int
    purpose: str = ""
    bytes_estimate: int = 0
    hop: int = 1
    timestamp: float = 0.0

    def __str__(self) -> str:
        note = f" ({self.purpose})" if self.purpose else ""
        hops = f" hop {self.hop}" if self.hop > 1 else ""
        return (f"{self.requester} <- {self.provider}: "
                f"{self.relation} [{self.tuples_transferred} tuples, "
                f"~{self.bytes_estimate} B]{hops}{note}")


class ExchangeLog:
    """An append-only, thread-safe log of :class:`ExchangeEvent`."""

    def __init__(self) -> None:
        self._events: list[ExchangeEvent] = []
        self._lock = threading.Lock()

    def record(self, requester: str, provider: str, relation: str,
               tuples_transferred: int, purpose: str = "", *,
               bytes_estimate: int = 0, hop: int = 1) -> None:
        if requester == provider:  # local reads are not exchanges
            return
        event = ExchangeEvent(requester, provider, relation,
                              tuples_transferred, purpose,
                              bytes_estimate, hop,
                              timestamp=time.monotonic())
        with self._lock:
            self._events.append(event)

    def record_event(self, event: ExchangeEvent) -> None:
        if event.requester == event.provider:
            return
        if event.timestamp == 0.0:
            import dataclasses
            event = dataclasses.replace(event,
                                        timestamp=time.monotonic())
        with self._lock:
            self._events.append(event)

    def events(self, requester: Optional[str] = None
               ) -> list[ExchangeEvent]:
        with self._lock:
            snapshot = list(self._events)
        if requester is None:
            return snapshot
        return [e for e in snapshot if e.requester == requester]

    # ------------------------------------------------------------------
    # Positional slicing: attribute traffic to one operation even while
    # other threads keep appending (their events land after the mark).
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """A position token for :meth:`events_since`/:meth:`stats_since`."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> list[ExchangeEvent]:
        with self._lock:
            return list(self._events[mark:])

    def stats_since(self, mark: int):
        """Aggregate the events after ``mark`` into
        :class:`~repro.core.results.ExchangeStats` — the real logged
        traffic, not a synthesised count."""
        from .results import ExchangeStats
        events = self.events_since(mark)
        return ExchangeStats(
            requests=len(events),
            tuples_transferred=sum(e.tuples_transferred for e in events),
            bytes_estimate=sum(e.bytes_estimate for e in events),
            max_hops=max((e.hop for e in events), default=0),
        )

    def duration_since(self, mark: int) -> float:
        """Seconds between the first and last timestamped event after
        ``mark`` — the observed span of the traffic
        :meth:`stats_since` aggregates (0.0 when fewer than two events
        carry timestamps)."""
        stamps = [e.timestamp for e in self.events_since(mark)
                  if e.timestamp > 0.0]
        if len(stamps) < 2:
            return 0.0
        return max(stamps) - min(stamps)

    def total_tuples(self) -> int:
        with self._lock:
            return sum(e.tuples_transferred for e in self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[ExchangeEvent]:
        return iter(self.events())
