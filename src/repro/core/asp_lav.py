"""The LAV-style three-layer specification (Section 4.2 and the Appendix).

The local-as-view reading of a peer's DECs treats the *material* relations
as views over virtual, solution-level relations, each labelled

* ``closed`` — the virtual relation is contained in the source (it may
  only *shrink*: the antecedent-side relations of the peer, like R1),
* ``open``   — the virtual relation contains the source (it may only
  *grow*: the consequent-side relations, like R2),
* ``clopen`` — both (fixed: the more-trusted peer's relations S1, S2).

The program has the Appendix's three layers, written with *annotation
constants* in the last argument position ([3]):

1. **legal instances**: ``R'(x̄, td) ← R(x̄)`` imports the sources, and
   closure denials ``← R'(x̄, td), not R(x̄)`` pin closed/clopen sources
   (the Appendix misprints these without the ``not``; see DESIGN.md);
2. **repairs**: ``td``/``ta`` (advisory insert) / ``fa`` (advisory delete)
   combine into the solution annotation ``tss``; the DEC's violation rules
   derive ``fa`` / ``ta`` atoms, with the choice operator unfolded into its
   stable version (``chosen``/``diffchoice``), exactly as printed;
3. **trust discipline**: closed relations only ever get ``fa``, open ones
   only ``ta``, clopen ones neither — this is how "the rules that repair
   the chosen legal instances will consider only tuple deletions
   (insertions) for ... closed (resp. open) sources" is realised.

Solutions are the ``tss``-annotated atoms of each stable model.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..datalog.engine import AnswerSetEngine
from ..datalog.program import Program, Rule
from ..datalog.terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Variable,
)
from ..relational.constraints import (
    Constraint,
    EqualityGeneratingConstraint,
    TupleGeneratingConstraint,
)
from ..relational.instance import DatabaseInstance
from .errors import SystemError_
from .naming import NameMap
from .system import PeerSystem
from .trust import TrustLevel

__all__ = ["SourceLabel", "LavSpecification", "labels_for_peer"]

TD = Constant("td")
TA = Constant("ta")
FA = Constant("fa")
TSS = Constant("tss")


class SourceLabel:
    """Per-relation openness label."""

    CLOSED = "closed"
    OPEN = "open"
    CLOPEN = "clopen"


def labels_for_peer(system: PeerSystem, peer: str) -> dict[str, str]:
    """Derive the source labels for a peer with `less`-trusted DECs.

    Antecedent-side own relations are closed, consequent-side own
    relations are open, the trusted neighbour's relations are clopen —
    exactly the Appendix's table.  A relation on both sides falls outside
    the Appendix's class and raises.
    """
    own = set(system.peer(peer).schema.names)
    labels: dict[str, str] = {}
    for exchange in system.trusted_decs_of(peer, TrustLevel.LESS):
        constraint = exchange.constraint
        if not isinstance(constraint, TupleGeneratingConstraint):
            raise SystemError_(
                f"LAV labelling expects referential (tuple-generating) "
                f"DECs; {constraint.name} is "
                f"{type(constraint).__name__}")
        for atom in constraint.antecedent:
            relation = atom.relation
            if relation in own:
                if labels.get(relation) == SourceLabel.OPEN:
                    raise SystemError_(
                        f"relation {relation!r} appears on both sides of "
                        f"the DECs; outside the LAV class")
                labels[relation] = SourceLabel.CLOSED
            else:
                labels[relation] = SourceLabel.CLOPEN
        for atom in constraint.consequent:
            relation = atom.relation
            if relation in own:
                if labels.get(relation) == SourceLabel.CLOSED:
                    raise SystemError_(
                        f"relation {relation!r} appears on both sides of "
                        f"the DECs; outside the LAV class")
                labels[relation] = SourceLabel.OPEN
            else:
                labels[relation] = SourceLabel.CLOPEN
    if system.trusted_decs_of(peer, TrustLevel.SAME):
        raise SystemError_(
            "the LAV construction of Section 4.2 covers `less`-trusted "
            "DECs (fixed neighbour data); use the GAV builder for `same`")
    return labels


class LavSpecification:
    """The three-layer program for one peer's solutions."""

    def __init__(self, instance: DatabaseInstance,
                 decs: Sequence[Constraint],
                 labels: dict[str, str]) -> None:
        self.instance = instance
        self.decs = tuple(decs)
        self.labels = dict(labels)
        for constraint in self.decs:
            missing = constraint.relations() - set(self.labels)
            if missing:
                raise SystemError_(
                    f"DEC {constraint.name} mentions unlabelled relations "
                    f"{sorted(missing)}")
        unknown = set(self.labels) - set(instance.relations())
        if unknown:
            raise SystemError_(
                f"labels for relations {sorted(unknown)} missing from the "
                f"instance")
        self.name_map = NameMap(self.labels)
        self._program: Optional[Program] = None
        self._engine: Optional[AnswerSetEngine] = None

    # ------------------------------------------------------------------
    def _annotated(self, relation: str, terms: Sequence, annotation:
                   Constant) -> Atom:
        return Atom(self.name_map.primed(relation),
                    tuple(terms) + (annotation,))

    def _layer1_rules(self) -> list[Rule]:
        rules: list[Rule] = []
        for relation in sorted(self.labels):
            arity = self.instance.schema.arity(relation)
            variables = tuple(Variable(f"X{i}") for i in range(arity))
            source = Atom(self.name_map.source(relation), variables)
            rules.append(Rule(head=[self._annotated(relation, variables,
                                                    TD)],
                              body=[Literal(source)]))
            if self.labels[relation] in (SourceLabel.CLOSED,
                                         SourceLabel.CLOPEN):
                # corrected closure denial (Appendix misprint):
                # :- R'(x̄, td), not R(x̄).
                rules.append(Rule(head=(), body=[
                    Literal(self._annotated(relation, variables, TD)),
                    Literal(source, naf=True)]))
        return rules

    def _layer2_scaffold(self) -> list[Rule]:
        rules: list[Rule] = []
        for relation in sorted(self.labels):
            arity = self.instance.schema.arity(relation)
            variables = tuple(Variable(f"X{i}") for i in range(arity))
            td = self._annotated(relation, variables, TD)
            ta = self._annotated(relation, variables, TA)
            fa = self._annotated(relation, variables, FA)
            tss = self._annotated(relation, variables, TSS)
            rules.append(Rule(head=[tss],
                              body=[Literal(td), Literal(fa, naf=True)]))
            rules.append(Rule(head=[tss], body=[Literal(ta)]))
            rules.append(Rule(head=(), body=[Literal(ta), Literal(fa)]))
        return rules

    def _dec_repair_rules(self) -> list[Rule]:
        rules: list[Rule] = []
        counter = 0
        for constraint in self.decs:
            counter += 1
            if isinstance(constraint, TupleGeneratingConstraint):
                rules.extend(self._tgd_repair_rules(constraint, counter))
            elif isinstance(constraint, EqualityGeneratingConstraint):
                rules.extend(self._egd_repair_rules(constraint))
            else:
                raise SystemError_(
                    f"LAV repair layer supports TGD/EGD DECs, not "
                    f"{type(constraint).__name__}")
        return rules

    def _tgd_repair_rules(self, constraint: TupleGeneratingConstraint,
                          index: int) -> list[Rule]:
        closed_ant = [a for a in constraint.antecedent
                      if self.labels[a.relation] == SourceLabel.CLOSED]
        open_cons = [a for a in constraint.consequent
                     if self.labels[a.relation] == SourceLabel.OPEN]
        clopen_cons = [a for a in constraint.consequent
                       if self.labels[a.relation] == SourceLabel.CLOPEN]
        if constraint.cons_conditions:
            raise SystemError_(
                "LAV repair layer does not support consequent conditions")

        trigger: list = [
            Literal(self._annotated(a.relation, a.terms, TD))
            for a in constraint.antecedent]
        trigger.extend(c.comparison for c in constraint.conditions)

        deletion_heads = [
            Literal(self._annotated(a.relation, a.terms, FA))
            for a in closed_ant]

        uvars_consequent = tuple(sorted(
            {v for a in constraint.consequent
             for v in a.free_variables() & constraint.universal_vars},
            key=lambda v: v.name))
        aux1 = Atom(f"aux{2 * index - 1}", uvars_consequent)
        aux1_body = [Literal(self._annotated(a.relation, a.terms, TD))
                     for a in constraint.consequent]
        rules = [Rule(head=[aux1], body=aux1_body)]
        not_aux1 = Literal(aux1, naf=True)

        exist_vars = tuple(sorted(constraint.existential_vars,
                                  key=lambda v: v.name))
        if exist_vars and clopen_cons:
            uvars_clopen = tuple(sorted(
                {v for a in clopen_cons
                 for v in a.free_variables() & constraint.universal_vars},
                key=lambda v: v.name))
            aux2 = Atom(f"aux{2 * index}", uvars_clopen)
            rules.append(Rule(
                head=[aux2],
                body=[Literal(self._annotated(a.relation, a.terms, TD))
                      for a in clopen_cons]))
            rules.append(Rule(head=deletion_heads,
                              body=trigger + [not_aux1,
                                              Literal(aux2, naf=True)]))
        elif not open_cons:
            rules.append(Rule(head=deletion_heads,
                              body=trigger + [not_aux1]))

        if open_cons:
            witness_atoms = [
                Literal(self._annotated(a.relation, a.terms, TD))
                for a in clopen_cons]
            insert_heads = [
                Literal(self._annotated(a.relation, a.terms, TA))
                for a in open_cons]
            body = trigger + [not_aux1] + witness_atoms
            choice_domain = tuple(sorted(
                {v for a in constraint.consequent
                 for v in a.free_variables() & constraint.universal_vars},
                key=lambda v: v.name))
            if exist_vars:
                body.append(ChoiceGoal(choice_domain, exist_vars))
            if len(insert_heads) > 1:
                raise SystemError_(
                    "LAV repair layer supports single-atom open "
                    "consequents (the paper's 'simple referential DECs')")
            rules.append(Rule(head=deletion_heads + insert_heads,
                              body=body))
        return rules

    def _egd_repair_rules(self, constraint: EqualityGeneratingConstraint
                          ) -> list[Rule]:
        deletion_heads = [
            Literal(self._annotated(a.relation, a.terms, FA))
            for a in constraint.antecedent
            if self.labels[a.relation] == SourceLabel.CLOSED]
        trigger: list = [
            Literal(self._annotated(a.relation, a.terms, TD))
            for a in constraint.antecedent]
        trigger.extend(c.comparison for c in constraint.conditions)
        rules = []
        for left, right in constraint.equalities:
            rules.append(Rule(head=deletion_heads,
                              body=trigger
                              + [Comparison("!=", left, right)]))
        return rules

    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        if self._program is None:
            rules = (self._layer1_rules() + self._layer2_scaffold()
                     + self._dec_repair_rules())
            facts = []
            for relation in sorted(self.labels):
                pred = self.name_map.source(relation)
                for values in sorted(
                        self.instance.tuples(relation),
                        key=lambda row: tuple((isinstance(v, str), str(v))
                                              for v in row)):
                    facts.append(Rule(head=[Atom(pred, values)]))
            self._program = Program(rules + facts)
        return self._program

    @property
    def engine(self) -> AnswerSetEngine:
        if self._engine is None:
            self._engine = AnswerSetEngine(self.program)
        return self._engine

    def answer_sets(self):
        return self.engine.answer_sets()

    def solutions(self) -> list[DatabaseInstance]:
        """The tss-projection of each stable model, as instances."""
        decoded: dict[DatabaseInstance, None] = {}
        for model in self.answer_sets():
            contents: dict[str, set[tuple]] = {r: set()
                                               for r in self.labels}
            for literal in model:
                if not literal.positive or literal.naf:
                    continue
                relation = self.name_map.relation_of_primed(
                    literal.predicate)
                if relation is None:
                    continue
                values = literal.atom.value_tuple()
                if values and values[-1] == "tss":
                    contents[relation].add(values[:-1])
            decoded.setdefault(
                self.instance.replace_relations(contents))
        return sorted(decoded, key=str)
