"""Transitive data exchange — Section 4.3, beyond direct solutions.

When peer A imports from B who in turn imports from C, no explicit DEC
relates A and C ("most likely there won't be any explicit DEC from A to C
... and we do not want to derive any").  Instead, the *local specification
programs are combined*: each relevant peer contributes its Section 3.1
rules, with one twist — where a peer's rules would read a neighbour's
relation, they read the neighbour's *virtual* (primed) version whenever
that neighbour's own program defines one (rules (10)–(13) of Example 4).

The paper defines the **global solutions** of the root peer *directly as
the answer sets of the combined program* (no extra minimisation — that is
the definition, not an approximation), and notes that the absence of
stable models signals the absence of solutions, with implicit *cyclic*
dependencies being the problematic case [19]; :attr:`has_cycles` exposes
the detection.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from ..datalog.engine import AnswerSetEngine
from ..datalog.program import Program, Rule
from ..datalog.terms import Atom
from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .asp_common import (
    TranslationContext,
    dec_rules,
    decode_model,
    instance_facts,
    local_ic_rules,
    make_aux_names,
)
from .errors import SystemError_
from .naming import NameMap
from .pca import PCAResult, pca_from_solutions
from .system import PeerSystem
from .trust import TrustLevel

__all__ = ["TransitiveSpecification", "global_solutions",
           "transitive_peer_consistent_answers"]


class TransitiveSpecification:
    """The combined specification program rooted at one peer."""

    def __init__(self, system: PeerSystem, root: str, *,
                 include_local_ics: bool = True) -> None:
        self.system = system
        self.root = system.peer(root).name
        self.include_local_ics = include_local_ics

        for peer_name in system.peers:
            if system.trusted_decs_of(peer_name, TrustLevel.SAME):
                raise SystemError_(
                    "the combined-program semantics of Section 4.3 is "
                    "defined for `less`-trusted chains; `same` edges need "
                    "the direct two-stage semantics")

        self.relevant_peers = self._reachable_peers()
        self.changeable_of: dict[str, set[str]] = {}
        for peer_name in self.relevant_peers:
            own = set(system.peer(peer_name).schema.names)
            changeable: set[str] = set()
            for exchange in system.trusted_decs_of(peer_name):
                changeable |= exchange.constraint.relations() & own
            self.changeable_of[peer_name] = changeable
        self.all_changeable: set[str] = set()
        for changeable in self.changeable_of.values():
            self.all_changeable |= changeable

        self.has_cycles = self._detect_cycles()
        self.global_instance = system.global_instance()
        self.name_map = NameMap(self.global_instance.relations())
        self._program: Optional[Program] = None
        self._engine: Optional[AnswerSetEngine] = None
        # context used for decoding: every changed relation is primed
        self._decode_context = TranslationContext(
            self.name_map, self.all_changeable)

    # ------------------------------------------------------------------
    def _reachable_peers(self) -> list[str]:
        seen = {self.root}
        queue = deque([self.root])
        order = [self.root]
        while queue:
            current = queue.popleft()
            for exchange in self.system.trusted_decs_of(current):
                if exchange.other not in seen:
                    seen.add(exchange.other)
                    order.append(exchange.other)
                    queue.append(exchange.other)
        return order

    def _detect_cycles(self) -> bool:
        """Peer-level cycle detection over trusted DEC edges."""
        colour: dict[str, int] = {}

        def visit(node: str) -> bool:
            colour[node] = 1
            for exchange in self.system.trusted_decs_of(node):
                other = exchange.other
                state = colour.get(other, 0)
                if state == 1:
                    return True
                if state == 0 and visit(other):
                    return True
            colour[node] = 2
            return False

        return any(visit(p) for p in self.relevant_peers
                   if colour.get(p, 0) == 0)

    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        if self._program is None:
            rules: list[Rule] = []
            deletable_relations: set[str] = set()
            contexts: list[TranslationContext] = []
            for peer_name in self.relevant_peers:
                changeable = self.changeable_of[peer_name]
                decs = [e.constraint
                        for e in self.system.trusted_decs_of(peer_name)]
                if not decs:
                    continue
                foreign_primed = (self.all_changeable - changeable) & \
                    self._relations_referenced(decs)
                context = TranslationContext(self.name_map, changeable,
                                             foreign_primed)
                contexts.append(context)
                aux = make_aux_names(
                    self.name_map,
                    extra_reserved=self._aux_names_so_far(rules))
                for constraint in decs:
                    rules.extend(dec_rules(constraint, context, aux))
                if self.include_local_ics:
                    rules.extend(local_ic_rules(
                        self.system.peer(peer_name).local_ics, context,
                        aux))
            for rule in rules:
                for literal in rule.head:
                    if not literal.positive:
                        relation = self.name_map.relation_of_primed(
                            literal.predicate)
                        if relation is not None:
                            deletable_relations.add(relation)
            rules.extend(self._persistence_rules(deletable_relations))
            facts = instance_facts(self.global_instance,
                                   self.global_instance.relations(),
                                   self.name_map)
            if any(c.domain_used for c in contexts):
                for value in sorted(
                        self.global_instance.active_domain(),
                        key=lambda v: (isinstance(v, str), str(v))):
                    facts.append(Rule(head=[Atom("dom", (value,))]))
            self._program = Program(rules + facts)
        return self._program

    def _relations_referenced(self, decs) -> set[str]:
        referenced: set[str] = set()
        for constraint in decs:
            referenced |= constraint.relations()
        return referenced

    def _aux_names_so_far(self, rules: Sequence[Rule]) -> set[str]:
        names: set[str] = set()
        for rule in rules:
            names |= rule.predicates()
        return names

    def _persistence_rules(self, deletable: set[str]) -> list[Rule]:
        from ..datalog.terms import Literal, Variable
        rules = []
        for relation in sorted(self.all_changeable):
            arity = self.global_instance.schema.arity(relation)
            variables = tuple(Variable(f"X{i}") for i in range(arity))
            source_atom = Atom(self.name_map.source(relation), variables)
            primed_atom = Atom(self.name_map.primed(relation), variables)
            body: list = [Literal(source_atom)]
            if relation in deletable:
                body.append(Literal(primed_atom, positive=False,
                                    naf=True))
            rules.append(Rule(head=[primed_atom], body=body))
        return rules

    # ------------------------------------------------------------------
    @property
    def engine(self) -> AnswerSetEngine:
        if self._engine is None:
            self._engine = AnswerSetEngine(self.program)
        return self._engine

    def answer_sets(self):
        return self.engine.answer_sets()

    def solutions(self) -> list[DatabaseInstance]:
        """Global solutions = decoded answer sets (Section 4.3 semantics —
        no extra minimisation on top of the stable models)."""
        decoded: dict[DatabaseInstance, None] = {}
        for model in self.answer_sets():
            decoded.setdefault(decode_model(model, self.global_instance,
                                            self._decode_context))
        return sorted(decoded, key=str)


def global_solutions(system: PeerSystem, root: str,
                     **kwargs) -> list[DatabaseInstance]:
    """Convenience wrapper: the global solutions for ``root``."""
    return TransitiveSpecification(system, root, **kwargs).solutions()


def transitive_peer_consistent_answers(system: PeerSystem, root: str,
                                       query: Query,
                                       **kwargs) -> PCAResult:
    """PCAs under the transitive semantics: intersect over the global
    solutions restricted to the root peer."""
    spec = TransitiveSpecification(system, root, **kwargs)
    return pca_from_solutions(system, root, query, spec.solutions())
