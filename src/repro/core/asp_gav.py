"""The answer-set specification of a peer's solutions (Section 3.1, GAV).

Given an instance and a set of DECs with a designated set of changeable
relations, :class:`GavSpecification` builds the disjunctive choice program
of Section 3.1:

* facts for the source relations,
* persistence defaults (4)–(5) copying sources into the virtual primed
  relations, with exceptions only where deletions are possible (the paper
  notes rule (5)'s NAF literal "can be eliminated" for insert-only
  relations),
* deletion rules with ``aux1``/``aux2`` (6)–(8),
* the disjunctive choice rule (9), and
* denial constraints for local ICs and for DECs that must remain
  satisfied.

The peer's solutions are read off the stable models ("in one to one
correspondence", Section 3.2); peer consistent answers are the skeptical
answers of a query program over the primed relations.

:func:`asp_solutions_for_peer` composes two such programs to implement the
full two-stage semantics of Definition 4 (the paper's Section 3.1 example
is single-stage — only a `less` neighbour).  Stable models of the repair
program correspond to Δ-minimal repairs on the paper's DEC class (acyclic,
witness-guarded); an optional minimality post-filter guarantees agreement
with Definition 4 in all cases and is a no-op on that class (asserted in
the cross-validation tests).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..datalog.engine import AnswerSetEngine
from ..datalog.program import Program, Rule
from ..datalog.terms import Atom, Literal, Variable
from ..relational.constraints import Constraint
from ..relational.instance import DatabaseInstance
from ..relational.query import (
    And,
    Cmp,
    Exists,
    Formula,
    Query,
    RelAtom,
)
from .asp_common import (
    TranslationContext,
    dec_rules,
    decode_model,
    hard_constraint_rules,
    instance_facts,
    local_ic_rules,
    make_aux_names,
)
from .errors import SystemError_
from .naming import NameMap
from .pca import PCAResult, pca_from_solutions
from .solutions import SolutionSearch
from .system import PeerSystem
from .trust import TrustLevel

__all__ = ["GavSpecification", "asp_solutions_for_peer",
           "asp_peer_consistent_answers"]


class _FinalContext:
    """Adapter: `solution_pred` resolves to the final-layer predicates.

    Used to re-enforce DECs over the IC-repaired state; only the methods
    :func:`repro.core.asp_common.hard_constraint_rules` touches are
    provided.
    """

    def __init__(self, spec: "GavSpecification") -> None:
        self._spec = spec
        self.name_map = spec.name_map
        self.changeable = spec.context.changeable
        self.foreign_primed = spec.context.foreign_primed

    def solution_pred(self, relation: str) -> str:
        return self._spec._final_pred(relation)


class GavSpecification:
    """The Section 3.1 program for one repair stage.

    Parameters:
        instance: the material (source) data.
        repair_decs: DEC constraints whose violations the program repairs
            (deletion/choice rules are generated for these).
        changeable: relations whose primed version may deviate.
        enforce: constraints that must simply HOLD of the virtual state
            (stage-2 `less` DECs).
        local_ics: local ICs.  With ``local_ic_mode="layered"`` (default)
            they are handled by the paper's "more flexible alternative"
            (Section 3.2): a second program layer repairs each solution
            w.r.t. the local ICs while keeping the DECs enforced — this is
            what matches Definition 4's reference semantics.  With
            ``local_ic_mode="denial"`` they become plain program denial
            constraints, which *prunes* IC-violating solutions instead of
            repairing them (the paper's "simple way").
        relations_in_scope: relations to emit facts for (default: all
            relations mentioned anywhere plus changeable ones).
    """

    def __init__(self, instance: DatabaseInstance,
                 repair_decs: Sequence[Constraint],
                 changeable: Iterable[str],
                 enforce: Sequence[Constraint] = (),
                 local_ics: Sequence[Constraint] = (),
                 relations_in_scope: Optional[Iterable[str]] = None,
                 foreign_primed: Iterable[str] = (),
                 local_ic_mode: str = "layered") -> None:
        if local_ic_mode not in ("layered", "denial"):
            raise SystemError_(
                f"unknown local_ic_mode {local_ic_mode!r}; use 'layered' "
                f"or 'denial'")
        self.local_ic_mode = local_ic_mode
        self.instance = instance
        self.repair_decs = tuple(repair_decs)
        self.enforce = tuple(enforce)
        self.local_ics = tuple(local_ics)
        scope = set(changeable) | set(foreign_primed)
        for constraint in (*self.repair_decs, *self.enforce,
                           *self.local_ics):
            scope |= constraint.relations()
        if relations_in_scope is not None:
            scope |= set(relations_in_scope)
        unknown = scope - set(instance.relations())
        if unknown:
            raise SystemError_(
                f"constraints mention relations {sorted(unknown)} missing "
                f"from the instance")
        self.scope = frozenset(scope)
        self.name_map = NameMap(self.scope)
        self.context = TranslationContext(self.name_map, changeable,
                                          foreign_primed)
        self._program: Optional[Program] = None
        self._engine: Optional[AnswerSetEngine] = None

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------
    @property
    def uses_final_layer(self) -> bool:
        """True when the two-layer local-IC construction is active."""
        return bool(self.local_ics) and self.local_ic_mode == "layered"

    @property
    def out_of_class(self) -> bool:
        """True when some relation occurs both in a DEC consequent
        (insertable) and a DEC antecedent (violation trigger).

        The paper's translation (rules (6)-(9)) triggers violations on the
        *source* relations, which is exact for its DEC class ("no cycles
        and single atom consequents", Section 4.2) but can miss violations
        created by insertions when the classes mix.  For such systems the
        builder adds solution-state hard constraints: models that sneak an
        unrepaired violation past the source triggers are pruned, so the
        program never *fabricates* solutions (it may under-approximate;
        the model-theoretic route stays authoritative there).
        """
        insertable: set[str] = set()
        triggers: set[str] = set()
        for constraint in self.repair_decs:
            from ..relational.constraints import TupleGeneratingConstraint
            if isinstance(constraint, TupleGeneratingConstraint):
                insertable |= {a.relation for a in constraint.consequent
                               if a.relation in self.context.changeable}
            triggers |= {a.relation for a in constraint.antecedent}
        return bool(insertable & triggers)

    def build_rules(self) -> list[Rule]:
        """All rules except facts (exposed for the transitive combiner)."""
        aux = make_aux_names(self.name_map)
        rules: list[Rule] = []
        for constraint in self.repair_decs:
            rules.extend(dec_rules(constraint, self.context, aux))
        for constraint in self.enforce:
            rules.extend(hard_constraint_rules(constraint, self.context,
                                               aux))
        if self.out_of_class:
            # safety belt: enforce every repair DEC on the solution state
            for constraint in self.repair_decs:
                rules.extend(hard_constraint_rules(constraint,
                                                   self.context, aux))
        if self.local_ics and not self.uses_final_layer:
            rules.extend(local_ic_rules(self.local_ics, self.context,
                                        aux))
        rules.extend(self._persistence_rules(rules))
        if self.uses_final_layer:
            rules.extend(self._final_layer_rules(aux))
        return rules

    # -- the second layer of Section 3.2's flexible alternative ----------
    def _final_pred(self, relation: str) -> str:
        """Solution-level predicate of the *final* (IC-repaired) state."""
        if relation in self.context.changeable \
                or relation in self.context.foreign_primed:
            return self.name_map.final(relation)
        return self.name_map.source(relation)

    def _final_layer_rules(self, aux) -> list[Rule]:
        from ..relational.constraints import (DenialConstraint,
                                              EqualityGeneratingConstraint)
        from ..datalog.terms import Comparison
        rules: list[Rule] = []
        ic_deletion_heads: dict[Constraint, list] = {}
        deletable: set[str] = set()
        for constraint in self.local_ics:
            if not isinstance(constraint, (DenialConstraint,
                                           EqualityGeneratingConstraint)):
                raise SystemError_(
                    f"the layered local-IC construction supports denial "
                    f"and equality-generating ICs; {constraint.name} is "
                    f"{type(constraint).__name__}")
            heads = []
            for atom in constraint.antecedent:
                if atom.relation in self.context.changeable:
                    heads.append(Literal(
                        Atom(self.name_map.final(atom.relation),
                             atom.terms), positive=False))
                    deletable.add(atom.relation)
            ic_deletion_heads[constraint] = heads

        # copy layer-A output into the final layer
        changed = sorted(self.context.changeable
                         | self.context.foreign_primed)
        for relation in changed:
            arity = self.instance.schema.arity(relation)
            variables = tuple(Variable(f"X{i}") for i in range(arity))
            primed_atom = Atom(self.name_map.primed(relation), variables)
            final_atom = Atom(self.name_map.final(relation), variables)
            body: list = [Literal(primed_atom)]
            if relation in deletable:
                body.append(Literal(final_atom, positive=False, naf=True))
            rules.append(Rule(head=[final_atom], body=body))

        # local-IC repair rules: trigger on the layer-A state, delete in
        # the final layer
        for constraint in self.local_ics:
            trigger: list = []
            for atom in constraint.antecedent:
                pred = self.name_map.primed(atom.relation) \
                    if atom.relation in self.context.changeable \
                    or atom.relation in self.context.foreign_primed \
                    else self.name_map.source(atom.relation)
                trigger.append(Literal(Atom(pred, atom.terms)))
            trigger.extend(c.comparison for c in constraint.conditions)
            heads = ic_deletion_heads[constraint]
            if isinstance(constraint, EqualityGeneratingConstraint):
                for left, right in constraint.equalities:
                    rules.append(Rule(
                        head=heads,
                        body=trigger + [Comparison("!=", left, right)]))
            else:
                rules.append(Rule(head=heads, body=trigger))

        # the DECs (and stage-2 enforcements) must still hold of the
        # final state: the IC layer may only delete what the DECs do not
        # pin down
        final_context = _FinalContext(self)
        for constraint in (*self.repair_decs, *self.enforce):
            rules.extend(hard_constraint_rules(constraint, final_context,
                                               aux))
        return rules

    def _persistence_rules(self, dec_rules_built: Sequence[Rule]
                           ) -> list[Rule]:
        """Rules (4)-(5): copy sources into the primed relations, with the
        `not -R'` exception exactly for relations that can lose tuples."""
        deletable: set[str] = set()
        for rule in dec_rules_built:
            for literal in rule.head:
                if not literal.positive:
                    relation = self.name_map.relation_of_primed(
                        literal.predicate)
                    if relation is not None:
                        deletable.add(relation)
        rules = []
        for relation in sorted(self.context.changeable):
            arity = self.instance.schema.arity(relation)
            variables = tuple(Variable(f"X{i}") for i in range(arity))
            source_atom = Atom(self.name_map.source(relation), variables)
            primed_atom = Atom(self.name_map.primed(relation), variables)
            body: list = [Literal(source_atom)]
            if relation in deletable:
                body.append(Literal(primed_atom, positive=False, naf=True))
            rules.append(Rule(head=[primed_atom], body=body))
        return rules

    @property
    def program(self) -> Program:
        if self._program is None:
            rules = self.build_rules()
            facts = instance_facts(self.instance, self.scope,
                                   self.name_map)
            if self.context.domain_used:
                for value in sorted(self.instance.active_domain(),
                                    key=lambda v: (isinstance(v, str),
                                                   str(v))):
                    facts.append(Rule(head=[
                        Atom(self.context.domain_pred, (value,))]))
            self._program = Program(rules + facts)
        return self._program

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def engine(self) -> AnswerSetEngine:
        if self._engine is None:
            self._engine = AnswerSetEngine(self.program)
        return self._engine

    def answer_sets(self):
        return self.engine.answer_sets()

    def solutions(self, *, minimal_only: bool = True
                  ) -> list[DatabaseInstance]:
        """Solution instances decoded from the answer sets.

        ``minimal_only`` applies the Δ-minimality post-filter that makes
        the output coincide with Definition 4's repairs in all cases (it
        is a no-op on the paper's DEC class).
        """
        decoded: dict[DatabaseInstance, None] = {}
        for model in self.answer_sets():
            decoded.setdefault(self._decode(model))
        instances = list(decoded)
        if minimal_only:
            deltas = {inst: inst.delta(self.instance)
                      for inst in instances}
            instances = [inst for inst in instances
                         if not any(deltas[other] < deltas[inst]
                                    for other in instances
                                    if other is not inst)]
        return sorted(instances, key=str)

    def _decode(self, model) -> DatabaseInstance:
        """Read a solution instance off an answer set (final layer when
        the layered local-IC construction is active)."""
        if not self.uses_final_layer:
            return decode_model(model, self.instance, self.context)
        replaced: dict[str, set[tuple]] = {
            relation: set()
            for relation in (self.context.changeable
                             | self.context.foreign_primed)
            if relation in self.instance.schema}
        for literal in model:
            if not literal.positive or literal.naf:
                continue
            relation = self.name_map.relation_of_final(literal.predicate)
            if relation is None or relation not in replaced:
                continue
            replaced[relation].add(literal.atom.value_tuple())
        return self.instance.replace_relations(replaced)

    # ------------------------------------------------------------------
    # Query programs (Section 3.2)
    # ------------------------------------------------------------------
    def query_program_answers(self, query: Query,
                              *, skeptical: bool = True) -> set[tuple]:
        """Run a conjunctive query program over the virtual relations.

        Implements "running the query, expressed as a query program in
        terms of the virtually repaired tables, in combination with
        program Π ... under the skeptical answer set semantics"
        (Section 3.2).  Supports conjunctive queries (∧/∃/comparisons);
        richer FO queries should be answered against
        :meth:`solutions` instead.
        """
        query_context = _FinalContext(self) if self.uses_final_layer \
            else self.context
        body = _conjunctive_body(query.formula, query_context)
        ans_pred = "ans_query"
        head = Atom(ans_pred, query.head)
        program = self.program.extend([Rule(head=[head], body=body)])
        engine = AnswerSetEngine(program)
        query_atom = Atom(ans_pred, query.head)
        if skeptical:
            return engine.skeptical_answers(query_atom)
        return engine.brave_answers(query_atom)


def _conjunctive_body(formula: Formula,
                      context: TranslationContext) -> list:
    """Translate a conjunctive FO formula into a rule body over the
    solution-level predicates."""
    if isinstance(formula, RelAtom):
        pred = context.solution_pred(formula.relation)
        return [Literal(Atom(pred, formula.terms))]
    if isinstance(formula, Cmp):
        return [formula.comparison]
    if isinstance(formula, And):
        body: list = []
        for part in formula.parts:
            body.extend(_conjunctive_body(part, context))
        return body
    if isinstance(formula, Exists):
        return _conjunctive_body(formula.sub, context)
    raise SystemError_(
        f"query programs support conjunctive queries; "
        f"{type(formula).__name__} found — evaluate the FO query over the "
        f"decoded solutions instead")


# ---------------------------------------------------------------------------
# Peer-level composition (Definition 4 via ASP)
# ---------------------------------------------------------------------------

def _stage_specs(system: PeerSystem, peer: str, *,
                 include_local_ics: bool) -> tuple:
    search = SolutionSearch(system, peer,
                            include_local_ics=include_local_ics)
    less = [e.constraint for e in
            system.trusted_decs_of(peer, TrustLevel.LESS)]
    same_decs = system.trusted_decs_of(peer, TrustLevel.SAME)
    same = [e.constraint for e in same_decs]
    local = list(system.peer(peer).local_ics) if include_local_ics else []
    own = set(system.peer(peer).schema.names)
    stage2_changeable = set(own)
    for exchange in same_decs:
        stage2_changeable |= set(system.peer(exchange.other).schema.names)
    return less, same, local, own, stage2_changeable, search


def asp_solutions_for_peer(system: PeerSystem, peer: str, *,
                           include_local_ics: bool = True,
                           minimal_only: bool = True
                           ) -> list[DatabaseInstance]:
    """The solutions for ``peer`` computed through the ASP specification.

    Stage 1 (`less` DECs, own relations changeable) and stage 2 (`same`
    DECs with the `less` DECs enforced) each run as a Section 3.1 program;
    the composition implements Definition 4 exactly (validated against the
    model-theoretic :func:`repro.core.solutions.solutions_for_peer`).
    """
    less, same, local, own, stage2_changeable, _search = _stage_specs(
        system, peer, include_local_ics=include_local_ics)
    global_instance = system.global_instance()

    # the specification program embeds the neighbours' data as facts —
    # record those data requests on the exchange log (Example 2's
    # narrative, here for the ASP mechanism)
    own_set = set(own)
    foreign = set()
    for constraint in (*less, *same):
        foreign |= constraint.relations() - own_set
    for relation in sorted(foreign):
        system.fetch_relation(peer, relation, purpose="asp specification")

    if less or local:
        # local ICs are applied at stage 1 even without `less` DECs so
        # that footnote-1 systems (locally inconsistent instances) get
        # repaired on the ASP route too
        stage1_spec = GavSpecification(global_instance, less, own,
                                       local_ics=local)
        stage1_results = stage1_spec.solutions(minimal_only=minimal_only)
    else:
        stage1_results = [global_instance]

    if not same:
        return sorted(set(stage1_results), key=str)

    final: dict[DatabaseInstance, None] = {}
    for stage1 in stage1_results:
        stage2_spec = GavSpecification(stage1, same, stage2_changeable,
                                       enforce=less, local_ics=local)
        for solution in stage2_spec.solutions(minimal_only=minimal_only):
            final.setdefault(solution)
    return sorted(final, key=str)


def asp_peer_consistent_answers(system: PeerSystem, peer: str,
                                query: Query, *,
                                include_local_ics: bool = True
                                ) -> PCAResult:
    """Peer consistent answers via the ASP route (Definition 5)."""
    solutions = asp_solutions_for_peer(
        system, peer, include_local_ics=include_local_ics)
    return pca_from_solutions(system, peer, query, solutions)
