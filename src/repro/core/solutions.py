"""Solutions for a peer — Definition 4, the direct case.

Given the global instance ``r``, an instance ``r'`` is a *solution for P*
when:

(a) ``r' |= Σ(P) ∪ IC(P)`` (trusted DECs and local ICs),
(b) relations outside R̄(P) are untouched,
(c) ``r'`` arises from the two-stage prioritised repair:

    * **stage 1** — ``r1`` is a repair of ``r`` w.r.t. the DECs toward
      strictly-more-trusted peers (``(P, less, Q)``), changing only P's own
      relations (both `less` and `same` neighbours stay fixed, c2);
    * **stage 2** — ``r2`` is a repair of ``r1`` w.r.t. the DECs toward
      equally-trusted peers, keeping the `less` DECs satisfied and
      `less`-peers' data fixed (c3); P's and the `same`-peers' relations
      may change.

The Δ-minimisation of each stage is inherited from
:mod:`repro.cqa.repairs`; the priority between stages is exactly the
prioritised minimisation the paper compares to circumscription [25].

This module is the *reference* (model-theoretic) implementation: it
enumerates solutions explicitly and is exponential by design (Section 3.2's
complexity discussion).  The ASP route (:mod:`repro.core.asp_gav`) computes
the same objects as stable models.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..cqa.repairs import RepairProblem, repairs
from ..relational.constraints import Constraint
from ..relational.instance import DatabaseInstance
from .system import PeerSystem
from .trust import TrustLevel

__all__ = ["SolutionSearch", "solutions_for_peer"]


class SolutionSearch:
    """Configuration + computation of the solutions for one peer.

    Parameters:
        system: the P2P system.
        peer: the queried peer P.
        include_local_ics: enforce IC(P) inside the repair stages
            (condition (a)); the paper assumes r(P) |= IC(P) and Section
            3.2 discusses layering — disable to study raw DEC repairs.
        max_changes / max_solutions: safety valves forwarded to the repair
            engine.
        evaluator: constraint-checking engine inside the repair stages —
            ``"planner"`` (indexed, default) or ``"naive"``.
    """

    def __init__(self, system: PeerSystem, peer: str, *,
                 include_local_ics: bool = True,
                 max_changes: int = 64,
                 max_solutions: Optional[int] = None,
                 evaluator: str = "planner") -> None:
        self.system = system
        self.peer = system.peer(peer)
        self.include_local_ics = include_local_ics
        self.max_changes = max_changes
        self.max_solutions = max_solutions
        self.evaluator = evaluator

    # ------------------------------------------------------------------
    def _constraints(self, level: TrustLevel) -> list[Constraint]:
        return [exchange.constraint for exchange in
                self.system.trusted_decs_of(self.peer.name, level)]

    def _local_ics(self) -> list[Constraint]:
        return list(self.peer.local_ics) if self.include_local_ics else []

    def stage1_repairs(self) -> list[DatabaseInstance]:
        """Repairs of r̄ w.r.t. the `less` DECs, changing only R(P) (c2)."""
        global_instance = self.system.global_instance()
        less_constraints = self._constraints(TrustLevel.LESS)
        constraints = less_constraints + self._local_ics()
        if not constraints:
            return [global_instance]
        problem = RepairProblem(
            global_instance, constraints,
            changeable=self.peer.schema.names,
            max_changes=self.max_changes,
            evaluator=self.evaluator)
        return list(repairs(problem))

    def stage2_repairs(self, stage1: DatabaseInstance
                       ) -> list[DatabaseInstance]:
        """Repairs of a stage-1 instance w.r.t. the `same` DECs (c3).

        The `less` DECs stay in the constraint set (they must remain
        satisfied) but `less`-peers' relations stay fixed, so those DECs
        can only constrain — never be repaired at the trusted side.
        """
        same_decs = self.system.trusted_decs_of(self.peer.name,
                                                TrustLevel.SAME)
        if not same_decs:
            return [stage1]
        constraints = [e.constraint for e in same_decs] \
            + self._constraints(TrustLevel.LESS) + self._local_ics()
        changeable = set(self.peer.schema.names)
        for exchange in same_decs:
            changeable |= set(
                self.system.peer(exchange.other).schema.names)
        problem = RepairProblem(stage1, constraints,
                                changeable=changeable,
                                max_changes=self.max_changes,
                                evaluator=self.evaluator)
        return list(repairs(problem))

    def solutions(self) -> list[DatabaseInstance]:
        """All solutions for the peer, deduplicated, deterministic order."""
        found: dict[DatabaseInstance, None] = {}
        for stage1 in self.stage1_repairs():
            for stage2 in self.stage2_repairs(stage1):
                found.setdefault(stage2)
                if self.max_solutions is not None \
                        and len(found) >= self.max_solutions:
                    return sorted(found, key=str)
        return sorted(found, key=str)

    def is_solution(self, candidate: DatabaseInstance) -> bool:
        """Membership test via full enumeration (reference semantics)."""
        return candidate in set(self.solutions())


def solutions_for_peer(system: PeerSystem, peer: str,
                       **kwargs) -> list[DatabaseInstance]:
    """Convenience wrapper: the solutions for ``peer`` (Definition 4)."""
    return SolutionSearch(system, peer, **kwargs).solutions()
