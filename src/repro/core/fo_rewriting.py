"""First-order query rewriting for peer consistent answers (Example 2).

The paper's first computation mechanism transforms the peer's query so that
its *ordinary* answers over the available data are the peer consistent
answers.  Unlike CQA residue rewriting, which only constrains, the P2P
rewriting must also *relax* the query — import data located at other
peers' sites (Section 2: "This cannot be achieved by imposing extra
conditions alone ... but instead, by relaxing the query in some sense").

Example 2 rewrites ``Q : R1(x,y)`` in two steps into::

    Q'' : [R1(x,y) ∧ ∀z1 (R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y)] ∨ R2(x,y)

Supported fragment (checked, otherwise :class:`RewritingNotSupported`):

* **import DECs** — full inclusion dependencies ``R_Q ⊆ R_P`` from a peer
  trusted `less` (i.e. more-reliable Q): every query atom over ``R_P``
  gains the disjunct ``R_Q(x̄)``;
* **conflict DECs** — binary EGDs ``R_P(..,y,..) ∧ S_Q(..,z,..) → y = z``
  toward a peer trusted `same`: every query atom over ``R_P`` gains a
  universal guard discarding tuples with an unprotected conflict;
* queries built from positive atoms over R(P) with ∧, ∨, ∃ and
  comparisons.

**Protection refinement.** The paper's formula (1) protects an R1-tuple
from an R3-conflict whenever *some* imported tuple ``R2(x, z2)`` exists.
That is correct on the paper's instances, but if the only import has
``z2 = z1`` (equal to the conflicting R3 value) the import does not force
``R3(x, z1)`` out, and the R1-tuple is genuinely uncertain.  We emit the
refined protection ``∃z2 (R2(x, z2) ∧ z2 ≠ z1)``, which agrees with
formula (1) on the paper's example and matches the model-theoretic
Definition 5 on the corner case (see ``tests/core/test_fo_rewriting.py``
and the errata section of DESIGN.md).

The paper stresses the approach's "intrinsic limitations" and proposes ASP
as the general mechanism; this module mirrors that division of labour.
"""

from __future__ import annotations

from itertools import count
from typing import Optional, Sequence

from ..datalog.terms import Constant, Term, Variable
from ..relational.constraints import (
    EqualityGeneratingConstraint,
    InclusionDependency,
    TupleGeneratingConstraint,
)
from ..relational.instance import DatabaseInstance
from ..relational.query import (
    And,
    Cmp,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
)
from .errors import RewritingNotSupported
from .system import DataExchange, PeerSystem
from .trust import TrustLevel

__all__ = ["PeerQueryRewriter", "rewrite_peer_query",
           "answers_via_rewriting"]


class _ImportRule:
    """Full inclusion R_source ⊆ R_target from a `less`-trusted peer."""

    def __init__(self, target: str, source: str,
                 target_positions: Sequence[int],
                 source_positions: Sequence[int],
                 source_arity: int) -> None:
        self.target = target
        self.source = source
        self.target_positions = tuple(target_positions)
        self.source_positions = tuple(source_positions)
        self.source_arity = source_arity


class _ConflictRule:
    """Binary EGD R_P(...) ∧ S_Q(...) → y = z toward a `same` peer."""

    def __init__(self, p_atom: RelAtom, q_atom: RelAtom,
                 p_eq_var: Variable, q_eq_var: Variable) -> None:
        self.p_atom = p_atom
        self.q_atom = q_atom
        self.p_eq_var = p_eq_var
        self.q_eq_var = q_eq_var


class PeerQueryRewriter:
    """Builds the Example-2 rewriting for one peer of a system."""

    def __init__(self, system: PeerSystem, peer: str) -> None:
        self.system = system
        self.peer = system.peer(peer)
        if self.peer.local_ics:
            # residues for local ICs interacting with imports are outside
            # the fragment; refusing beats silently wrong answers
            raise RewritingNotSupported(
                f"peer {peer!r} has local ICs; the FO-rewriting fragment "
                f"does not cover their interaction with imports — use the "
                f"ASP method")
        self._fresh = count()
        self._imports: dict[str, list[_ImportRule]] = {}
        self._conflicts: dict[str, list[_ConflictRule]] = {}
        for exchange in system.trusted_decs_of(peer):
            self._classify(exchange)

    # ------------------------------------------------------------------
    # DEC classification
    # ------------------------------------------------------------------
    def _classify(self, exchange: DataExchange) -> None:
        level = self.system.trust.level(exchange.owner, exchange.other)
        constraint = exchange.constraint
        own = set(self.peer.schema.names)
        if isinstance(constraint, InclusionDependency) \
                and constraint.is_full() \
                and level is TrustLevel.LESS \
                and constraint.parent in own \
                and constraint.child not in own:
            child_schema = self.system.global_schema.relation(
                constraint.child)
            rule = _ImportRule(constraint.parent, constraint.child,
                               constraint.parent_positions,
                               constraint.child_positions,
                               child_schema.arity)
            self._imports.setdefault(constraint.parent, []).append(rule)
            return
        if isinstance(constraint, EqualityGeneratingConstraint) \
                and level is TrustLevel.SAME:
            rule = self._try_conflict_rule(constraint, own)
            if rule is not None:
                self._conflicts.setdefault(rule.p_atom.relation,
                                           []).append(rule)
                return
        raise RewritingNotSupported(
            f"DEC {constraint.name} (trust={level}) is outside the "
            f"FO-rewriting fragment; use the ASP method")

    def _try_conflict_rule(self, constraint: EqualityGeneratingConstraint,
                           own: set[str]) -> Optional[_ConflictRule]:
        if len(constraint.antecedent) != 2:
            return None
        if len(constraint.equalities) != 1:
            return None
        left, right = constraint.equalities[0]
        if not (isinstance(left, Variable) and isinstance(right, Variable)):
            return None
        first, second = constraint.antecedent
        for p_atom, q_atom in ((first, second), (second, first)):
            if p_atom.relation in own and q_atom.relation not in own:
                if left in p_atom.free_variables() \
                        and right in q_atom.free_variables():
                    return _ConflictRule(p_atom, q_atom, left, right)
                if right in p_atom.free_variables() \
                        and left in q_atom.free_variables():
                    return _ConflictRule(p_atom, q_atom, right, left)
        return None

    # ------------------------------------------------------------------
    # Formula rewriting
    # ------------------------------------------------------------------
    def rewrite(self, query: Query) -> Query:
        """The rewritten query; its plain answers over the combined data
        are the peer consistent answers (within the supported fragment)."""
        self.system.validate_query_scope(self.peer.name, query)
        return Query(query.name, query.head,
                     self._rewrite_formula(query.formula))

    def _rewrite_formula(self, formula: Formula) -> Formula:
        if isinstance(formula, RelAtom):
            return self._rewrite_atom(formula)
        if isinstance(formula, And):
            return And(*(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Or):
            return Or(*(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Exists):
            return Exists(formula.variables,
                          self._rewrite_formula(formula.sub))
        if isinstance(formula, Cmp):
            return formula
        raise RewritingNotSupported(
            f"query construct {type(formula).__name__} is outside the "
            f"FO-rewriting fragment (positive ∧/∨/∃ queries only)")

    def _rewrite_atom(self, atom: RelAtom) -> Formula:
        guards = [self._guard(atom, rule)
                  for rule in self._conflicts.get(atom.relation, ())]
        base: Formula = atom if not guards else And(atom, *guards)
        disjuncts: list[Formula] = [base]
        for rule in self._imports.get(atom.relation, ()):
            disjuncts.append(self._import_atom(atom, rule))
        return disjuncts[0] if len(disjuncts) == 1 else Or(*disjuncts)

    def _fresh_var(self, base: str) -> Variable:
        return Variable(f"{base}{next(self._fresh)}")

    def _import_atom(self, atom: RelAtom, rule: _ImportRule) -> Formula:
        """The import disjunct: R_source with columns mapped through the
        inclusion's position lists; uncovered source columns are
        existentially quantified."""
        source_terms: list[Term] = [self._fresh_var("_i")
                                    for _ in range(rule.source_arity)]
        for t_pos, s_pos in zip(rule.target_positions,
                                rule.source_positions):
            source_terms[s_pos] = atom.terms[t_pos]
        extra = [t for t in source_terms
                 if isinstance(t, Variable) and t.name.startswith("_i")]
        source_atom = RelAtom(rule.source, source_terms)
        if extra:
            return Exists(extra, source_atom)
        return source_atom

    def _guard(self, atom: RelAtom, rule: _ConflictRule) -> Formula:
        """The universal guard of formula (1), with refined protection."""
        # unify the rule's P-atom with the query atom
        if len(rule.p_atom.terms) != len(atom.terms):
            raise RewritingNotSupported(
                f"arity mismatch unifying {atom} with DEC atom "
                f"{rule.p_atom}")
        sigma: dict[Variable, Term] = {}
        conditions: list[Formula] = []
        for c_term, q_term in zip(rule.p_atom.terms, atom.terms):
            if isinstance(c_term, Variable):
                bound = sigma.get(c_term)
                if bound is None:
                    sigma[c_term] = q_term
                elif bound != q_term:
                    conditions.append(Cmp("=", bound, q_term))
            elif c_term != q_term:
                conditions.append(Cmp("=", q_term, c_term))

        def subst(term: Term) -> Term:
            if isinstance(term, Variable):
                if term in sigma:
                    return sigma[term]
                fresh = self._fresh_var("_z")
                sigma[term] = fresh
                return fresh
            return term

        q_terms = [subst(t) for t in rule.q_atom.terms]
        q_atom = RelAtom(rule.q_atom.relation, q_terms)
        eq_p = subst(rule.p_eq_var)    # bound by the query atom
        eq_q = subst(rule.q_eq_var)    # the conflicting value (z1)
        quantified = sorted(
            {t for t in q_terms
             if isinstance(t, Variable) and t.name.startswith("_z")},
            key=lambda v: v.name)

        protections: list[Formula] = []
        for import_rule in self._imports.get(atom.relation, ()):
            protections.append(
                self._protection(atom, rule, import_rule, sigma, eq_q))

        premise_parts: list[Formula] = [q_atom]
        premise_parts.extend(Not(p) for p in protections)
        premise = premise_parts[0] if len(premise_parts) == 1 \
            else And(*premise_parts)
        implication = Implies(premise, Cmp("=", eq_q, eq_p))
        guard: Formula = Forall(quantified, implication) if quantified \
            else implication
        if conditions:
            condition = conditions[0] if len(conditions) == 1 \
                else And(*conditions)
            guard = Implies(condition, guard)
        return guard

    def _protection(self, atom: RelAtom, conflict: _ConflictRule,
                    import_rule: _ImportRule, sigma: dict[Variable, Term],
                    conflict_value: Term) -> Formula:
        """∃z2 (R_import(.., z2, ..) ∧ z2 ≠ z1): an imported tuple pins an
        R_P-tuple that forces the conflicting S_Q-tuple out."""
        # position of the equality variable inside the P-atom
        eq_position = None
        for index, term in enumerate(conflict.p_atom.terms):
            if term == conflict.p_eq_var:
                eq_position = index
                break
        if eq_position is None:
            raise RewritingNotSupported(
                f"conflict DEC equality variable not in the peer atom "
                f"{conflict.p_atom}")
        target_terms = [sigma.get(t, t) if isinstance(t, Variable) else t
                        for t in conflict.p_atom.terms]
        z2 = self._fresh_var("_z")
        target_terms[eq_position] = z2
        # map target columns through the inclusion onto the source
        source_terms: list[Term] = [self._fresh_var("_i")
                                    for _ in range(import_rule.source_arity)]
        for t_pos, s_pos in zip(import_rule.target_positions,
                                import_rule.source_positions):
            source_terms[s_pos] = target_terms[t_pos]
        source_atom = RelAtom(import_rule.source, source_terms)
        inner_vars = [z2] + [t for t in source_terms
                             if isinstance(t, Variable)
                             and t.name.startswith("_i")]
        return Exists(inner_vars,
                      And(source_atom, Cmp("!=", z2, conflict_value)))


def rewrite_peer_query(system: PeerSystem, peer: str,
                       query: Query) -> Query:
    """Convenience wrapper around :class:`PeerQueryRewriter`."""
    return PeerQueryRewriter(system, peer).rewrite(query)


def answers_via_rewriting(system: PeerSystem, peer: str,
                          query: Query, *,
                          evaluator: str = "planner") -> set[tuple]:
    """PCAs by rewriting: rewrite, fetch the mentioned neighbour
    relations (logged on the exchange log), evaluate over the combined
    data.

    ``evaluator`` selects the FO evaluation engine for the rewritten
    query — ``"planner"`` (indexed, default) or ``"naive"``.  The
    rewriting is only a win when its evaluation is genuinely
    first-order-cheap, which is exactly what the planner provides: the
    guarded universals of formula (1) become index-backed guard scans
    instead of active-domain products.
    """
    rewritten = rewrite_peer_query(system, peer, query)
    own = set(system.peer(peer).schema.names)
    needed = rewritten.relations()
    data: dict[str, frozenset] = {}
    for relation in sorted(needed):
        if relation in own:
            data[relation] = system.instances[peer].tuples(relation)
        else:
            data[relation] = system.fetch_relation(
                peer, relation, purpose=f"rewritten query {query.name}")
    schema = system.global_schema.restrict(sorted(needed))
    instance = DatabaseInstance(schema, data)
    return rewritten.answers(instance, evaluator=evaluator)
