"""Bloom-style content digests for peer relations.

A :class:`RelationDigest` summarises one relation of a peer's
:class:`~repro.storage.tables.FactTable`: a small bit array over the
relation's **first-column** values, the exact row count, and the
relation's content fingerprint (already content-derived, so a digest
invalidates for free whenever the data changes).  A
:class:`NeighbourDigests` bundles one digest per relation under the
provider's store version — the token every consumer must match before
trusting any digest (see :mod:`repro.routing.index`).

**The no-false-negatives guarantee.**  Membership bits are set for every
value actually stored, so :meth:`RelationDigest.may_contain` can return
``False`` only for values that are *provably absent* — it never lies
about a present value.  Consequently :meth:`RelationDigest.disjoint_from`
returning ``True`` for a set of query constants proves the relation
holds **no** row whose first column equals any of them: the relation
cannot contribute a matching tuple.  The reverse direction is
deliberately weak — ``may_contain`` may return ``True`` for absent
values (a false positive merely costs a contact that finds nothing).
The seeded property suite in ``tests/routing/test_digest.py`` pins both
directions.

Hashing uses ``blake2b`` over the canonical
:func:`~repro.storage.tables.encode_value` encoding — never Python's
salted builtin ``hash`` — so digests are stable across processes and
restarts, and two peers always agree on a value's bit positions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..storage.tables import FactTable, encode_value

__all__ = [
    "DIGEST_BITS",
    "DIGEST_HASHES",
    "DIGEST_MAX_BITS",
    "RelationDigest",
    "NeighbourDigests",
    "adaptive_nbits",
    "digest_bytes",
    "merge_neighbour_digests",
]

#: minimum bit-array width; 128 bits keeps a digest smaller than two
#: rows while staying useful up to a few dozen distinct keys
DIGEST_BITS = 128
#: hash functions per value (double hashing: h1 + i*h2)
DIGEST_HASHES = 2
#: adaptive-width cap — a digest never exceeds 128 hex characters
DIGEST_MAX_BITS = 1024
#: adaptive sizing target: ~8 bits per stored row keeps the two-hash
#: false-positive rate around (1-e^(-2/8))^2 ≈ 4.9% at any scale
_BITS_PER_ROW = 8


def adaptive_nbits(row_count: int) -> int:
    """Power-of-two width scaled to the relation, in
    [:data:`DIGEST_BITS`, :data:`DIGEST_MAX_BITS`].

    Power-of-two widths are what keeps mixed-width digests mergeable:
    any two legal widths divide each other, so the wider array folds
    onto the narrower one exactly (see :meth:`RelationDigest.merge`).
    """
    nbits = DIGEST_BITS
    while nbits < DIGEST_MAX_BITS and nbits < row_count * _BITS_PER_ROW:
        nbits *= 2
    return nbits


def _bit_positions(value: object, nbits: int, k: int) -> list[int]:
    """The ``k`` bit positions of one value (classic double hashing)."""
    raw = hashlib.blake2b(encode_value(value).encode("utf-8"),
                          digest_size=16).digest()
    h1 = int.from_bytes(raw[:8], "big")
    # force h2 odd so the probe sequence cannot degenerate for any nbits
    h2 = int.from_bytes(raw[8:], "big") | 1
    return [(h1 + i * h2) % nbits for i in range(k)]


@dataclass(frozen=True)
class RelationDigest:
    """One relation's summary: membership bits + row count + fingerprint.

    ``bits`` is the bit array as an int (bit ``i`` set ⇔ some stored
    row's first column hashes to position ``i``); ``row_count`` is exact;
    ``fingerprint`` is the relation's content hash (a one-relation
    :meth:`~repro.storage.tables.FactTable.fingerprint`).
    """

    relation: str
    row_count: int
    fingerprint: str
    bits: int = 0
    nbits: int = DIGEST_BITS
    k: int = DIGEST_HASHES

    @classmethod
    def from_rows(cls, relation: str, rows: Iterable[tuple], *,
                  nbits: Optional[int] = None,
                  k: int = DIGEST_HASHES) -> "RelationDigest":
        rows = list(rows)
        if nbits is None:
            nbits = adaptive_nbits(len(rows))
        bits = 0
        for row in rows:
            if not row:
                continue
            for position in _bit_positions(row[0], nbits, k):
                bits |= 1 << position
        fingerprint = FactTable({relation: rows}).fingerprint()
        return cls(relation=relation, row_count=len(rows),
                   fingerprint=fingerprint, bits=bits, nbits=nbits, k=k)

    # ------------------------------------------------------------------
    def may_contain(self, value: object) -> bool:
        """``False`` proves no stored row has ``value`` in column 0."""
        if self.row_count == 0:
            return False
        return all(self.bits >> position & 1
                   for position in _bit_positions(value, self.nbits,
                                                  self.k))

    def disjoint_from(self, values: Iterable[object]) -> bool:
        """``True`` proves the relation holds no row whose first column
        equals any of ``values`` — it cannot contribute a match."""
        return not any(self.may_contain(value) for value in values)

    def fold_to(self, nbits: int) -> "RelationDigest":
        """Shrink the bit array to a width that divides this one by a
        power of two, preserving membership *exactly*.

        A value's position at width ``m`` is ``h mod m``; since
        ``(h mod 2a) mod a == h mod a``, OR-folding the upper half onto
        the lower half at each halving keeps every set position set at
        the narrower width — so ``may_contain`` can only gain false
        positives, never lose a present value, and the
        no-false-negatives guarantee survives the fold.
        """
        if nbits == self.nbits:
            return self
        if (nbits <= 0 or self.nbits % nbits
                or (self.nbits // nbits) & (self.nbits // nbits - 1)):
            raise ValueError(
                f"cannot fold a {self.nbits}-bit digest to {nbits} bits:"
                " the ratio must be a power of two")
        bits, width = self.bits, self.nbits
        while width > nbits:
            width //= 2
            bits = (bits & ((1 << width) - 1)) | (bits >> width)
        return RelationDigest(
            relation=self.relation, row_count=self.row_count,
            fingerprint=self.fingerprint, bits=bits, nbits=nbits,
            k=self.k)

    def merge(self, other: "RelationDigest") -> "RelationDigest":
        """Union of two disjoint slices of the same relation (the shard
        router and subtree aggregation compose digests this way): bits
        OR together, row counts add exactly, fingerprints compose
        positionally.

        Widths may differ — adaptive sizing makes that the common case —
        as long as one divides the other by a power of two: the wider
        digest folds onto the narrower width first (:meth:`fold_to`
        preserves no-false-negatives), so the union is as precise as its
        smallest input.  Differing hash counts or incompatible widths
        still refuse.
        """
        if self.relation != other.relation or self.k != other.k:
            raise ValueError(
                f"cannot merge digests of {self.relation!r}/"
                f"{other.relation!r} with differing parameters")
        if self.nbits != other.nbits:
            narrow = min(self.nbits, other.nbits)
            wide, kept = ((self, other) if self.nbits > other.nbits
                          else (other, self))
            wide = wide.fold_to(narrow)  # raises if widths incompatible
            return (kept.merge(wide) if kept is self
                    else wide.merge(kept))
        return RelationDigest(
            relation=self.relation,
            row_count=self.row_count + other.row_count,
            fingerprint=f"merge({self.fingerprint},{other.fingerprint})",
            bits=self.bits | other.bits, nbits=self.nbits, k=self.k)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        width = (self.nbits + 3) // 4
        return {"relation": self.relation, "count": self.row_count,
                "fingerprint": self.fingerprint,
                "bits": format(self.bits, f"0{width}x"),
                "nbits": self.nbits, "k": self.k}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RelationDigest":
        return cls(relation=data["relation"], row_count=data["count"],
                   fingerprint=data["fingerprint"],
                   bits=int(data["bits"], 16),
                   nbits=data.get("nbits", DIGEST_BITS),
                   k=data.get("k", DIGEST_HASHES))


@dataclass(frozen=True)
class NeighbourDigests:
    """Every relation digest of one peer, under one store version.

    ``version`` is the provider's
    :meth:`~repro.storage.base.FactStore.version` at digest time (or a
    composed ``shards(...)`` token when the shard router merged slice
    digests).  Consumers must confirm the provider is still *at* this
    version in the same gather before acting on any digest — a stale
    digest is only ever a reason to contact, never to skip.
    """

    peer: str
    version: str
    relations: tuple[RelationDigest, ...] = ()

    @classmethod
    def from_tables(cls, peer: str, version: str,
                    tables: Mapping[str, Iterable[tuple]]
                    ) -> "NeighbourDigests":
        digests = tuple(RelationDigest.from_rows(relation,
                                                 tables[relation])
                        for relation in sorted(tables))
        return cls(peer=peer, version=version, relations=digests)

    def digest_for(self, relation: str) -> Optional[RelationDigest]:
        for digest in self.relations:
            if digest.relation == relation:
                return digest
        return None

    def to_dict(self) -> dict:
        return {"peer": self.peer, "version": self.version,
                "relations": [digest.to_dict()
                              for digest in self.relations]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "NeighbourDigests":
        return cls(peer=data["peer"], version=data["version"],
                   relations=tuple(RelationDigest.from_dict(entry)
                                   for entry in data["relations"]))


def merge_neighbour_digests(peer: str, version: str,
                            parts: Iterable[NeighbourDigests]
                            ) -> NeighbourDigests:
    """Compose per-shard digest bundles into one logical-peer bundle.

    Each shard digests its disjoint slice of the same schema; merging
    ORs the bits and sums the row counts per relation, stamped with the
    composed ``shards(...)`` version token the caller derived from the
    slice replies.  Relations appearing in only some slices are kept
    as-is (an absent slice relation holds no rows).
    """
    merged: dict[str, RelationDigest] = {}
    for part in parts:
        for digest in part.relations:
            held = merged.get(digest.relation)
            merged[digest.relation] = (digest if held is None
                                       else held.merge(digest))
    return NeighbourDigests(
        peer=peer, version=version,
        relations=tuple(merged[name] for name in sorted(merged)))


def digest_bytes(digests: Optional[NeighbourDigests]) -> int:
    """Serialized-size estimate of a piggybacked digest bundle, for the
    in-process transports' traffic accounting (the wire transport counts
    exact frame bytes)."""
    if digests is None:
        return 0
    total = 24 + len(digests.peer) + len(digests.version)
    for digest in digests.relations:
        total += (digest.nbits + 3) // 4
        total += len(digest.relation) + len(digest.fingerprint) + 24
    return total
