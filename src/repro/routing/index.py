"""The per-node routing index: fused digests, topology, and traffic.

A :class:`RoutingIndex` is what a routing-enabled
:class:`~repro.net.node.PeerNode` consults during its hop-by-hop gather.
It learns three things, all passively, from traffic the node would have
paid for anyway:

* **Neighbour digests** — :class:`~repro.routing.digest.NeighbourDigests`
  bundles piggybacked on :class:`~repro.net.protocol.Answer` replies,
  keyed by the provider's store version.
* **Static peer descriptions** — each gathered peer's
  :class:`~repro.core.system.Peer`, owned DECs, trust edges, and DEC
  targets, mined from subsystem payloads.  Topology is static for the
  lifetime of a network (:meth:`~repro.net.network.PeerNetwork.sync`
  rejects topology changes), so a description never goes stale.
* **Traffic statistics** — the :class:`~repro.routing.stats.TrafficStats`
  productivity ordering, mined incrementally from the network's
  :class:`~repro.core.messaging.ExchangeLog`.

It also caches, per ``(child, claimed-set)`` gather context, the last
full subsystem payload a child returned together with its
:func:`subsystem_fingerprint` content token.  The gather sends that
token with the next :class:`~repro.net.protocol.PeerQuery`; a child
whose freshly gathered payload hashes to the same token replies with a
tiny ``{"unchanged": True}`` frame and the requester substitutes the
cached payload — sound because the token is a content hash of the
payload itself (stats excluded — they are per-run cost accounting, not
content), so any data change anywhere in the child's subtree changes
the token and forces a full reply.

**Fallback rules** (pruning is never a correctness decision): a skip
requires either a static description (leaf synthesis) or a same-gather
version confirmation (fetch elision); anything missing, stale, or
version-mismatched degrades to contacting the neighbour exactly as the
flooding gather would.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..core.results import ExchangeStats
from ..obs.metrics import MetricsRegistry
from .aggregate import SubtreeDigest
from .digest import NeighbourDigests
from .stats import DEFAULT_DECAY, TrafficStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.messaging import ExchangeLog
    from ..core.system import Peer

__all__ = ["RoutingIndex", "PeerDescription", "subsystem_fingerprint"]

#: cached subsystem payloads per index (LRU) — one per (child, context)
_MAX_CACHED_PAYLOADS = 16


def subsystem_fingerprint(payload: Mapping) -> str:
    """A deterministic content token for one subsystem payload.

    Hashes everything that defines the payload's *meaning* — peers
    (schema + local ICs), instance fingerprints, the DEC multiset, and
    trust edges — and deliberately excludes ``stats``, which describe
    what one particular gather cost rather than what the subtree
    contains.  Returns ``""`` (token unavailable, feature disabled for
    this payload) when a component cannot be canonically serialised.
    """
    from ..core.io import constraint_to_dict, schema_to_spec
    try:
        digest = hashlib.sha256()
        for name in sorted(payload["peers"]):
            peer = payload["peers"][name]
            digest.update(b"\x00P" + name.encode("utf-8"))
            digest.update(json.dumps(schema_to_spec(peer.schema),
                                     sort_keys=True,
                                     ensure_ascii=True).encode("ascii"))
            for constraint in peer.local_ics:
                digest.update(json.dumps(constraint_to_dict(constraint),
                                         sort_keys=True,
                                         ensure_ascii=True)
                              .encode("ascii"))
        for name in sorted(payload["instances"]):
            digest.update(b"\x00I" + name.encode("utf-8"))
            digest.update(payload["instances"][name].fingerprint()
                          .encode("utf-8"))
        for entry in sorted(
                json.dumps({"owner": dec.owner, "other": dec.other,
                            "constraint":
                                constraint_to_dict(dec.constraint)},
                           sort_keys=True, ensure_ascii=True)
                for dec in payload["decs"]):
            digest.update(b"\x00D" + entry.encode("ascii"))
        for entry in sorted(
                json.dumps([owner, str(level), other],
                           ensure_ascii=True)
                for owner, level, other in payload["trust"]):
            digest.update(b"\x00T" + entry.encode("ascii"))
    except Exception:
        return ""
    return "sub-" + digest.hexdigest()[:16]


def _dec_content_key(dec) -> object:
    """Content key for deduplicating relayed DECs (mirrors the view
    merge in :mod:`repro.net.node`); exotic constraints fall back to
    identity."""
    from ..core.io import constraint_to_dict
    try:
        return (dec.owner, dec.other,
                json.dumps(constraint_to_dict(dec.constraint),
                           sort_keys=True))
    except Exception:
        return (dec.owner, dec.other, id(dec))


@dataclass(frozen=True)
class PeerDescription:
    """One gathered peer's static shape: schema, DECs, trust, targets.

    Everything here is fixed for the network's lifetime, so holding it
    lets the gather *synthesize* the subsystem reply of a neighbour
    whose DEC targets are all claimed by the current gather — byte-like
    identical to what the neighbour itself would have answered.
    """

    peer: "Peer"
    decs: tuple
    trust: tuple
    targets: frozenset


class RoutingIndex:
    """One node's learned routing state (thread-safe)."""

    def __init__(self, owner: str, *, decay: float = DEFAULT_DECAY,
                 max_payloads: int = _MAX_CACHED_PAYLOADS) -> None:
        self.owner = owner
        self._lock = threading.Lock()
        self._digests: dict[str, NeighbourDigests] = {}
        self._aggregates: dict[str, SubtreeDigest] = {}
        self._descriptions: dict[str, PeerDescription] = {}
        self._payloads: "OrderedDict[tuple[str, frozenset], tuple[str, dict]]" = OrderedDict()
        self._max_payloads = max_payloads
        self.traffic = TrafficStats(decay=decay)
        self._log_position = 0
        #: live counters (cache hit rate, prunes) scraped by GetStatus
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def ingest_log(self, log: "ExchangeLog") -> None:
        """Mine this node's own new exchange events incrementally."""
        events = log.events_since(self._log_position)
        self._log_position += len(events)
        mine = [event for event in events
                if event.requester == self.owner]
        if mine:
            with self._lock:
                self.traffic.ingest(mine)

    def observe_digests(self, digests: NeighbourDigests) -> None:
        with self._lock:
            self._digests[digests.peer] = digests

    def observe_aggregate(self, child: str,
                          aggregate: SubtreeDigest) -> None:
        """Store the subtree aggregate a neighbour piggybacked.

        Keyed by the *neighbour* (the subtree's entry point from this
        node), not the aggregate's declared root — a relayed frame could
        claim any root, but pruning decisions are only ever made about
        the neighbour the answer came from.
        """
        with self._lock:
            self._aggregates[child] = aggregate

    def confirm_aggregate(self, child: str, token: str,
                          version: str) -> Optional[SubtreeDigest]:
        """Re-stamp a stored aggregate the child just confirmed fresh.

        Called when a reply quoted ``token`` as the child's *current*
        subtree content without resending bits.  If the stored aggregate
        matches the token, its ``version`` advances to the requester's
        current system version — content provably unchanged in this
        gather — which is what licenses the zero-message prune on later
        queries at the same version.  A token mismatch returns ``None``
        (the store is stale; degrade).
        """
        with self._lock:
            held = self._aggregates.get(child)
            if held is None or held.token != token:
                return None
            if held.version != version:
                held = replace(held, version=version)
                self._aggregates[child] = held
            return held

    def learn_topology(self, payload: Mapping) -> None:
        """Mine static peer descriptions from one subsystem payload.

        A gathered payload carries each covered peer's *complete* DEC
        list and trust edges (every node relays its own in full), so
        filtering by owner — deduplicated, first occurrence kept, which
        preserves the owner's original ordering — reconstructs exactly
        what that peer would hand out itself.
        """
        with self._lock:
            for name, peer in payload["peers"].items():
                if name == self.owner or name in self._descriptions:
                    continue
                seen: set = set()
                decs = tuple(
                    dec for dec in payload["decs"]
                    if dec.owner == name
                    and (key := _dec_content_key(dec)) not in seen
                    and not seen.add(key))
                trust_seen: set = set()
                trust = tuple(
                    edge for edge in payload["trust"]
                    if edge[0] == name and edge not in trust_seen
                    and not trust_seen.add(edge))
                self._descriptions[name] = PeerDescription(
                    peer=peer, decs=decs, trust=trust,
                    targets=frozenset(dec.other for dec in decs))

    def remember_subsystem(self, child: str, context: frozenset,
                           token: str, payload: Mapping) -> None:
        """Cache a child's full subsystem payload under its content
        token for this gather context (LRU-bounded)."""
        entry = {"peers": dict(payload["peers"]),
                 "instances": dict(payload["instances"]),
                 "decs": list(payload["decs"]),
                 "trust": list(payload["trust"])}
        with self._lock:
            self._payloads[(child, context)] = (token, entry)
            self._payloads.move_to_end((child, context))
            while len(self._payloads) > self._max_payloads:
                self._payloads.popitem(last=False)

    # ------------------------------------------------------------------
    # Consulting
    # ------------------------------------------------------------------
    def digest_version(self, peer: str) -> str:
        with self._lock:
            held = self._digests.get(peer)
            return held.version if held is not None else ""

    def digests_for(self, peer: str) -> Optional[NeighbourDigests]:
        with self._lock:
            return self._digests.get(peer)

    def aggregate_for(self, child: str) -> Optional[SubtreeDigest]:
        with self._lock:
            return self._aggregates.get(child)

    def aggregate_token(self, child: str) -> str:
        """The stored subtree token to quote when contacting ``child``
        (empty when no aggregate is held)."""
        with self._lock:
            held = self._aggregates.get(child)
            return held.token if held is not None else ""

    def prunable_subtree(self, child: str, constants,
                         version: str) -> Optional[SubtreeDigest]:
        """The aggregate licensing a **zero-message** prune of
        ``child``'s subtree for a query over ``constants`` — or ``None``.

        Requires all three legs, each independently conservative:

        * the stored aggregate's ``version`` equals the requester's
          *current* system version (syncs stamp every node, so any data
          change anywhere reverts this and forces a contact — which is
          also what keeps down-peer detection on the contacted paths);
        * the subtree is ``safe`` (identity inclusions, ``less`` trust,
          no local ICs all the way down);
        * the aggregated digests are disjoint from every query constant
          (no-false-negatives: a ``True`` is a proof of absence).
        """
        if not version or not constants:
            return None
        with self._lock:
            held = self._aggregates.get(child)
        if held is None or held.version != version or not held.safe:
            return None
        if not held.disjoint_from(constants):
            return None
        self.metrics.inc("routing.subtree_prunes")
        return held

    def description(self, peer: str) -> Optional[PeerDescription]:
        with self._lock:
            return self._descriptions.get(peer)

    def recall_subsystem(self, child: str, context: frozenset
                         ) -> tuple[str, Optional[dict]]:
        """The cached ``(token, payload)`` for a gather context, or
        ``("", None)``.  The caller must hold the returned payload for
        the duration of its request — the LRU may evict the entry."""
        with self._lock:
            held = self._payloads.get((child, context))
            if held is None:
                self.metrics.inc("routing.subsystem_cache_misses")
                return "", None
            self._payloads.move_to_end((child, context))
            token, entry = held
        self.metrics.inc("routing.subsystem_cache_hits")
        return token, entry

    def synthesize(self, peer: str, claimed: frozenset
                   ) -> Optional[dict]:
        """A neighbour's subsystem reply, built locally — or ``None``.

        Possible only when the index holds the neighbour's static
        description **and** every DEC target of the neighbour is already
        claimed by this gather: the neighbour's own gather would then
        find nothing pending and answer purely from static state, which
        is exactly what is synthesized here.  The caller still owes the
        neighbour its relation fetches — every pending neighbour
        receives at least one message per gather, so fault behaviour
        (down peers, drops) is identical to the flooding gather.
        """
        description = self.description(peer)
        if description is None:
            return None
        if not description.targets <= claimed:
            return None
        if not description.peer.schema.names:
            # a relation-less peer would otherwise receive no message at
            # all, diverging from flooding's fault observability
            return None
        self.metrics.inc("routing.synthesized_replies")
        return {"peers": {peer: description.peer},
                "instances": {},
                "decs": list(description.decs),
                "trust": list(description.trust),
                "stats": ExchangeStats()}

    def order(self, peers: Sequence[str]) -> list[str]:
        """Contact order: descending learned productivity, stable."""
        with self._lock:
            return self.traffic.order(peers)

    def __repr__(self) -> str:
        with self._lock:
            return (f"RoutingIndex({self.owner!r}, "
                    f"digests={sorted(self._digests)}, "
                    f"descriptions={sorted(self._descriptions)}, "
                    f"payloads={len(self._payloads)})")
