"""Query-driven routing: learn where the data is, stop flooding.

The routing layer gives each :class:`~repro.net.node.PeerNode` a local,
continuously learned picture of its network so the hop-by-hop gather can
stop paying for neighbours that provably cannot contribute:

* :mod:`repro.routing.digest` — compact Bloom-style per-relation
  summaries of a peer's :class:`~repro.storage.tables.FactTable`
  contents, exchanged piggyback on :class:`~repro.net.protocol.Answer`
  messages.  No false negatives: a digest can only over-approximate.
* :mod:`repro.routing.aggregate` — :class:`SubtreeDigest` unions of
  those summaries over everything reachable through one neighbour,
  built hop-by-hop as gathers return, so a requester can prove an
  entire *branch* of the gather tree irrelevant to a query's constants
  and skip it — not just a single relation fetch.
* :mod:`repro.routing.stats` — per-neighbour hit-rate and
  bytes-per-useful-tuple statistics mined from the
  :class:`~repro.core.messaging.ExchangeLog`, aged with a decay factor
  so routing adapts as data moves.
* :mod:`repro.routing.index` — the :class:`RoutingIndex` fusing all
  three, consulted by the gather path.  Pruning is **never** a
  correctness decision: every skip is backed by same-gather version
  confirmation or static topology the network construction guarantees,
  and anything stale, missing, or unknown falls back to contacting the
  neighbour.

This package sits below :mod:`repro.net` (which imports it) and must
never import it back.
"""

from .aggregate import (
    SubtreeDigest,
    aggregate_bytes,
    build_subtree,
    subtree_token,
)
from .digest import (
    DIGEST_BITS,
    DIGEST_HASHES,
    DIGEST_MAX_BITS,
    NeighbourDigests,
    RelationDigest,
    adaptive_nbits,
    digest_bytes,
    merge_neighbour_digests,
)
from .index import RoutingIndex, subsystem_fingerprint
from .stats import TrafficStats

__all__ = [
    "DIGEST_BITS",
    "DIGEST_HASHES",
    "DIGEST_MAX_BITS",
    "RelationDigest",
    "NeighbourDigests",
    "SubtreeDigest",
    "adaptive_nbits",
    "aggregate_bytes",
    "build_subtree",
    "digest_bytes",
    "merge_neighbour_digests",
    "subtree_token",
    "RoutingIndex",
    "subsystem_fingerprint",
    "TrafficStats",
]
