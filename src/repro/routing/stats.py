"""Traffic mining: per-neighbour productivity from the exchange log.

Routing's second signal (after content digests) is history: which
neighbours actually produced tuples when asked.  :class:`TrafficStats`
ingests the :class:`~repro.core.messaging.ExchangeEvent` stream a node's
own requests generated and keeps, per provider:

* a decayed **hit rate** — the fraction of requests that moved at least
  one tuple;
* decayed **tuples** and **bytes** totals, whose ratio is the
  bytes-per-useful-tuple cost of talking to that provider.

Every ingested batch first ages all weights by ``decay``, so a
neighbour that stopped producing sinks in the ordering within a few
gathers instead of coasting on ancient hits.  The ordering is
deterministic (score descending, name ascending) — it decides *in which
order* productive neighbours are contacted, never *whether* they are
contacted, so it can never affect answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.messaging import ExchangeEvent

__all__ = ["TrafficStats"]

#: default aging factor applied to every provider per ingested batch
DEFAULT_DECAY = 0.9


@dataclass
class _ProviderTraffic:
    requests: float = 0.0
    hits: float = 0.0
    tuples: float = 0.0
    bytes: float = 0.0


class TrafficStats:
    """Decayed per-provider traffic aggregates (not thread-safe; the
    owning :class:`~repro.routing.index.RoutingIndex` serialises
    access)."""

    def __init__(self, decay: float = DEFAULT_DECAY) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self._providers: dict[str, _ProviderTraffic] = {}

    def ingest(self, events: Iterable["ExchangeEvent"]) -> None:
        """Fold a batch of this node's own exchange events in, aging
        every provider's weights once first."""
        events = list(events)
        if not events:
            return
        for traffic in self._providers.values():
            traffic.requests *= self.decay
            traffic.hits *= self.decay
            traffic.tuples *= self.decay
            traffic.bytes *= self.decay
        for event in events:
            traffic = self._providers.setdefault(event.provider,
                                                 _ProviderTraffic())
            traffic.requests += 1.0
            if event.tuples_transferred > 0:
                traffic.hits += 1.0
                traffic.tuples += event.tuples_transferred
            traffic.bytes += event.bytes_estimate

    # ------------------------------------------------------------------
    def hit_rate(self, provider: str) -> float:
        traffic = self._providers.get(provider)
        if traffic is None or traffic.requests <= 0.0:
            return 0.0
        return traffic.hits / traffic.requests

    def bytes_per_useful_tuple(self, provider: str) -> float:
        """Decayed transfer cost per tuple that was actually new;
        ``inf`` for a provider that never moved a tuple."""
        traffic = self._providers.get(provider)
        if traffic is None or traffic.tuples <= 0.0:
            return float("inf")
        return traffic.bytes / traffic.tuples

    def productivity(self, provider: str) -> float:
        """The fused ordering score: hit rate, nudged by tuple volume."""
        traffic = self._providers.get(provider)
        if traffic is None or traffic.requests <= 0.0:
            return 0.0
        volume = traffic.tuples / (traffic.tuples + 1.0)
        return self.hit_rate(provider) + 0.001 * volume

    def order(self, providers: Sequence[str]) -> list[str]:
        """Providers by descending productivity; name breaks ties, so
        two nodes with identical histories order identically."""
        return sorted(providers,
                      key=lambda name: (-self.productivity(name), name))

    def known_providers(self) -> tuple[str, ...]:
        return tuple(sorted(self._providers))
