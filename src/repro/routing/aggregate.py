"""Hop-by-hop aggregated subtree digests.

PR 8's :class:`~repro.routing.digest.NeighbourDigests` describe one
*direct* neighbour; on deep topologies a gather still pays one full
round-trip per edge before it learns that a whole branch holds nothing
relevant.  A :class:`SubtreeDigest` fixes that: when a node answers a
subsystem gather it unions its **own** per-relation digests with the
aggregates its children returned, producing one digest bundle covering
*everything reachable through it*.  The result is stamped with a
content token (:func:`subtree_token`) playing the same role the
``subsystem_fingerprint`` content token plays for cached payloads, and
piggybacked up the tree only when the requester's quoted token is
behind — exactly the staleness discipline of the flat digests.

**Soundness contract.**  Every aggregate keeps the digest layer's
no-false-negatives guarantee: :meth:`SubtreeDigest.disjoint_from`
returning ``True`` proves that *no relation at any peer in the subtree*
holds a row whose first column equals one of the query's constants.
Whether that proof licenses skipping the subtree is a separate,
stricter question answered by the ``safe`` flag, computed bottom-up:

* every DEC owned by a subtree node is a full positional
  :class:`~repro.core.constraints.InclusionDependency` (identity column
  map, so imported rows keep their first column unchanged),
* every trust edge owned by a subtree node is ``less`` (imports are
  unioned, never repaired against the importer's data), and
* no subtree node carries local ICs.

Under those conditions a subtree whose aggregate is disjoint from the
query constants cannot contribute, remove, or rewrite any
constant-keyed tuple at the gathering root, so omitting it leaves the
answer tuple-identical.  Anything richer — EGDs, typed TGCs, ``same``
trust, local ICs — flips ``safe`` off for every ancestor aggregate, and
the gather degrades to PR 8 behaviour (which degrades to flooding).
Missing, stale, or width-incompatible pieces degrade the same way: the
builders return ``None`` rather than guess (all-or-nothing, as the
shard router composes flat digests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .digest import NeighbourDigests, RelationDigest

__all__ = [
    "SubtreeDigest",
    "aggregate_bytes",
    "build_subtree",
    "subtree_token",
]


def subtree_token(root: str, peers: Sequence[str], safe: bool,
                  relations: Sequence[RelationDigest]) -> str:
    """Content token of an *entire* subtree's aggregate.

    Plays the same role the ``subsystem_fingerprint`` content token
    plays for PR 8's cached payloads — equal tokens prove equal content
    — but is computed over the aggregate's own parts rather than a
    gather payload.  That matters: payloads are relevance-scoped, so
    their fingerprints vary with the query's constants, while the
    aggregate always unions *full* store digests and must stamp
    identically whatever scope rebuilt it.  Every constituent
    :class:`~repro.routing.digest.RelationDigest` carries its slice's
    content fingerprint (and composed fingerprints are built in sorted
    child order), so any row changing anywhere in the subtree — and any
    safety flip — changes the token.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{root}|{int(safe)}|{','.join(peers)}"
                  .encode("utf-8"))
    for digest in relations:
        hasher.update(
            f"|{digest.relation}|{digest.row_count}"
            f"|{digest.fingerprint}|{digest.nbits}|{digest.k}"
            f"|{digest.bits:x}".encode("utf-8"))
    return "agg-" + hasher.hexdigest()[:16]


@dataclass(frozen=True)
class SubtreeDigest:
    """Union digest of everything reachable through one neighbour.

    ``root`` is the subtree's entry point (the neighbour that built it);
    ``peers`` lists every peer the aggregate covers, sorted; ``token``
    is the :func:`subtree_token` content stamp consumers must confirm
    in-gather before trusting the bits; ``version`` is the *global*
    system version the builder observed — non-empty only when every
    constituent part carried the same stamp, which is what licenses the
    zero-message prune (see :meth:`~repro.routing.index.RoutingIndex`);
    ``safe`` is the bottom-up prune-safety flag from the module
    docstring; ``relations`` union one digest per relation name across
    the whole subtree.
    """

    root: str
    peers: tuple[str, ...] = ()
    token: str = ""
    version: str = ""
    safe: bool = False
    relations: tuple[RelationDigest, ...] = ()

    def digest_for(self, relation: str) -> Optional[RelationDigest]:
        for digest in self.relations:
            if digest.relation == relation:
                return digest
        return None

    def disjoint_from(self, values: Iterable[object]) -> bool:
        """``True`` proves no peer in the subtree stores a row whose
        first column equals any of ``values``, in *any* relation.

        Checking every relation (not just the query's) is deliberate:
        DECs propagate rows between differently-named relations along
        the tree, so a constant hiding anywhere in the subtree could
        surface under the query's relation at the root.
        """
        values = list(values)
        return all(digest.disjoint_from(values)
                   for digest in self.relations)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"root": self.root, "peers": list(self.peers),
                "token": self.token, "version": self.version,
                "safe": self.safe,
                "relations": [digest.to_dict()
                              for digest in self.relations]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SubtreeDigest":
        return cls(root=data["root"], peers=tuple(data["peers"]),
                   token=data["token"], version=data.get("version", ""),
                   safe=bool(data.get("safe", False)),
                   relations=tuple(RelationDigest.from_dict(entry)
                                   for entry in data["relations"]))


def build_subtree(root: str, own: Optional[NeighbourDigests],
                  children: Sequence[Optional[SubtreeDigest]], *,
                  safe_root: bool,
                  version: str) -> Optional[SubtreeDigest]:
    """Union a node's own digests with its children's aggregates.

    All-or-nothing: if the node's own digests are unavailable (sharded
    slice without a composed logical bundle, store race) or *any* child
    aggregate is missing, the whole subtree has no aggregate — a partial
    union could prove a false absence, which the no-false-negatives
    contract forbids.  ``version`` is stamped only when every child
    aggregate carries the same stamp (a child caught mid-sync would
    otherwise smuggle pre-sync bits under a post-sync stamp); ``safe``
    requires ``safe_root`` *and* every child subtree safe.
    """
    if own is None or any(child is None for child in children):
        return None
    parts = sorted((child for child in children),
                   key=lambda child: child.root)
    merged: dict[str, RelationDigest] = {
        digest.relation: digest for digest in own.relations}
    peers = {root}
    safe = bool(safe_root)
    stamped = version
    try:
        for child in parts:
            peers.update(child.peers)
            safe = safe and child.safe
            if child.version != version:
                stamped = ""
            for digest in child.relations:
                held = merged.get(digest.relation)
                merged[digest.relation] = (digest if held is None
                                           else held.merge(digest))
    except ValueError:
        # incompatible digest parameters (non power-of-two width ratio,
        # differing hash counts) — degrade rather than mis-merge
        return None
    covered = tuple(sorted(peers))
    relations = tuple(merged[name] for name in sorted(merged))
    return SubtreeDigest(
        root=root, peers=covered,
        token=subtree_token(root, covered, safe, relations),
        version=stamped, safe=safe, relations=relations)


def aggregate_bytes(aggregate: Optional[SubtreeDigest]) -> int:
    """Serialized-size estimate of a piggybacked aggregate, mirroring
    :func:`~repro.routing.digest.digest_bytes` for the in-process
    transports' traffic accounting (the wire transport counts exact
    frame bytes)."""
    if aggregate is None:
        return 0
    total = 32 + len(aggregate.root) + len(aggregate.token)
    total += len(aggregate.version)
    total += sum(len(peer) + 4 for peer in aggregate.peers)
    for digest in aggregate.relations:
        total += (digest.nbits + 3) // 4
        total += len(digest.relation) + len(digest.fingerprint) + 24
    return total
