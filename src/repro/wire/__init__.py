"""repro.wire — the cross-process wire runtime.

Takes the :mod:`repro.net` peer network across OS processes: every
peer of a :class:`~repro.core.system.PeerSystem` runs as an
independent server process holding only its local slice, peers
exchange the same typed protocol messages as in-process nodes — but
framed as newline-delimited JSON over TCP — and a thin client session
answers paper workloads against the live cluster.

Layers
------
:mod:`repro.wire.codec`
    Frame codec for every protocol message (handshake, rows, deltas in
    the durable store's JSONL vocabulary, subsystem gathers via the
    :mod:`repro.core.io` dict codecs, full query results).
:mod:`repro.wire.transport`
    :class:`SocketTransport` — the :class:`~repro.net.transport.Transport`
    ABC over pooled TCP connections with per-request deadlines, typed
    retryable failures, and exact byte accounting.
:mod:`repro.wire.server`
    :class:`PeerServer` — one peer's node behind a listening socket
    (also runs in-process for tests and benchmarks);
    ``python -m repro serve`` is its process entry point.
:mod:`repro.wire.cluster`
    :class:`ClusterSupervisor` — spawn/supervise one server process per
    peer; :func:`open_wire_session` backs
    ``open_session(system, network="wire")``.
:mod:`repro.wire.session`
    :class:`RemoteNetworkSession` — ``answer``/``answer_many`` against
    live processes, constructed from peer addresses alone.
"""

from .codec import (
    WIRE_MAGIC,
    WIRE_PROTOCOL,
    WireProtocolError,
    decode_message,
    encode_message,
    message_from_dict,
    message_to_dict,
    result_from_dict,
    result_to_dict,
)
from .cluster import (
    ClusterError,
    ClusterSupervisor,
    fetch_status,
    free_port,
    open_wire_session,
)
from .server import PeerServer, build_peer_node
from .session import RemoteNetworkSession
from .transport import SocketTransport, format_address, parse_address

__all__ = [
    # codec
    "WIRE_PROTOCOL", "WIRE_MAGIC", "WireProtocolError",
    "encode_message", "decode_message", "message_to_dict",
    "message_from_dict", "result_to_dict", "result_from_dict",
    # transport
    "SocketTransport", "parse_address", "format_address",
    # server / cluster
    "PeerServer", "build_peer_node", "ClusterSupervisor",
    "ClusterError", "fetch_status", "free_port", "open_wire_session",
    # client
    "RemoteNetworkSession",
]
