"""The cluster supervisor: one OS process per peer, supervised.

:class:`ClusterSupervisor` takes a system (a
:class:`~repro.core.system.PeerSystem` or the path of its JSON
definition), allocates a localhost port per peer, and launches
``python -m repro serve SYSTEM PEER --port ... --peers ...`` once per
peer — each process holding only its peer's local slice (instance,
DECs, trust edges; durable under ``data_dir/<peer>/`` when given).
``start()`` blocks until every server has printed its ``READY`` line,
``stop()`` terminates them gracefully (SIGTERM → the servers flush
their durable caches → SIGKILL stragglers), and ``kill(peer)`` crashes
one process hard for fault drills.

:func:`open_wire_session` is the one-call path the
``open_session(system, network="wire")`` backend switch uses: launch a
cluster for the system, connect a
:class:`~repro.wire.session.RemoteNetworkSession` to it, and hand the
supervisor to the session so ``close()`` tears the processes down.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..core.system import PeerSystem
from ..net.errors import NetworkError
from ..obs.metrics import merge_snapshots

__all__ = ["ClusterError", "ClusterSupervisor", "fetch_status",
           "free_port", "open_wire_session"]

#: the src/ directory this package was imported from — child processes
#: must resolve ``repro`` the same way
_SRC_DIR = Path(__file__).resolve().parents[2]


class ClusterError(NetworkError):
    """A peer server process failed to start, died early, or would not
    stop."""


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned currently-free TCP port on ``host``.

    Bind-and-release: a racing process could grab the port before the
    server does.  :class:`~repro.wire.server.PeerServer` absorbs the
    common transient case (``EADDRINUSE`` from a just-released probe or
    a restarting sibling) with a bounded bind retry; a port that stays
    occupied still surfaces as a failed ``READY`` wait, reported typed
    instead of hanging.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class _ReadyWatcher:
    """Read one child's stdout until its READY line (on a thread, so a
    wedged child cannot hang the supervisor)."""

    def __init__(self, peer: str, process: subprocess.Popen) -> None:
        self.peer = peer
        self.process = process
        self.ready = threading.Event()
        self.address: Optional[str] = None
        self.thread = threading.Thread(target=self._watch,
                                       name=f"ready-{peer}", daemon=True)
        self.thread.start()

    def _watch(self) -> None:
        stream = self.process.stdout
        if stream is None:  # pragma: no cover - spawn always pipes
            return
        try:
            for line in stream:
                parts = line.split()
                if len(parts) >= 3 and parts[0] == "READY":
                    self.address = parts[2]
                    self.ready.set()
                    return
        except (OSError, ValueError):
            pass  # stream closed under us during teardown
        # EOF without READY: the child died during startup — signal
        # anyway (address stays None) so start() fails fast instead of
        # sitting out the whole startup timeout
        self.ready.set()


class ClusterSupervisor:
    """Launch and supervise one ``repro serve`` process per peer."""

    def __init__(self, system: Union[PeerSystem, str, Path], *,
                 host: str = "127.0.0.1",
                 data_dir: Optional[Union[str, Path]] = None,
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 timeout: Optional[float] = None,
                 default_method: str = "auto",
                 snapshot_every: int = 64,
                 startup_timeout: float = 60.0,
                 python: str = sys.executable,
                 workers: int = 8,
                 pending_limit: int = 64,
                 idle_timeout: float = 60.0,
                 shard_map=None, replicas: int = 1,
                 routing: bool = False,
                 tracing: bool = False) -> None:
        self.host = host
        self.shard_map = shard_map
        self.replicas = replicas
        self.routing = routing
        self.tracing = tracing
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.hop_budget = hop_budget
        self.retries = retries
        self.timeout = timeout
        self.default_method = default_method
        self.snapshot_every = snapshot_every
        self.workers = workers
        self.pending_limit = pending_limit
        self.idle_timeout = idle_timeout
        self.startup_timeout = startup_timeout
        self.python = python
        self._own_system_file: Optional[Path] = None
        if isinstance(system, PeerSystem):
            # the servers need the definition as a file; park it in a
            # temp location owned (and deleted) by this supervisor
            from ..core.io import system_to_dict
            handle = tempfile.NamedTemporaryFile(
                "w", prefix="repro-cluster-", suffix=".json",
                delete=False, encoding="utf-8")
            with handle:
                json.dump(system_to_dict(system), handle, sort_keys=True)
            self._own_system_file = Path(handle.name)
            self.system_path = self._own_system_file
            self.peers = tuple(sorted(system.peers))
        else:
            from ..core.io import load_system
            self.system_path = Path(system)
            self.peers = tuple(sorted(
                load_system(str(self.system_path)).peers))
        from ..shard.shardmap import cluster_units
        #: the physical process names — replica names (``P#s@r``) for
        #: covered peers, plain peer names otherwise
        self.units = cluster_units(shard_map, self.peers, replicas)
        self.processes: dict[str, subprocess.Popen] = {}
        self._addresses: dict[str, str] = {}
        self._commands: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def start(self) -> dict[str, str]:
        """Spawn every server process; return ``{unit: "host:port"}``.

        One process per *unit*: plain peers get one, sharded peers get
        ``shards × replicas`` (the unit names — ``P#s@r`` — are the
        address keys, which is exactly the layout a
        :class:`~repro.shard.router.ShardRouter` consumes).  Blocks
        until all servers print ``READY``; on any startup failure the
        whole cluster is torn down and a typed :class:`ClusterError`
        names the unit that never came up.
        """
        if self.processes:
            raise ClusterError("cluster already started")
        from ..shard.shardmap import parse_replica_name
        addresses = {unit: f"{self.host}:{free_port(self.host)}"
                     for unit in self.units}
        peers_spec = ",".join(f"{unit}={address}"
                              for unit, address in addresses.items())
        shard_json = (self.shard_map.to_json()
                      if self.shard_map is not None else None)
        watchers = []
        try:
            for unit in self.units:
                parsed = parse_replica_name(unit)
                peer = parsed[0] if parsed else unit
                port = addresses[unit].rpartition(":")[2]
                command = [self.python, "-m", "repro", "serve",
                           str(self.system_path), peer,
                           "--host", self.host, "--port", port,
                           "--peers", peers_spec,
                           "--retries", str(self.retries),
                           "--method", self.default_method,
                           "--snapshot-every", str(self.snapshot_every),
                           "--workers", str(self.workers),
                           "--pending-limit", str(self.pending_limit),
                           "--idle-timeout", str(self.idle_timeout)]
                if self.routing:
                    command += ["--routing"]
                if self.tracing:
                    command += ["--tracing"]
                if shard_json is not None:
                    command += ["--shard-map", shard_json]
                    if parsed is not None:
                        command += ["--shard", str(parsed[1]),
                                    "--replica", str(parsed[2])]
                if self.hop_budget is not None:
                    command += ["--hops", str(self.hop_budget)]
                if self.timeout is not None:
                    command += ["--timeout", str(self.timeout)]
                if self.data_dir is not None:
                    command += ["--data-dir", str(self.data_dir)]
                self._commands[unit] = command
                watchers.append(self._spawn(unit))
            deadline = time.monotonic() + self.startup_timeout
            for watcher in watchers:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not watcher.ready.wait(remaining):
                    raise ClusterError(
                        f"peer server {watcher.peer!r} did not report "
                        f"READY within {self.startup_timeout}s "
                        f"(exit code "
                        f"{watcher.process.poll()})")
                if watcher.address is None:
                    raise ClusterError(
                        f"peer server {watcher.peer!r} exited before "
                        f"reporting READY (exit code "
                        f"{watcher.process.wait()})")
        except BaseException:
            self.stop()
            raise
        self._addresses = addresses
        return dict(addresses)

    def _spawn(self, unit: str) -> _ReadyWatcher:
        """Launch (or relaunch) one unit's stored command."""
        process = subprocess.Popen(
            self._commands[unit], env=self._spawn_env(),
            stdout=subprocess.PIPE, text=True)
        self.processes[unit] = process
        return _ReadyWatcher(unit, process)

    @staticmethod
    def _spawn_env() -> dict[str, str]:
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_SRC_DIR) + os.pathsep
                             + env.get("PYTHONPATH", "")).rstrip(
                                 os.pathsep)
        return env

    def addresses(self) -> dict[str, str]:
        if not self._addresses:
            raise ClusterError("cluster not started")
        return dict(self._addresses)

    def metrics(self, *, timeout: float = 5.0) -> dict:
        """Ask every live unit what it is doing (``GetStatus`` scrape).

        Returns ``{"units": {unit: status-or-error},
        "cluster": merged}`` where ``merged`` folds every reachable
        unit's registries together (counters/gauges add, histograms
        merge bucket-wise, percentile summaries recomputed) — the
        cluster-wide view of queue depths, sheds, retries, and
        latencies.  Unreachable units degrade to an ``{"error": ...}``
        entry instead of failing the scrape.
        """
        statuses: dict[str, dict] = {}
        for unit, address in self.addresses().items():
            try:
                statuses[unit] = fetch_status(address, timeout=timeout)
            except NetworkError as exc:
                statuses[unit] = {"unit": unit, "error": str(exc)}
        merged = merge_snapshots(
            status.get("metrics", {}) for status in statuses.values()
            if "error" not in status)
        return {"units": statuses, "cluster": merged}

    def shard_units(self, peer: str) -> tuple[str, ...]:
        """The unit names serving ``peer`` (itself, when unsharded)."""
        from ..shard.shardmap import parse_replica_name
        return tuple(
            unit for unit in self.units
            if unit == peer
            or (parsed := parse_replica_name(unit)) is not None
            and parsed[0] == peer)

    # ------------------------------------------------------------------
    def alive(self, unit: str) -> bool:
        process = self._process(unit)
        return process.poll() is None

    def kill(self, unit: str) -> None:
        """Crash one server process hard (SIGKILL): no flush, no
        goodbye — the fault-drill primitive."""
        process = self._process(unit)
        process.kill()
        process.wait(timeout=10)
        self._close_stdout(process)

    def restart(self, unit: str) -> str:
        """Re-spawn a dead unit on its old address and data directory.

        The recovery half of the fault drill: the relaunched process
        re-binds the same port (the server's bounded ``EADDRINUSE``
        retry rides out the old socket's lingering state), resumes any
        durable store under the same ``data_dir/<unit>/``, and the rest
        of the cluster needs no reconfiguration — its address for the
        unit never changed.  Refuses (typed) while the process is still
        running: ``kill()`` first.
        """
        process = self._process(unit)
        if process.poll() is None:
            raise ClusterError(
                f"unit {unit!r} is still running; kill() it before "
                f"restart()")
        self._close_stdout(process)
        watcher = self._spawn(unit)
        if not watcher.ready.wait(self.startup_timeout):
            raise ClusterError(
                f"restarted server {unit!r} did not report READY "
                f"within {self.startup_timeout}s (exit code "
                f"{watcher.process.poll()})")
        if watcher.address is None:
            raise ClusterError(
                f"restarted server {unit!r} exited before reporting "
                f"READY (exit code {watcher.process.wait()})")
        return self._addresses[unit]

    def _process(self, unit: str) -> subprocess.Popen:
        try:
            return self.processes[unit]
        except KeyError:
            raise ClusterError(f"no server process for unit {unit!r}"
                               ) from None

    def stop(self, grace: float = 10.0) -> None:
        """Terminate every server (SIGTERM, then SIGKILL stragglers).

        SIGTERM gives durable nodes the clean shutdown that flushes
        their answer and fetch caches to disk — what makes the next
        start a *warm* restart.
        """
        for process in self.processes.values():
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + grace
        for process in self.processes.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            self._close_stdout(process)
        self.processes.clear()
        self._addresses.clear()
        self._commands.clear()
        if self._own_system_file is not None:
            self._own_system_file.unlink(missing_ok=True)
            self._own_system_file = None

    @staticmethod
    def _close_stdout(process: subprocess.Popen) -> None:
        if process.stdout is not None:
            try:
                process.stdout.close()
            except OSError:
                pass

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "up" if self._addresses else "down"
        return (f"ClusterSupervisor({list(self.peers)}, {state}, "
                f"system={str(self.system_path)!r})")


def fetch_status(address: str, *, timeout: float = 5.0) -> dict:
    """Scrape one running peer server's live status over the wire.

    Dials ``address`` directly (no identity expectation — the empty
    expected name skips the handshake unit check, so any unit can be
    probed by address alone), sends a
    :class:`~repro.net.protocol.GetStatus`, and returns the decoded
    status payload: unit/peer identity plus the merged metrics
    snapshot of every registry in that process.
    """
    from ..net.protocol import Answer, GetStatus
    from .transport import SocketTransport
    transport = SocketTransport({"": address},
                                local_name="status-probe",
                                timeout=timeout,
                                connect_timeout=timeout)
    try:
        reply = transport.request(
            GetStatus(sender="status-probe", target=""))
    finally:
        transport.close()
    if (isinstance(reply, Answer) and isinstance(reply.payload, dict)
            and isinstance(reply.payload.get("status"), dict)):
        return dict(reply.payload["status"])
    detail = getattr(reply, "detail", type(reply).__name__)
    raise NetworkError(
        f"unit at {address} did not answer the status probe: {detail}")


def open_wire_session(system: Union[PeerSystem, str, Path], *,
                      default_method: str = "auto",
                      retries: int = 2,
                      timeout: Optional[float] = None,
                      request_timeout: float = 30.0,
                      tracing: bool = False,
                      **cluster_kwargs):
    """Launch a cluster for ``system`` and connect a session to it.

    The returned :class:`~repro.wire.session.RemoteNetworkSession` owns
    the supervisor: ``close()`` (or leaving its ``with`` block) shuts
    every peer process down.  Extra keyword arguments go to
    :class:`ClusterSupervisor` (``data_dir``, ``host``, ``hop_budget``,
    ``snapshot_every``, ``startup_timeout``, ``routing`` — the last
    turns the query-driven routing index on in every server process).
    ``tracing`` stamps every query with a trace context client-side
    *and* passes ``--tracing`` to the servers, so results carry the
    reassembled cross-process span tree.
    """
    from .session import RemoteNetworkSession
    supervisor = ClusterSupervisor(
        system, default_method=default_method, retries=retries,
        timeout=timeout, tracing=tracing, **cluster_kwargs)
    supervisor.start()
    try:
        return RemoteNetworkSession(
            supervisor.addresses(), default_method=default_method,
            retries=retries, timeout=timeout,
            request_timeout=request_timeout, tracing=tracing,
            supervisor=supervisor)
    except BaseException:
        # the session never took ownership: without this, a bad session
        # argument would orphan every just-spawned server process
        supervisor.stop()
        raise
