"""The wire codec: protocol messages as newline-delimited JSON frames.

Every :mod:`repro.net.protocol` message — :class:`FetchRelation`,
:class:`PeerQuery`, :class:`AnswerQuery`, :class:`Answer`,
:class:`Failure` — encodes to exactly one frame: a JSON object
serialized with ``ensure_ascii`` (so the byte stream never contains a
raw newline; unicode constants travel escaped) and terminated by
``b"\\n"``.  Frames are self-describing via their ``"type"`` field, so
:func:`decode_message` inverts :func:`encode_message` without context.

Payload encoding reuses the project's existing JSON shapes end to end:

* relation rows are the plain row lists of :mod:`repro.core.io`;
* delta payloads (:attr:`Answer.delta <repro.net.protocol.Answer>`)
  reuse the durable store's JSONL log-line vocabulary
  (``{"insert": [[...]], "delete": [[...]]}`` — see
  :mod:`repro.storage.durable`), so a delta logged on one peer's disk
  and the same delta crossing the wire are byte-compatible;
* subsystem gathers serialise peers/constraints/schemas with the
  :mod:`repro.core.io` dict codecs (:func:`schema_to_spec`,
  :func:`constraint_to_dict`);
* served query answers carry the full
  :class:`~repro.core.results.QueryResult` in its ``to_dict`` form.

Connections open with a **protocol-version handshake**: the client
sends :func:`hello_frame`, the server answers with its own, and
:func:`check_hello` rejects a frame whose magic or protocol version
does not match — raising the typed :class:`WireProtocolError` instead
of silently mis-decoding frames from a different release.

Everything here is pure data transformation (no sockets); the
round-trip guarantee — ``decode(encode(m))`` equals ``m``, including
content fingerprints of shipped instances — is property-tested in
``tests/wire/test_codec_roundtrip.py``.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Mapping, Optional

from ..core.io import (
    constraint_from_dict,
    constraint_to_dict,
    schema_from_spec,
    schema_to_spec,
)
from ..core.results import ExchangeStats, QueryError, QueryResult
from ..core.system import DataExchange, Peer
from ..core.trust import TrustLevel
from ..net.errors import ProtocolError
from ..net.protocol import (
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    GetStatus,
    Message,
    PeerQuery,
)
from ..obs.trace import Span
from ..relational.instance import DatabaseInstance
from ..routing.aggregate import SubtreeDigest
from ..routing.digest import NeighbourDigests

__all__ = [
    "WIRE_PROTOCOL",
    "WIRE_MAGIC",
    "WireProtocolError",
    "hello_frame",
    "check_hello",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "encode_message",
    "decode_message",
    "message_to_dict",
    "message_from_dict",
    "result_to_dict",
    "result_from_dict",
]

#: bump when the frame vocabulary changes incompatibly
WIRE_PROTOCOL = 1
#: frame magic, so a mis-dialed port fails fast and typed
WIRE_MAGIC = "repro-wire"

#: hard cap on one frame's size (64 MiB) — a corrupt peer must not be
#: able to balloon the reader's memory with a runaway line
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireProtocolError(ProtocolError):
    """A frame violated the wire protocol (bad magic, version mismatch,
    unknown frame type, undecodable JSON).  Not retryable — talking
    harder to a peer that speaks another protocol cannot help."""


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------

def encode_frame(payload: Mapping) -> bytes:
    """One JSON object, ASCII-escaped, newline-terminated."""
    try:
        text = json.dumps(payload, sort_keys=True, ensure_ascii=True,
                          separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(
            f"frame is not JSON-serialisable: {exc}") from exc
    return text.encode("ascii") + b"\n"


def decode_frame(line: bytes) -> dict:
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireProtocolError(
            f"undecodable frame ({exc}): {line[:80]!r}") from exc
    if not isinstance(frame, dict):
        raise WireProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}")
    return frame


def read_frame(stream: BinaryIO) -> Optional[dict]:
    """Read one frame from a buffered binary stream.

    Returns ``None`` on a clean EOF (connection closed between frames);
    raises :class:`WireProtocolError` on a torn frame (EOF mid-line) or
    a frame exceeding :data:`MAX_FRAME_BYTES`.
    """
    line = stream.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        if len(line) > MAX_FRAME_BYTES:
            raise WireProtocolError(
                f"frame exceeds the {MAX_FRAME_BYTES}-byte cap")
        raise WireProtocolError("torn frame: connection closed mid-line")
    return decode_frame(line)


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------

def hello_frame(sender: str = "") -> dict:
    """The handshake frame each side sends when a connection opens."""
    return {"type": "hello", "wire": WIRE_MAGIC,
            "protocol": WIRE_PROTOCOL, "sender": sender}


def check_hello(frame: Mapping) -> None:
    """Validate the counterpart's handshake; raise typed on mismatch."""
    if frame.get("type") != "hello" or frame.get("wire") != WIRE_MAGIC:
        raise WireProtocolError(
            f"peer did not speak the {WIRE_MAGIC} protocol "
            f"(got {frame.get('type')!r}/{frame.get('wire')!r})")
    version = frame.get("protocol")
    if version != WIRE_PROTOCOL:
        raise WireProtocolError(
            f"wire protocol version mismatch: we speak "
            f"{WIRE_PROTOCOL}, peer speaks {version!r}")


# ---------------------------------------------------------------------------
# Rows and payloads
# ---------------------------------------------------------------------------

def _rows_to_lists(rows) -> list:
    return [list(row) for row in rows]


def _rows_to_tuples(rows) -> list:
    return [tuple(row) for row in rows]


def _stats_to_dict(stats: ExchangeStats) -> dict:
    encoded = {"requests": stats.requests,
               "tuples": stats.tuples_transferred,
               "bytes": stats.bytes_estimate,
               "max_hops": stats.max_hops}
    # the routing counters are optional keys so frames from runs with
    # routing off stay byte-identical to the pre-routing vocabulary
    if stats.neighbours_pruned:
        encoded["pruned"] = stats.neighbours_pruned
    if stats.neighbours_contacted:
        encoded["contacted"] = stats.neighbours_contacted
    if stats.subtrees_pruned:
        encoded["subtrees"] = stats.subtrees_pruned
    return encoded


def _stats_from_dict(data: Mapping) -> ExchangeStats:
    return ExchangeStats(requests=data["requests"],
                         tuples_transferred=data["tuples"],
                         bytes_estimate=data["bytes"],
                         max_hops=data["max_hops"],
                         neighbours_pruned=data.get("pruned", 0),
                         neighbours_contacted=data.get("contacted", 0),
                         subtrees_pruned=data.get("subtrees", 0))


def _peer_to_dict(peer: Peer) -> dict:
    return {"schema": schema_to_spec(peer.schema),
            "local_ics": [constraint_to_dict(c) for c in peer.local_ics]}


def _peer_from_dict(name: str, data: Mapping) -> Peer:
    return Peer(name, schema_from_spec(data["schema"]),
                [constraint_from_dict(c) for c in data["local_ics"]])


def _subsystem_to_dict(payload: Mapping) -> dict:
    instances = {}
    same = {}
    for name, instance in payload["instances"].items():
        if isinstance(instance, Mapping):
            # a {"same": fingerprint} dedup marker (the requester holds
            # this instance already); kept out of "instances" so a
            # relation named "same" can never collide with it
            same[name] = instance["same"]
            continue
        instances[name] = {
            relation: _rows_to_lists(instance.tuples(relation))
            for relation in instance.relations()
            if instance.tuples(relation)}
    encoded = {
        "peers": {name: _peer_to_dict(peer)
                  for name, peer in payload["peers"].items()},
        "instances": instances,
        "decs": [{"owner": dec.owner, "other": dec.other,
                  "constraint": constraint_to_dict(dec.constraint)}
                 for dec in payload["decs"]],
        "trust": [[owner, str(level), other]
                  for owner, level, other in payload["trust"]],
        "stats": _stats_to_dict(payload["stats"]),
    }
    if same:
        encoded["same"] = same
    return encoded


def _subsystem_from_dict(data: Mapping) -> dict:
    peers = {name: _peer_from_dict(name, spec)
             for name, spec in data["peers"].items()}
    instances = {}
    for name, relations in data["instances"].items():
        if name not in peers:
            raise WireProtocolError(
                f"subsystem payload ships an instance for undescribed "
                f"peer {name!r}")
        instances[name] = DatabaseInstance(
            peers[name].schema,
            {relation: _rows_to_tuples(rows)
             for relation, rows in relations.items()})
    for name, fingerprint in data.get("same", {}).items():
        if name not in peers:
            raise WireProtocolError(
                f"subsystem payload dedups an instance for undescribed "
                f"peer {name!r}")
        instances[name] = {"same": fingerprint}
    return {
        "peers": peers,
        "instances": instances,
        "decs": [DataExchange(entry["owner"], entry["other"],
                              constraint_from_dict(entry["constraint"]))
                 for entry in data["decs"]],
        "trust": [(owner, TrustLevel(level), other)
                  for owner, level, other in data["trust"]],
        "stats": _stats_from_dict(data["stats"]),
    }


def result_to_dict(result: QueryResult) -> dict:
    """Serialise a served :class:`QueryResult` (wire-lossless, unlike
    the CLI's ``to_dict``: ``elapsed`` is not rounded)."""
    encoded = {
        "peer": result.peer,
        "query": str(result.query),
        "answers": [list(row) for row in sorted(result.answers,
                                                key=_row_key)],
        "semantics": result.semantics,
        "method_requested": result.method_requested,
        "method_used": result.method_used,
        "solution_count": result.solution_count,
        "elapsed": result.elapsed,
        "exchange": _stats_to_dict(result.exchange),
        "from_cache": result.from_cache,
        "error": (None if result.error is None else
                  {"code": result.error.code,
                   "message": result.error.message,
                   "peer": result.error.peer}),
    }
    # trace spans and phase timings only exist on traced runs; omitted
    # otherwise so untraced result frames stay byte-identical
    if result.trace:
        encoded["trace"] = [span.to_dict() for span in result.trace]
    if result.timings:
        encoded["timings"] = dict(result.timings)
    return encoded


def result_from_dict(data: Mapping) -> QueryResult:
    from ..relational.query_parser import parse_query
    error = data.get("error")
    return QueryResult(
        peer=data["peer"],
        query=parse_query(data["query"]),
        answers=frozenset(tuple(row) for row in data["answers"]),
        semantics=data["semantics"],
        method_requested=data["method_requested"],
        method_used=data["method_used"],
        solution_count=data["solution_count"],
        elapsed=data["elapsed"],
        exchange=_stats_from_dict(data["exchange"]),
        from_cache=data["from_cache"],
        error=None if error is None else QueryError(
            code=error["code"], message=error["message"],
            peer=error["peer"]),
        trace=tuple(Span.from_dict(span)
                    for span in data.get("trace", ())),
        timings=dict(data["timings"]) if data.get("timings") else None,
    )


def _row_key(row: tuple):
    from ..storage.tables import row_sort_key
    return row_sort_key(row)


def _payload_to_dict(payload: Any) -> dict:
    if payload is None:
        return {"kind": "none"}
    if isinstance(payload, QueryResult):
        return {"kind": "result", "result": result_to_dict(payload)}
    if isinstance(payload, (tuple, list, frozenset, set)):
        return {"kind": "rows", "rows": _rows_to_lists(payload)}
    if isinstance(payload, Mapping) and set(payload) <= {"insert",
                                                         "delete"}:
        # the durable store's JSONL line vocabulary, minus the chain
        # bookkeeping the Answer envelope already carries (version)
        return {"kind": "delta",
                "insert": _rows_to_lists(payload.get("insert", ())),
                "delete": _rows_to_lists(payload.get("delete", ()))}
    if isinstance(payload, Mapping) and payload.get("unchanged"):
        # a routing-enabled peer acknowledging an up-to-date subsystem
        # token: no content travels, only the gather's fresh stats
        return {"kind": "subsystem-unchanged",
                "stats": _stats_to_dict(payload["stats"])}
    if isinstance(payload, Mapping) and payload.get("irrelevant"):
        # a routing-enabled peer proving its whole subtree disjoint
        # from the query's constants: no content, only fresh stats
        return {"kind": "subsystem-irrelevant",
                "stats": _stats_to_dict(payload["stats"])}
    if isinstance(payload, Mapping) and "peers" in payload:
        return {"kind": "subsystem",
                "subsystem": _subsystem_to_dict(payload)}
    if isinstance(payload, Mapping) and set(payload) == {"status"}:
        # a GetStatus reply: the serving process's live metrics, a
        # plain JSON object produced by MetricsRegistry.snapshot()
        return {"kind": "status", "status": payload["status"]}
    raise WireProtocolError(
        f"cannot encode payload of type {type(payload).__name__}")


def _payload_from_dict(data: Mapping) -> Any:
    kind = data.get("kind")
    if kind == "none":
        return None
    if kind == "result":
        return result_from_dict(data["result"])
    if kind == "rows":
        return tuple(_rows_to_tuples(data["rows"]))
    if kind == "delta":
        return {"insert": tuple(_rows_to_tuples(data["insert"])),
                "delete": tuple(_rows_to_tuples(data["delete"]))}
    if kind == "subsystem":
        return _subsystem_from_dict(data["subsystem"])
    if kind == "subsystem-unchanged":
        return {"unchanged": True,
                "stats": _stats_from_dict(data["stats"])}
    if kind == "subsystem-irrelevant":
        return {"irrelevant": True,
                "stats": _stats_from_dict(data["stats"])}
    if kind == "status":
        return {"status": dict(data["status"])}
    raise WireProtocolError(f"unknown payload kind {kind!r}")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

def message_to_dict(message: Message) -> dict:
    base = {"sender": message.sender, "target": message.target,
            "correlation_id": message.correlation_id}
    # trace fields are omitted when empty — untraced frames stay
    # byte-identical to the pre-tracing vocabulary, exactly like the
    # routing hints below
    if message.trace_id:
        base["trace_id"] = message.trace_id
    if message.span_id:
        base["span_id"] = message.span_id
    if message.parent_span_id:
        base["parent_span_id"] = message.parent_span_id
    if isinstance(message, FetchRelation):
        return {**base, "type": "fetch", "relation": message.relation,
                "purpose": message.purpose,
                "known_version": message.known_version}
    if isinstance(message, PeerQuery):
        encoded = {**base, "type": "peer-query", "kind": message.kind,
                   "hop_budget": message.hop_budget,
                   "visited": list(message.visited)}
        # routing hints are omitted when unused, so non-routed traffic
        # stays byte-identical to the pre-routing frame vocabulary
        if message.digest_version:
            encoded["digest_version"] = message.digest_version
        if message.known_subsystem:
            encoded["known_subsystem"] = message.known_subsystem
        if message.known_instances:
            encoded["known_instances"] = dict(message.known_instances)
        if message.constants:
            encoded["constants"] = list(message.constants)
        if message.aggregate_token:
            encoded["aggregate_token"] = message.aggregate_token
        return encoded
    if isinstance(message, AnswerQuery):
        return {**base, "type": "answer-query", "query": message.query,
                "method": message.method,
                "semantics": message.semantics}
    if isinstance(message, Answer):
        encoded = {**base, "type": "answer",
                   "in_reply_to": message.in_reply_to,
                   "version": message.version, "delta": message.delta,
                   "bytes_estimate": message.bytes_estimate,
                   "payload": _payload_to_dict(message.payload)}
        if message.digests is not None:
            encoded["digests"] = message.digests.to_dict()
        if message.aggregate is not None:
            encoded["aggregate"] = message.aggregate.to_dict()
        if message.aggregate_token:
            encoded["aggregate_token"] = message.aggregate_token
        if message.spans:
            encoded["spans"] = [span.to_dict()
                                for span in message.spans]
        return encoded
    if isinstance(message, Failure):
        encoded = {**base, "type": "failure",
                   "in_reply_to": message.in_reply_to,
                   "code": message.code, "detail": message.detail}
        if message.spans:
            encoded["spans"] = [span.to_dict()
                                for span in message.spans]
        return encoded
    if isinstance(message, GetStatus):
        return {**base, "type": "get-status"}
    raise WireProtocolError(
        f"cannot encode message type {type(message).__name__}")


def message_from_dict(data: Mapping) -> Message:
    kind = data.get("type")
    try:
        base = {"sender": data["sender"], "target": data["target"],
                "correlation_id": data["correlation_id"],
                "trace_id": data.get("trace_id", ""),
                "span_id": data.get("span_id", ""),
                "parent_span_id": data.get("parent_span_id", "")}
        if kind == "fetch":
            return FetchRelation(**base, relation=data["relation"],
                                 purpose=data["purpose"],
                                 known_version=data["known_version"])
        if kind == "peer-query":
            return PeerQuery(**base, kind=data["kind"],
                             hop_budget=data["hop_budget"],
                             visited=tuple(data["visited"]),
                             digest_version=data.get("digest_version",
                                                     ""),
                             known_subsystem=data.get("known_subsystem",
                                                      ""),
                             known_instances=data.get("known_instances")
                             or None,
                             constants=tuple(data.get("constants", ())),
                             aggregate_token=data.get("aggregate_token",
                                                      ""))
        if kind == "answer-query":
            return AnswerQuery(**base, query=data["query"],
                               method=data["method"],
                               semantics=data["semantics"])
        if kind == "answer":
            raw_digests = data.get("digests")
            raw_aggregate = data.get("aggregate")
            return Answer(**base, in_reply_to=data["in_reply_to"],
                          version=data["version"], delta=data["delta"],
                          bytes_estimate=data["bytes_estimate"],
                          payload=_payload_from_dict(data["payload"]),
                          digests=(None if raw_digests is None else
                                   NeighbourDigests.from_dict(
                                       raw_digests)),
                          aggregate=(None if raw_aggregate is None else
                                     SubtreeDigest.from_dict(
                                         raw_aggregate)),
                          aggregate_token=data.get("aggregate_token",
                                                   ""),
                          spans=tuple(Span.from_dict(span)
                                      for span in data.get("spans",
                                                           ())))
        if kind == "failure":
            return Failure(**base, in_reply_to=data["in_reply_to"],
                           code=data["code"], detail=data["detail"],
                           spans=tuple(Span.from_dict(span)
                                       for span in data.get("spans",
                                                            ())))
        if kind == "get-status":
            return GetStatus(**base)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(
            f"malformed {kind!r} frame: {exc}") from exc
    raise WireProtocolError(f"unknown frame type {kind!r}")


def encode_message(message: Message) -> bytes:
    """One protocol message as one newline-terminated frame."""
    return encode_frame(message_to_dict(message))


def decode_message(line: bytes) -> Message:
    return message_from_dict(decode_frame(line))
