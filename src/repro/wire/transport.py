""":class:`SocketTransport` — the :class:`~repro.net.transport.Transport`
ABC over TCP.

The transport maps peer names to ``host:port`` addresses and delivers
each request as one wire frame (:mod:`repro.wire.codec`), returning the
decoded reply frame.  It slots under the existing
:class:`~repro.net.network.PeerNetwork` unchanged, which is the whole
point: the retry machinery, fan-out, and exchange accounting built for
the in-process transports drive real sockets without modification.

Behaviour contracts (mirroring the in-process transports):

* **multiplexed connection pooling** — a small pool of handshaken
  connections per target, *shared*: many correlated requests ride one
  connection concurrently (the protocol's correlation ids pair each
  reply frame with its request, so replies may return out of order).
  A dedicated reader thread per connection dispatches reply frames to
  their waiters; a reply that matches no in-flight request means the
  stream is desynced, and the connection is discarded — never
  repooled — before it can smear into other requests.
* **per-request deadlines** — ``connect_timeout`` bounds dialing,
  ``timeout`` bounds each round trip; expiry raises the *retryable*
  :class:`~repro.net.errors.MessageDropped` /
  :class:`~repro.net.errors.PeerDown`, so
  :class:`~repro.net.network.PeerNetwork`'s retry budget and typed
  ``peer-unreachable`` end-state just work.  A server shedding load at
  admission (``code="overloaded"`` Failure frames) surfaces as the
  retryable :class:`~repro.net.errors.ServerOverloaded`.
* **identity-checked handshake** — the server's hello advertises the
  *physical unit* serving the socket (``P#0@1`` for a shard replica);
  dialing a name and reaching a different unit is a wiring error and
  fails typed instead of silently querying the wrong process.
* **exact traffic accounting** — every decoded :class:`Answer` is
  stamped with the byte length of its encoded reply frame, replacing
  the in-process size heuristic with the true wire cost (see
  :attr:`ExchangeStats.bytes_estimate
  <repro.core.results.ExchangeStats>`).

Targets without an address fall back to a locally registered handler
(that is what :meth:`register` stores), so a server process can route
to its own node without a loopback socket; a target with neither raises
:class:`~repro.net.errors.PeerDown`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Mapping, Optional, Union

from ..net.errors import MessageDropped, PeerDown, ServerOverloaded
from ..net.protocol import Answer, Failure, Message
from ..net.transport import FaultPlan, Handler, Transport
from ..obs.metrics import MetricsRegistry
from .codec import (
    MAX_FRAME_BYTES,
    WireProtocolError,
    check_hello,
    decode_frame,
    encode_frame,
    encode_message,
    hello_frame,
    message_from_dict,
    read_frame,
)

__all__ = ["SocketTransport", "parse_address", "format_address"]

Address = tuple[str, int]


def parse_address(value: Union[str, Address]) -> Address:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``.

    IPv6 literals use the standard bracket syntax — ``[::1]:8080`` —
    and round-trip through :func:`format_address`.  A bare multi-colon
    form like ``::1:8080`` is *ambiguous* (``host="::1", port=8080``
    and ``host="::1:80", port=80`` both read plausibly; naive
    right-splitting silently picks one) and is rejected with a typed
    error instead of being misparsed.
    """
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    if value.startswith("["):
        host, sep, port = value.rpartition("]:")
        if not sep or len(host) < 2:
            raise WireProtocolError(
                f"bracketed peer address must look like '[host]:port', "
                f"got {value!r}")
        host = host[1:]  # strip the opening bracket
        if "]" in host or "[" in host:
            raise WireProtocolError(
                f"malformed bracketed peer address: {value!r}")
    else:
        host, sep, port = value.rpartition(":")
        if not sep or not host:
            raise WireProtocolError(
                f"peer address must look like 'host:port', got "
                f"{value!r}")
        if ":" in host:
            raise WireProtocolError(
                f"ambiguous IPv6 peer address {value!r}: bracket the "
                f"host, e.g. '[{host}]:{port}'")
    try:
        return host, int(port)
    except ValueError:
        raise WireProtocolError(
            f"peer address has a non-numeric port: {value!r}") from None


def format_address(address: Address) -> str:
    """Inverse of :func:`parse_address` (brackets IPv6 hosts)."""
    host, port = address
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"


class _Waiter:
    """One in-flight request's reply slot."""

    __slots__ = ("event", "reply", "frame_bytes", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[Message] = None
        self.frame_bytes = 0
        self.error: Optional[BaseException] = None


class _Connection:
    """One handshaken TCP connection, multiplexing many requests.

    Senders interleave whole frames under ``_send_lock``; a dedicated
    reader thread pairs each reply frame with its waiter by
    ``in_reply_to``.  Any stream-level trouble (EOF, socket error,
    undecodable frame, a reply that matches nothing in flight) kills
    the connection and fails every waiter — the *kind* of error decides
    retryability upstream: connection losses are retryable, protocol
    violations are not.
    """

    def __init__(self, address: Address, *, local_name: str,
                 expected: str, connect_timeout: float,
                 timeout: float) -> None:
        self.address = address
        self.sock = socket.create_connection(address,
                                             timeout=connect_timeout)
        self.sock.settimeout(timeout)
        # cheap for our small request/response frames: don't batch them
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.stream = self.sock.makefile("rb")
        #: concurrent requests currently riding this connection —
        #: guarded by the owning transport's lock, not ours
        self.in_flight = 0
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: dict[int, _Waiter] = {}
        #: correlation ids whose waiters gave up (request timeout) —
        #: their late replies are dropped instead of read as desync
        self._abandoned: set[int] = set()
        self._dead: Optional[BaseException] = None
        self._reader: Optional[threading.Thread] = None
        try:
            self.sock.sendall(encode_frame(hello_frame(local_name)))
            reply = read_frame(self.stream)
            if reply is None:
                raise WireProtocolError(
                    f"{format_address(address)} closed the connection "
                    f"during the handshake")
            check_hello(reply)
            advertised = reply.get("sender", "")
            if expected and advertised and advertised != expected:
                # two replicas of one peer are distinct processes with
                # distinct stores; answering the wrong one must be a
                # loud wiring error, not a silent wrong answer
                raise WireProtocolError(
                    f"dialed {expected!r} at {format_address(address)} "
                    f"but unit {advertised!r} answered the handshake")
        except socket.timeout:
            # the dial succeeded, the *handshake read* stalled — name
            # the right phase and the right timeout (retryable: the
            # peer may just be overloaded)
            self.close()
            raise PeerDown(
                f"{format_address(address)} accepted the connection "
                f"but did not complete the wire handshake within "
                f"{timeout}s") from None
        except BaseException:
            self.close()
            raise
        # from here on the reader owns the stream; request timeouts are
        # enforced waiter-side, so the socket itself blocks freely
        self.sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"wire-reader-{format_address(address)}", daemon=True)
        self._reader.start()

    # ------------------------------------------------------------------
    @property
    def dead(self) -> bool:
        return self._dead is not None

    def round_trip(self, message: Message,
                   timeout: float) -> tuple[Message, int]:
        """Send one request frame, wait for *its* reply frame.

        Returns ``(reply, reply_frame_bytes)`` — the frame length is
        the exact wire size the traffic accounting records.  Raises
        :class:`socket.timeout` when no reply arrives in ``timeout``
        seconds, :class:`ConnectionResetError` (retryable; the typical
        cause is a server restart under a pooled connection) when the
        stream dies, and :class:`WireProtocolError` for
        decodable-but-wrong frames.
        """
        correlation = message.correlation_id
        payload = encode_message(message)  # may raise typed, pre-send
        waiter = _Waiter()
        with self._lock:
            if self._dead is not None:
                raise ConnectionResetError(
                    f"connection to {format_address(self.address)} "
                    f"already failed: {self._dead}")
            # a retry resends the same message (same correlation id):
            # it must supersede its abandoned predecessor, not desync
            self._abandoned.discard(correlation)
            self._pending[correlation] = waiter
        try:
            with self._send_lock:
                self.sock.sendall(payload)
        except BaseException as exc:
            self._fail(exc if isinstance(exc, OSError)
                       else ConnectionResetError(str(exc)))
            raise
        if not waiter.event.wait(timeout):
            with self._lock:
                still_pending = self._pending.pop(correlation,
                                                  None) is not None
                if still_pending:
                    self._abandoned.add(correlation)
                    if len(self._abandoned) > 32:
                        # a connection drowning in ghosts is wedged;
                        # stop feeding it
                        self._kill_locked(ConnectionResetError(
                            "too many timed-out requests"))
            if still_pending:
                raise socket.timeout(
                    f"no reply within {timeout}s")
            # the reply raced the timeout: the dispatcher popped our
            # pending entry and is about to resolve the waiter — wait
            # out the last few instructions of that race
            waiter.event.wait(5.0)
        if waiter.error is not None:
            raise waiter.error
        assert waiter.reply is not None
        return waiter.reply, waiter.frame_bytes

    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                line = self.stream.readline(MAX_FRAME_BYTES + 1)
                if len(line) > MAX_FRAME_BYTES:
                    raise WireProtocolError(
                        f"reply from {format_address(self.address)} "
                        f"exceeds the {MAX_FRAME_BYTES}-byte frame cap")
                if not line or not line.endswith(b"\n"):
                    raise ConnectionResetError(
                        f"{format_address(self.address)} closed the "
                        f"connection"
                        + (" mid-reply" if line else ""))
                reply = message_from_dict(decode_frame(line))
                self._dispatch(reply, len(line))
        except BaseException as exc:
            self._fail(exc)

    def _dispatch(self, reply: Message, frame_bytes: int) -> None:
        in_reply_to = getattr(reply, "in_reply_to", None)
        with self._lock:
            waiter = (self._pending.pop(in_reply_to, None)
                      if in_reply_to is not None else None)
            if waiter is None:
                if in_reply_to in self._abandoned:
                    # the late reply to a timed-out request: the stream
                    # is still in step, just slow — drop the frame
                    self._abandoned.discard(in_reply_to)
                    return
                raise WireProtocolError(
                    f"reply correlation mismatch from "
                    f"{format_address(self.address)}: got a reply to "
                    f"{in_reply_to!r}, which is not in flight — "
                    f"stream desynced")
        waiter.reply = reply
        waiter.frame_bytes = frame_bytes
        waiter.event.set()

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            self._kill_locked(exc)

    def _kill_locked(self, exc: BaseException) -> None:
        if self._dead is None:
            self._dead = exc
        pending, self._pending = self._pending, {}
        for waiter in pending.values():
            waiter.error = exc
            waiter.event.set()
        # a reader parked in readline() holds the buffered stream's
        # internal lock, so only the reader thread itself (or the
        # handshake code, before the reader exists) may close the
        # stream — anyone else would deadlock on that lock.  Shutting
        # the socket down unblocks the parked read, and the reader then
        # runs this same path to completion on its way out.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if (self._reader is None
                or self._reader is threading.current_thread()):
            try:
                self.stream.close()
            except (OSError, ValueError, AttributeError):
                pass
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail(ConnectionResetError("connection closed locally"))


class SocketTransport(Transport):
    """Typed protocol messages over pooled, multiplexed TCP connections.

    ``pool_size`` caps the connections dialed per target; within the
    pool, requests pick the least-loaded live connection and new
    connections are dialed only while every existing one is busy — a
    sequential caller reuses one connection forever, a concurrent
    burst fans across the pool and then *pipelines* (``max_in_flight``
    correlated requests per connection before the next dial is
    preferred over further sharing).
    """

    def __init__(self,
                 addresses: Optional[Mapping[str, Union[str,
                                                        Address]]] = None,
                 *, local_name: str = "client",
                 timeout: float = 10.0,
                 connect_timeout: float = 2.0,
                 pool_size: int = 4,
                 max_in_flight: int = 32,
                 faults: Optional[FaultPlan] = None) -> None:
        super().__init__(faults)
        if timeout <= 0 or connect_timeout <= 0:
            raise WireProtocolError(
                "socket timeouts must be > 0 seconds")
        if pool_size < 1 or max_in_flight < 1:
            raise WireProtocolError(
                "pool_size and max_in_flight must be >= 1")
        self.local_name = local_name
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.pool_size = pool_size
        self.max_in_flight = max_in_flight
        self._addresses: dict[str, Address] = {
            name: parse_address(value)
            for name, value in (addresses or {}).items()}
        self._handlers: dict[str, Handler] = {}
        self._pools: dict[str, list[_Connection]] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: dial/request counters and round-trip latencies, scraped by
        #: ``GetStatus`` (see :meth:`metrics_snapshot`)
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Handler) -> None:
        """Attach a local node's handler (used when ``name`` has no
        socket address — the server process's own peer)."""
        self._handlers[name] = handler

    def set_address(self, name: str, address: Union[str, Address]) -> None:
        self._addresses[name] = parse_address(address)

    def resolve(self, target: str) -> Optional[Address]:
        """The socket address serving ``target``, or None (handler /
        unknown).  The seam a shard router rides on: physical unit
        names resolve here while logical peer names stay unknown."""
        return self._addresses.get(target)

    def addresses(self) -> dict[str, str]:
        return {name: format_address(address)
                for name, address in sorted(self._addresses.items())}

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(self, message: Message) -> Message:
        target = message.target
        if self.faults.is_down(target):
            raise PeerDown(f"peer {target!r} is down")
        address = self.resolve(target)
        if address is None:
            handler = self._handlers.get(target)
            if handler is None:
                raise PeerDown(
                    f"no address or local node for peer {target!r}")
            return handler(message)
        if self.faults.dropped():
            raise MessageDropped(
                f"message {message.correlation_id} to {target!r} was "
                f"dropped")
        connection = self._checkout(target, address)
        self.metrics.inc("transport.requests")
        started = time.monotonic()
        try:
            reply, frame_bytes = connection.round_trip(message,
                                                       self.timeout)
        except socket.timeout:
            self.metrics.inc("transport.timeouts")
            raise MessageDropped(
                f"no reply from {target!r} at "
                f"{format_address(address)} within {self.timeout}s"
            ) from None
        except WireProtocolError:
            # stream-level protocol errors already killed the
            # connection (reader side); local encode errors never
            # touched it — either way it is not repooled if dead
            raise
        except OSError as exc:
            # a pooled connection going stale (server restarted under
            # it) means its pool siblings are stale too: flush them
            # all so one retry gets a fresh dial instead of burning
            # the budget on dead sockets
            self._discard_pool(target)
            self.metrics.inc("transport.connection_failures")
            raise MessageDropped(
                f"connection to {target!r} at "
                f"{format_address(address)} failed mid-request: {exc}"
            ) from exc
        finally:
            self._release(target, connection)
        self.metrics.observe("transport.round_trip_s",
                             time.monotonic() - started)
        if isinstance(reply, Failure) and reply.code == "overloaded":
            # admission-control shed: typed and *retryable*, with the
            # retry machinery (not the transport) pacing the backoff
            raise ServerOverloaded(
                f"peer {target!r} shed the request under load: "
                f"{reply.detail}")
        if isinstance(reply, Answer):
            # exact traffic accounting: the reply's true encoded size
            # replaces the in-process estimate (bypasses the frozen
            # dataclass exactly like Answer.__post_init__ does)
            object.__setattr__(reply, "bytes_estimate", frame_bytes)
        return reply

    # ------------------------------------------------------------------
    # The connection pool
    # ------------------------------------------------------------------
    def _checkout(self, target: str, address: Address) -> _Connection:
        """A live connection to ``target`` with a reserved request slot.

        Prefers an idle pooled connection; while every pooled
        connection is busy, dials new ones up to ``pool_size`` and only
        then pipelines onto the least-loaded.
        """
        with self._lock:
            pool = self._pools.get(target)
            if pool is not None:
                pool[:] = [c for c in pool if not c.dead]
                if pool:
                    best = min(pool, key=lambda c: c.in_flight)
                    if (best.in_flight == 0
                            or len(pool) >= self.pool_size):
                        best.in_flight += 1
                        return best
        connection = self._dial(target, address)
        surplus: Optional[_Connection] = None
        with self._lock:
            if self._closed:
                connection.close()
                raise PeerDown(
                    f"transport closed while dialing {target!r}")
            pool = self._pools.setdefault(target, [])
            pool[:] = [c for c in pool if not c.dead]
            if len(pool) >= self.pool_size:
                # a concurrent burst already filled the pool while we
                # dialed: pipeline onto the least-loaded connection
                # instead of growing past the cap
                surplus, connection = connection, min(
                    pool, key=lambda c: c.in_flight)
            else:
                pool.append(connection)
            connection.in_flight += 1
        if surplus is not None:
            surplus.close()
        return connection

    def _dial(self, target: str, address: Address) -> _Connection:
        try:
            connection = _Connection(
                address, local_name=self.local_name, expected=target,
                connect_timeout=self.connect_timeout,
                timeout=self.timeout)
            self.metrics.inc("transport.dials")
            return connection
        except socket.timeout:
            raise PeerDown(
                f"peer {target!r} at {format_address(address)} did not "
                f"accept within {self.connect_timeout}s") from None
        except ConnectionError as exc:
            raise PeerDown(
                f"peer {target!r} at {format_address(address)} refused "
                f"the connection: {exc}") from exc
        except OSError as exc:
            raise PeerDown(
                f"cannot reach peer {target!r} at "
                f"{format_address(address)}: {exc}") from exc

    def _release(self, target: str, connection: _Connection) -> None:
        with self._lock:
            connection.in_flight -= 1
            if connection.dead:
                pool = self._pools.get(target)
                if pool is not None and connection in pool:
                    pool.remove(connection)

    def _discard_pool(self, target: str) -> None:
        with self._lock:
            stale = self._pools.pop(target, [])
        for connection in stale:
            connection.close()

    def metrics_snapshot(self) -> dict:
        """The registry snapshot with live pool gauges refreshed
        (total pooled connections and requests in flight)."""
        with self._lock:
            live = [connection
                    for pool in self._pools.values()
                    for connection in pool if not connection.dead]
            pooled = len(live)
            in_flight = sum(c.in_flight for c in live)
        self.metrics.gauge("transport.pooled_connections", pooled)
        self.metrics.gauge("transport.requests_in_flight", in_flight)
        return self.metrics.snapshot()

    def pooled_connections(self, target: str) -> int:
        """How many live connections the pool holds for ``target``
        (idle or carrying in-flight requests)."""
        with self._lock:
            return sum(not connection.dead
                       for connection in self._pools.get(target, ()))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            for connection in pool:
                connection.close()

    def __repr__(self) -> str:
        return (f"SocketTransport({self.addresses()}, "
                f"local_name={self.local_name!r})")
