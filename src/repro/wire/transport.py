""":class:`SocketTransport` — the :class:`~repro.net.transport.Transport`
ABC over TCP.

The transport maps peer names to ``host:port`` addresses and delivers
each request as one wire frame (:mod:`repro.wire.codec`), returning the
decoded reply frame.  It slots under the existing
:class:`~repro.net.network.PeerNetwork` unchanged, which is the whole
point: the retry machinery, fan-out, and exchange accounting built for
the in-process transports drive real sockets without modification.

Behaviour contracts (mirroring the in-process transports):

* **connection pooling** — one small pool of handshaken connections per
  target; a request borrows a connection, makes its round trip, and
  returns it for reuse.  Any error discards the connection (a timed-out
  request's late reply must never desync a reused stream).
* **per-request deadlines** — ``connect_timeout`` bounds dialing,
  ``timeout`` bounds each round trip; expiry raises the *retryable*
  :class:`~repro.net.errors.MessageDropped` /
  :class:`~repro.net.errors.PeerDown`, so
  :class:`~repro.net.network.PeerNetwork`'s retry budget and typed
  ``peer-unreachable`` end-state just work.
* **exact traffic accounting** — every decoded :class:`Answer` is
  stamped with the byte length of its encoded reply frame, replacing
  the in-process size heuristic with the true wire cost (see
  :attr:`ExchangeStats.bytes_estimate
  <repro.core.results.ExchangeStats>`).

Targets without an address fall back to a locally registered handler
(that is what :meth:`register` stores), so a server process can route
to its own node without a loopback socket; a target with neither raises
:class:`~repro.net.errors.PeerDown`.
"""

from __future__ import annotations

import socket
import threading
from typing import Mapping, Optional, Union

from ..net.errors import MessageDropped, PeerDown
from ..net.protocol import Answer, Message
from ..net.transport import FaultPlan, Handler, Transport
from .codec import (
    MAX_FRAME_BYTES,
    WireProtocolError,
    check_hello,
    decode_frame,
    encode_frame,
    encode_message,
    hello_frame,
    message_from_dict,
    read_frame,
)

__all__ = ["SocketTransport", "parse_address", "format_address"]

Address = tuple[str, int]


def parse_address(value: Union[str, Address]) -> Address:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise WireProtocolError(
            f"peer address must look like 'host:port', got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise WireProtocolError(
            f"peer address has a non-numeric port: {value!r}") from None


def format_address(address: Address) -> str:
    return f"{address[0]}:{address[1]}"


class _Connection:
    """One handshaken TCP connection to a peer server."""

    def __init__(self, address: Address, *, local_name: str,
                 connect_timeout: float, timeout: float) -> None:
        self.address = address
        self.sock = socket.create_connection(address,
                                             timeout=connect_timeout)
        self.sock.settimeout(timeout)
        # cheap for our small request/response frames: don't batch them
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.stream = self.sock.makefile("rb")
        try:
            self.sock.sendall(encode_frame(hello_frame(local_name)))
            reply = read_frame(self.stream)
            if reply is None:
                raise WireProtocolError(
                    f"{format_address(address)} closed the connection "
                    f"during the handshake")
            check_hello(reply)
        except socket.timeout:
            # the dial succeeded, the *handshake read* stalled — name
            # the right phase and the right timeout (retryable: the
            # peer may just be overloaded)
            self.close()
            raise PeerDown(
                f"{format_address(address)} accepted the connection "
                f"but did not complete the wire handshake within "
                f"{timeout}s") from None
        except BaseException:
            self.close()
            raise

    def round_trip(self, message: Message) -> tuple[Message, int]:
        """Send one request frame, read one reply frame.

        Returns ``(reply, reply_frame_bytes)`` — the frame length is the
        exact wire size the traffic accounting records.  EOF instead of
        a reply raises :class:`ConnectionResetError` (a *retryable*
        condition: the typical cause is a server that died or restarted
        under a pooled connection, and the retry's fresh dial will find
        out which); only decodable-but-wrong frames are protocol errors.
        """
        self.sock.sendall(encode_message(message))
        # capped read: the frame-size protection must hold on *both*
        # sides of the wire, or a corrupt peer could balloon a
        # requester's memory with one endless unterminated line
        line = self.stream.readline(MAX_FRAME_BYTES + 1)
        if len(line) > MAX_FRAME_BYTES:
            raise WireProtocolError(
                f"reply from {format_address(self.address)} exceeds "
                f"the {MAX_FRAME_BYTES}-byte frame cap")
        if not line or not line.endswith(b"\n"):
            raise ConnectionResetError(
                f"{format_address(self.address)} closed the connection "
                f"mid-reply")
        return message_from_dict(decode_frame(line)), len(line)

    def close(self) -> None:
        try:
            self.stream.close()
        except (OSError, AttributeError):
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketTransport(Transport):
    """Typed protocol messages over pooled TCP connections."""

    def __init__(self,
                 addresses: Optional[Mapping[str, Union[str,
                                                        Address]]] = None,
                 *, local_name: str = "client",
                 timeout: float = 10.0,
                 connect_timeout: float = 2.0,
                 pool_size: int = 4,
                 faults: Optional[FaultPlan] = None) -> None:
        super().__init__(faults)
        if timeout <= 0 or connect_timeout <= 0:
            raise WireProtocolError(
                "socket timeouts must be > 0 seconds")
        self.local_name = local_name
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.pool_size = pool_size
        self._addresses: dict[str, Address] = {
            name: parse_address(value)
            for name, value in (addresses or {}).items()}
        self._handlers: dict[str, Handler] = {}
        self._pools: dict[str, list[_Connection]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Handler) -> None:
        """Attach a local node's handler (used when ``name`` has no
        socket address — the server process's own peer)."""
        self._handlers[name] = handler

    def set_address(self, name: str, address: Union[str, Address]) -> None:
        self._addresses[name] = parse_address(address)

    def resolve(self, target: str) -> Optional[Address]:
        """The socket address serving ``target``, or None (handler /
        unknown).  The seam a shard router rides on: physical unit
        names resolve here while logical peer names stay unknown."""
        return self._addresses.get(target)

    def addresses(self) -> dict[str, str]:
        return {name: format_address(address)
                for name, address in sorted(self._addresses.items())}

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(self, message: Message) -> Message:
        target = message.target
        if self.faults.is_down(target):
            raise PeerDown(f"peer {target!r} is down")
        address = self.resolve(target)
        if address is None:
            handler = self._handlers.get(target)
            if handler is None:
                raise PeerDown(
                    f"no address or local node for peer {target!r}")
            return handler(message)
        if self.faults.dropped():
            raise MessageDropped(
                f"message {message.correlation_id} to {target!r} was "
                f"dropped")
        connection, reused = self._borrow(target, address)
        try:
            reply, frame_bytes = connection.round_trip(message)
        except socket.timeout:
            connection.close()
            raise MessageDropped(
                f"no reply from {target!r} at "
                f"{format_address(address)} within {self.timeout}s"
            ) from None
        except WireProtocolError:
            connection.close()
            raise
        except OSError as exc:
            connection.close()
            if reused:
                # a pooled connection going stale (server restarted
                # under it) means its pool siblings are stale too:
                # flush them all so one retry gets a fresh dial
                # instead of burning the budget on dead sockets
                self._discard_pool(target)
            raise MessageDropped(
                f"connection to {target!r} at "
                f"{format_address(address)} failed mid-request: {exc}"
            ) from exc
        except BaseException:
            connection.close()
            raise
        in_reply_to = getattr(reply, "in_reply_to", None)
        if in_reply_to != message.correlation_id:
            # the stream is one frame out of step: discard it *before*
            # anyone can reuse it, or the desync smears into replies
            # for unrelated requests
            connection.close()
            raise WireProtocolError(
                f"reply correlation mismatch from {target!r}: asked "
                f"{message.correlation_id}, got {in_reply_to}")
        self._give_back(target, connection)
        if isinstance(reply, Answer):
            # exact traffic accounting: the reply's true encoded size
            # replaces the in-process estimate (bypasses the frozen
            # dataclass exactly like Answer.__post_init__ does)
            object.__setattr__(reply, "bytes_estimate", frame_bytes)
        return reply

    # ------------------------------------------------------------------
    # The connection pool
    # ------------------------------------------------------------------
    def _borrow(self, target: str,
                address: Address) -> tuple[_Connection, bool]:
        """A connection to ``target``: ``(connection, was_pooled)``."""
        with self._lock:
            pool = self._pools.get(target)
            if pool:
                return pool.pop(), True
        try:
            return _Connection(address, local_name=self.local_name,
                               connect_timeout=self.connect_timeout,
                               timeout=self.timeout), False
        except socket.timeout:
            raise PeerDown(
                f"peer {target!r} at {format_address(address)} did not "
                f"accept within {self.connect_timeout}s") from None
        except ConnectionError as exc:
            raise PeerDown(
                f"peer {target!r} at {format_address(address)} refused "
                f"the connection: {exc}") from exc
        except OSError as exc:
            raise PeerDown(
                f"cannot reach peer {target!r} at "
                f"{format_address(address)}: {exc}") from exc

    def _give_back(self, target: str, connection: _Connection) -> None:
        with self._lock:
            if not self._closed:
                pool = self._pools.setdefault(target, [])
                if len(pool) < self.pool_size:
                    pool.append(connection)
                    return
        connection.close()

    def _discard_pool(self, target: str) -> None:
        with self._lock:
            stale = self._pools.pop(target, [])
        for connection in stale:
            connection.close()

    def pooled_connections(self, target: str) -> int:
        """How many idle connections the pool holds for ``target``."""
        with self._lock:
            return len(self._pools.get(target, ()))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            for connection in pool:
                connection.close()

    def __repr__(self) -> str:
        return (f"SocketTransport({self.addresses()}, "
                f"local_name={self.local_name!r})")
