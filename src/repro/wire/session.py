"""The client side of the wire runtime: :class:`RemoteNetworkSession`.

Mirrors the answering surface of
:class:`~repro.net.service.NetworkSession` — ``answer`` /
``answer_many`` returning full
:class:`~repro.core.results.QueryResult` objects — but against *live
peer server processes*: each query travels as one
:class:`~repro.net.protocol.AnswerQuery` frame to the queried peer's
server, which gathers its accessible sub-network over its own socket
transport, answers locally, and ships the whole result back.

The session is constructed from peer **addresses**, not from a shared
system object — the client needs to know where the peers listen,
nothing about their data — which is exactly the deployment shape of the
paper's autonomous sites (and the seam the ROADMAP's sharding item can
interpose a router into).

Fault behaviour matches the in-process session: transport losses are
retried up to ``retries`` extra attempts and then surface as a typed
``peer-unreachable`` :class:`~repro.core.results.QueryError` on the
result; a typed :class:`~repro.net.protocol.Failure` reply keeps its
failure code; an optional ``timeout`` bounds each query end to end,
expiring as ``deadline-exceeded``.  ``answer``/``answer_many`` never
raise on network trouble and never hang.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Mapping, Optional, Union

from ..core.results import (
    CERTAIN,
    QueryError,
    QueryRequest,
    QueryResult,
)
from ..net.errors import NetworkError, ServerOverloaded, TransportError
from ..net.protocol import Answer, AnswerQuery, Failure
from ..core.messaging import ExchangeLog
from ..obs.trace import Span, TraceContext, new_id
from ..relational.query import Query
from .transport import SocketTransport

__all__ = ["RemoteNetworkSession"]


class RemoteNetworkSession:
    """Query answering against live peer server processes."""

    def __init__(self, addresses: Optional[Mapping[str, str]] = None, *,
                 transport=None,
                 default_method: str = "auto",
                 retries: int = 2,
                 timeout: Optional[float] = None,
                 request_timeout: float = 30.0,
                 connect_timeout: float = 2.0,
                 tracing: bool = False,
                 supervisor=None) -> None:
        if retries < 0:
            raise NetworkError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise NetworkError("timeout must be > 0 seconds")
        if transport is not None:
            if addresses is not None:
                raise NetworkError(
                    "pass either addresses or a prebuilt transport, "
                    "not both")
            # a prebuilt client transport — e.g. a ShardRouter whose
            # addresses() already speak logical peer names; the session
            # owns it from here (close() closes it)
            self.transport = transport
        elif addresses is not None:
            self.transport = SocketTransport(
                dict(addresses), local_name="client",
                timeout=request_timeout, connect_timeout=connect_timeout)
        else:
            raise NetworkError(
                "RemoteNetworkSession needs peer addresses or a "
                "transport")
        self.default_method = default_method
        self.retries = retries
        self.timeout = timeout
        #: stamp every AnswerQuery with a fresh trace context; the
        #: servers record spans for any traced request regardless of
        #: their own flag, so this client-side knob is sufficient
        self.tracing = tracing
        self.exchange_log = ExchangeLog()
        #: the owning supervisor, when this session launched the
        #: cluster (open_session(..., network="wire")); closed with it
        self.supervisor = supervisor

    # ------------------------------------------------------------------
    def peers(self) -> tuple[str, ...]:
        """The peers this session can reach, sorted."""
        return tuple(sorted(self.transport.addresses()))

    def answer(self, peer: str, query: Union[Query, str], *,
               method: Optional[str] = None,
               semantics: str = CERTAIN) -> QueryResult:
        """Answer one query at ``peer``'s server process.

        The result is the server's — same answers, solution count, and
        resolved method as a local session over the same data — with
        ``elapsed`` replaced by the client-observed wall clock (it now
        honestly includes serialization and socket time) and the
        server-side exchange stats kept (exact wire bytes of the
        gather).  Failures come back typed on the result, never raised.
        """
        if peer not in self.transport.addresses():
            raise NetworkError(
                f"unknown peer {peer!r}; this session reaches "
                f"{list(self.peers())}")
        request = QueryRequest(peer, query, method, semantics)
        trace_fields: dict = {}
        if self.tracing:
            ctx = TraceContext.root()
            trace_fields = {"trace_id": ctx.trace_id,
                            "span_id": new_id()}
        message = AnswerQuery(
            sender=self.transport.local_name, target=peer,
            query=str(request.resolved_query()),
            method=method or "", semantics=semantics, **trace_fields)
        started_mono = time.monotonic()
        start = time.perf_counter()
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        reply = None
        failure: Optional[QueryError] = None
        for attempt in range(self.retries + 1):
            if deadline is not None and time.monotonic() > deadline:
                failure = QueryError(
                    code="deadline-exceeded",
                    message=(f"query exceeded its {self.timeout}s "
                             f"end-to-end budget"),
                    peer=peer)
                break
            try:
                reply = self.transport.request(message)
                break
            except TransportError as exc:
                if attempt == self.retries:
                    failure = QueryError(
                        code="peer-unreachable",
                        message=(f"peer {peer!r} unreachable after "
                                 f"{self.retries + 1} attempt(s): "
                                 f"{exc}"),
                        peer=peer)
                elif isinstance(exc, ServerOverloaded):
                    # the server shed the request at admission; back
                    # off a beat so the retry lands after the queue
                    # drains instead of deepening the overload
                    time.sleep(min(0.05 * (attempt + 1), 0.5))
            except NetworkError as exc:  # protocol-level: not retryable
                failure = QueryError(code="protocol", message=str(exc),
                                     peer=peer)
                break
        elapsed = time.perf_counter() - start
        if reply is None:
            assert failure is not None
            return self._error_result(request, failure, elapsed)
        if isinstance(reply, Failure):
            return self._error_result(
                request,
                QueryError(code=reply.code, message=reply.detail,
                           peer=reply.sender or peer),
                elapsed)
        if not isinstance(reply, Answer) or \
                not isinstance(reply.payload, QueryResult):
            return self._error_result(
                request,
                QueryError(
                    code="protocol",
                    message=(f"peer {peer!r} sent a "
                             f"{type(reply).__name__} where a result "
                             f"was expected"),
                    peer=peer),
                elapsed)
        result: QueryResult = reply.payload
        self.exchange_log.record(
            self.transport.local_name, peer,
            f"@answer[{result.query}]", len(result.answers),
            "wire query", bytes_estimate=reply.bytes_estimate, hop=1)
        result = dataclasses.replace(result, elapsed=elapsed)
        if trace_fields:
            # the full tree: the server's node-level trace (in the
            # result), the server-process spans piggybacked on the
            # reply frame (queue wait, serve), and this client's
            # round trip as the root
            root = Span(trace_fields["trace_id"],
                        trace_fields["span_id"], "",
                        f"answer-query->{peer}",
                        self.transport.local_name, started_mono,
                        elapsed)
            result = dataclasses.replace(
                result, trace=(tuple(result.trace)
                               + tuple(getattr(reply, "spans", ()))
                               + (root,)))
        return result

    def answer_many(self, requests: Iterable[Union[QueryRequest, tuple]]
                    ) -> list[QueryResult]:
        """Batch execution, one result per request, in order; failures
        degrade per-result instead of aborting the batch."""
        results = []
        for request in requests:
            if not isinstance(request, QueryRequest):
                request = QueryRequest(*request)
            results.append(self.answer(request.peer, request.query,
                                       method=request.method,
                                       semantics=request.semantics))
        return results

    def _error_result(self, request: QueryRequest, error: QueryError,
                      elapsed: float) -> QueryResult:
        return QueryResult(
            peer=request.peer,
            query=request.resolved_query(),
            answers=frozenset(),
            semantics=request.semantics,
            method_requested=request.method or self.default_method,
            method_used=request.method or self.default_method,
            solution_count=None,
            elapsed=elapsed,
            error=error,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop pooled connections; stop the owned cluster, if any."""
        self.transport.close()
        if self.supervisor is not None:
            self.supervisor.stop()

    def __enter__(self) -> "RemoteNetworkSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RemoteNetworkSession({self.transport.addresses()}, "
                f"default_method={self.default_method!r})")
