"""The peer server: one OS process serving one peer over TCP.

A :class:`PeerServer` hosts exactly one
:class:`~repro.net.node.PeerNode` — the peer's schema, its instance
slice, the DECs it owns, its trust edges, optionally durable under a
``data_dir`` — behind a listening socket speaking the
:mod:`repro.wire.codec` frame protocol.  Outbound requests (the
hop-by-hop gathers the node makes while answering) go through a
:class:`~repro.wire.transport.SocketTransport` dialled at the
*other* peers' addresses, so a set of these processes forms exactly the
paper's network of autonomous sites: every byte between peers crosses a
real socket.

The server is deliberately also usable in-process (``start()`` runs the
accept loop on a daemon thread): the socket-transport unit tests and
the WC1 benchmark exercise real TCP framing without paying process
startup; ``python -m repro serve`` wraps :func:`run_server` for the
real cross-process deployment, and :mod:`repro.wire.cluster` spawns
one such process per peer.

Concurrency model: one thread per accepted connection; the node's own
locks serialise answering, exactly as for the in-process transports.
A connection serves frames in order (request, reply, request, ...);
malformed frames are answered with a typed
:class:`~repro.net.protocol.Failure` and the connection is closed, so
a desynced stream can never smear into later replies.
"""

from __future__ import annotations

import errno
import socket
import threading
import time
from pathlib import Path
from typing import Mapping, Optional, Union

from ..core.system import PeerSystem
from ..net.errors import NetworkError
from ..net.network import PeerNetwork
from ..net.node import PeerNode
from ..net.protocol import Failure, Message
from .codec import (
    WireProtocolError,
    check_hello,
    encode_frame,
    hello_frame,
    message_from_dict,
    message_to_dict,
    read_frame,
)
from .transport import Address, SocketTransport, format_address

__all__ = ["PeerServer", "build_peer_node"]


def build_peer_node(system: PeerSystem, peer: str, *,
                    default_method: str = "auto",
                    include_local_ics: bool = True,
                    evaluator: str = "planner",
                    data_dir: Optional[Union[str, Path]] = None,
                    snapshot_every: int = 64,
                    shard_map=None, shard_index: int = 0) -> PeerNode:
    """One peer's node, seeded with only its local slice of ``system``.

    The system definition is authoritative: after construction the
    node's store is moved to the definition's instance (mirroring the
    CLI's ``network --data-dir`` contract), so a durable node that
    resumed *older* disk state logs the difference as a delta — which is
    precisely what lets neighbours re-sync by delta instead of
    re-fetching full relations after a restart — and every node of the
    cluster stamps the same content-derived system version.

    With a ``shard_map`` the node holds only shard ``shard_index`` of
    its peer (see :func:`repro.shard.node.build_shard_node`, which this
    delegates to).
    """
    if shard_map is not None:
        # lazy: repro.shard imports from repro.net only, but keeping
        # the import out of module scope keeps wire↔shard cycle-free
        from ..shard.node import build_shard_node
        return build_shard_node(
            system, peer, shard_map=shard_map, shard_index=shard_index,
            default_method=default_method,
            include_local_ics=include_local_ics, evaluator=evaluator,
            data_dir=data_dir, snapshot_every=snapshot_every)
    if peer not in system.peers:
        raise NetworkError(
            f"system has no peer {peer!r}; it has "
            f"{sorted(system.peers)}")
    own_edges = [(owner, level, other)
                 for owner, level, other in system.trust.edges()
                 if owner == peer]
    node = PeerNode(
        system.peers[peer], system.instances[peer],
        decs=system.decs_of(peer),
        trust_edges=own_edges,
        default_method=default_method,
        include_local_ics=include_local_ics,
        evaluator=evaluator,
        data_dir=data_dir,
        snapshot_every=snapshot_every)
    node.update_instance(system.instances[peer], system.version())
    return node


class PeerServer:
    """Serve one peer's node over a listening TCP socket."""

    def __init__(self, system: PeerSystem, peer: str, *,
                 host: str = "127.0.0.1", port: int = 0,
                 addresses: Optional[Mapping[str, Union[str,
                                                        Address]]] = None,
                 data_dir: Optional[Union[str, Path]] = None,
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 timeout: Optional[float] = None,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 snapshot_every: int = 64,
                 request_timeout: float = 10.0,
                 connect_timeout: float = 2.0,
                 shard_map=None, shard_index: int = 0,
                 replica_index: int = 0,
                 bind_retries: int = 3) -> None:
        self.peer = peer
        if shard_map is not None and shard_map.covers(peer):
            from ..shard.shardmap import replica_name
            #: this process's physical name — what the supervisor
            #: addresses, kills, and restarts
            self.unit = replica_name(peer, shard_index, replica_index)
        else:
            self.unit = peer
        self.node = build_peer_node(
            system, peer,
            default_method=default_method,
            include_local_ics=include_local_ics,
            evaluator=evaluator,
            # the cluster-level directory, scoped per *unit* (two
            # replicas of one peer must never share a store) exactly
            # like PeerNetwork.from_system(data_dir=...) scopes nodes
            data_dir=(Path(data_dir) / self.unit
                      if data_dir is not None else None),
            snapshot_every=snapshot_every,
            shard_map=shard_map, shard_index=shard_index)
        remote = {name: value
                  for name, value in (addresses or {}).items()
                  if name != self.unit}
        inner = SocketTransport(
            remote, local_name=self.unit, timeout=request_timeout,
            connect_timeout=connect_timeout)
        if shard_map is not None:
            # outbound requests must see the same logical surface a
            # client does: fetches fan across shards, queries pick a
            # replica, sibling-shard self-merge included — the local
            # slice rides the inner transport's handler fallback (our
            # own unit has no address entry)
            from ..shard.router import ShardRouter
            from ..shard.shardmap import replica_layout
            layout = replica_layout(shard_map, dict.fromkeys(
                [*((addresses or {}).keys()), self.unit]))
            self.transport = ShardRouter(
                shard_map, layout, inner, local_name=self.unit)
        else:
            self.transport = inner
        # a single-node network: the node cannot see the global
        # diameter, so the hop budget must cover the *whole* system
        self.network = PeerNetwork(
            [self.node], self.transport,
            hop_budget=(hop_budget if hop_budget is not None
                        else len(system.peers)),
            retries=retries, timeout=timeout)
        self._listener = self._bind(host, port, max(1, bind_retries))
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set[socket.socket] = set()
        self._lock = threading.Lock()

    @staticmethod
    def _bind(host: str, port: int, attempts: int) -> socket.socket:
        """Bind the listener, retrying a bounded number of times on
        ``EADDRINUSE``.

        Ports come from :func:`~repro.wire.cluster.free_port`'s
        bind-and-release probe, so there is an unavoidable window in
        which the OS hands the 'free' port to someone else's transient
        socket (TIME_WAIT from a just-killed server being the classic
        case on a restart).  A few short-backoff retries absorb that
        race; a genuinely occupied port still fails typed after the
        last attempt.
        """
        last: Optional[OSError] = None
        for attempt in range(attempts):
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, port))
                listener.listen(64)
                # a short accept timeout lets the loop notice shutdown
                # promptly — closing a socket does not reliably wake a
                # thread already blocked in accept()
                listener.settimeout(0.2)
                return listener
            except OSError as exc:
                listener.close()
                if exc.errno != errno.EADDRINUSE or port == 0:
                    raise
                last = exc
                if attempt + 1 < attempts:
                    time.sleep(0.1 * (attempt + 1))
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return format_address((self.host, self.port))

    def start(self) -> "PeerServer":
        """Run the accept loop on a daemon thread (in-process use)."""
        if self._accept_thread is not None:
            raise NetworkError(f"server for {self.peer!r} already "
                               f"started")
        self._accept_thread = threading.Thread(
            target=self.serve_forever,
            name=f"peer-server-{self.unit}", daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (blocking)."""
        while not self._shutdown.is_set():
            try:
                connection, _addr = self._listener.accept()
            except socket.timeout:
                continue  # poll the shutdown flag
            except OSError:
                break  # listener closed by shutdown (or dead): stop
            connection.settimeout(None)  # serve blocking, per thread
            with self._lock:
                if self._shutdown.is_set():
                    connection.close()
                    break
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,),
                name=f"peer-conn-{self.unit}", daemon=True)
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        stream = connection.makefile("rb")
        try:
            connection.setsockopt(socket.IPPROTO_TCP,
                                  socket.TCP_NODELAY, 1)
            frame = read_frame(stream)
            if frame is None:
                return
            # reply with our hello before judging theirs, so a client
            # from another protocol release sees *our* version in its
            # own handshake check rather than a silent hangup
            connection.sendall(encode_frame(hello_frame(self.peer)))
            check_hello(frame)
            while not self._shutdown.is_set():
                frame = read_frame(stream)
                if frame is None:
                    return  # clean EOF between frames
                if not self._serve_frame(connection, frame):
                    return
        except WireProtocolError as exc:
            self._try_send_failure(connection, 0, "protocol", str(exc))
        except OSError:
            pass  # client went away mid-frame; nothing to tell it
        finally:
            try:
                stream.close()
                connection.close()
            except OSError:
                pass
            with self._lock:
                self._connections.discard(connection)

    def _serve_frame(self, connection: socket.socket,
                     frame: dict) -> bool:
        """Serve one decoded frame; False closes the connection."""
        correlation = frame.get("correlation_id", 0)
        try:
            message = message_from_dict(frame)
        except WireProtocolError as exc:
            # mismatched vocabulary: answer typed, then hang up
            self._try_send_failure(connection, correlation, "protocol",
                                   str(exc))
            return False
        try:
            reply: Message = self.node.handle(message)
        except Exception as exc:  # a node bug must not kill the server
            reply = Failure(sender=self.peer, target=message.sender,
                            in_reply_to=message.correlation_id,
                            code="internal",
                            detail=f"{type(exc).__name__}: {exc}")
        try:
            payload = encode_frame(message_to_dict(reply))
        except WireProtocolError as exc:
            # un-encodable payload (exotic domain values): typed reply
            self._try_send_failure(
                connection, message.correlation_id, "protocol",
                f"reply not wire-encodable: {exc}")
            return True
        connection.sendall(payload)
        return True

    def _try_send_failure(self, connection: socket.socket,
                          in_reply_to: int, code: str,
                          detail: str) -> None:
        failure = Failure(sender=self.peer, target="",
                          in_reply_to=in_reply_to, code=code,
                          detail=detail)
        try:
            connection.sendall(encode_frame(message_to_dict(failure)))
        except OSError:
            pass

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop accepting, drop live connections, flush the node.

        Safe to call more than once; flushing (``network.close``) is
        what persists a durable node's answer and fetch caches, so a
        graceful shutdown is the difference between a warm and a cold
        restart.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if (self._accept_thread is not None
                and self._accept_thread is not threading.current_thread()):
            self._accept_thread.join(timeout=2.0)
        self.network.close()

    def __enter__(self) -> "PeerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"PeerServer({self.unit!r} @ {self.address}, "
                f"neighbours={list(self.transport.addresses())})")
