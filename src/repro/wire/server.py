"""The peer server: one OS process serving one peer over TCP.

A :class:`PeerServer` hosts exactly one
:class:`~repro.net.node.PeerNode` — the peer's schema, its instance
slice, the DECs it owns, its trust edges, optionally durable under a
``data_dir`` — behind a listening socket speaking the
:mod:`repro.wire.codec` frame protocol.  Outbound requests (the
hop-by-hop gathers the node makes while answering) go through a
:class:`~repro.wire.transport.SocketTransport` dialled at the
*other* peers' addresses, so a set of these processes forms exactly the
paper's network of autonomous sites: every byte between peers crosses a
real socket.

The server is deliberately also usable in-process (``start()`` runs the
event loop on a daemon thread): the socket-transport unit tests and
the WC1/WC2 benchmarks exercise real TCP framing without paying process
startup; ``python -m repro serve`` wraps the blocking
:meth:`PeerServer.serve_forever` for the real cross-process deployment,
and :mod:`repro.wire.cluster` spawns one such process per peer.

Concurrency model — **event loop + worker pool**, not
thread-per-connection:

* one :mod:`selectors` loop owns every socket: it accepts connections,
  assembles frames from non-blocking reads, and drains per-connection
  reply buffers — so hundreds of idle or slow connections cost file
  descriptors and buffer bytes, never threads;
* decoded requests are handed to a small worker pool (``workers``
  threads calling ``node.handle``; the node's own locks serialise
  answering exactly as for the in-process transports).  Replies are
  multiplexed back per connection in *completion* order — the protocol
  carries correlation ids, so interleaved requests from one connection
  pair up client-side regardless of order;
* **admission control**: at most ``pending_limit`` admitted requests
  may be queued or running at once.  Request number
  ``pending_limit + 1`` is shed immediately with a typed
  ``code="overloaded"`` :class:`~repro.net.protocol.Failure` — cheap
  for the server, *retryable* for the client
  (:class:`~repro.net.errors.ServerOverloaded`), so saturation
  degrades into backoff-paced retries instead of unbounded queues or
  hangs;
* **idle deadlines**: a connection with no traffic and no request in
  flight for ``idle_timeout`` seconds is reclaimed — a stalled or dead
  client can no longer pin server state (the old thread-per-connection
  loop served with ``settimeout(None)`` and leaked exactly that).

A connection serves any number of interleaved requests; malformed
frames are answered with a typed
:class:`~repro.net.protocol.Failure` and the connection is closed, so
a desynced stream can never smear into later replies.  The handshake
advertises this process's **physical unit name** (``P#0@1`` for a
shard replica) — two replicas of one peer are distinguishable on the
wire, and clients verify they reached the unit they dialed.
"""

from __future__ import annotations

import collections
import dataclasses
import errno
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Mapping, Optional, Union

from ..core.system import PeerSystem
from ..net.errors import NetworkError
from ..net.network import PeerNetwork
from ..net.node import PeerNode
from ..net.protocol import Answer, Failure, GetStatus, Message
from ..obs.metrics import MetricsRegistry, merge_snapshots
from ..obs.trace import Span, new_id
from .codec import (
    MAX_FRAME_BYTES,
    WireProtocolError,
    check_hello,
    decode_frame,
    encode_frame,
    hello_frame,
    message_from_dict,
    message_to_dict,
)
from .transport import Address, SocketTransport, format_address

__all__ = ["PeerServer", "build_peer_node"]


def build_peer_node(system: PeerSystem, peer: str, *,
                    default_method: str = "auto",
                    include_local_ics: bool = True,
                    evaluator: str = "planner",
                    data_dir: Optional[Union[str, Path]] = None,
                    snapshot_every: int = 64,
                    shard_map=None, shard_index: int = 0,
                    routing: bool = False,
                    tracing: bool = False) -> PeerNode:
    """One peer's node, seeded with only its local slice of ``system``.

    The system definition is authoritative: after construction the
    node's store is moved to the definition's instance (mirroring the
    CLI's ``network --data-dir`` contract), so a durable node that
    resumed *older* disk state logs the difference as a delta — which is
    precisely what lets neighbours re-sync by delta instead of
    re-fetching full relations after a restart — and every node of the
    cluster stamps the same content-derived system version.

    With a ``shard_map`` the node holds only shard ``shard_index`` of
    its peer (see :func:`repro.shard.node.build_shard_node`, which this
    delegates to).
    """
    if shard_map is not None:
        # lazy: repro.shard imports from repro.net only, but keeping
        # the import out of module scope keeps wire↔shard cycle-free
        from ..shard.node import build_shard_node
        return build_shard_node(
            system, peer, shard_map=shard_map, shard_index=shard_index,
            default_method=default_method,
            include_local_ics=include_local_ics, evaluator=evaluator,
            data_dir=data_dir, snapshot_every=snapshot_every,
            routing=routing, tracing=tracing)
    if peer not in system.peers:
        raise NetworkError(
            f"system has no peer {peer!r}; it has "
            f"{sorted(system.peers)}")
    own_edges = [(owner, level, other)
                 for owner, level, other in system.trust.edges()
                 if owner == peer]
    node = PeerNode(
        system.peers[peer], system.instances[peer],
        decs=system.decs_of(peer),
        trust_edges=own_edges,
        default_method=default_method,
        include_local_ics=include_local_ics,
        evaluator=evaluator,
        data_dir=data_dir,
        snapshot_every=snapshot_every,
        routing=routing,
        tracing=tracing)
    node.update_instance(system.instances[peer], system.version())
    return node


class _ServedConnection:
    """The event loop's per-connection state: buffers, not a thread."""

    __slots__ = ("sock", "inbuf", "outbox", "send_offset", "handshaken",
                 "last_activity", "in_flight", "closed", "draining")

    def __init__(self, sock: socket.socket, now: float) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        #: encoded reply frames awaiting socket room, oldest first
        self.outbox: collections.deque[bytes] = collections.deque()
        self.send_offset = 0  # progress into outbox[0]
        self.handshaken = False
        self.last_activity = now
        #: admitted requests currently queued/running for this
        #: connection (guarded by the server lock — workers touch it)
        self.in_flight = 0
        self.closed = False
        #: True once the connection must close as soon as the
        #: outbox drains (typed refusal already queued)
        self.draining = False


class PeerServer:
    """Serve one peer's node over a listening TCP socket."""

    def __init__(self, system: PeerSystem, peer: str, *,
                 host: str = "127.0.0.1", port: int = 0,
                 addresses: Optional[Mapping[str, Union[str,
                                                        Address]]] = None,
                 data_dir: Optional[Union[str, Path]] = None,
                 hop_budget: Optional[int] = None,
                 retries: int = 2,
                 timeout: Optional[float] = None,
                 default_method: str = "auto",
                 include_local_ics: bool = True,
                 evaluator: str = "planner",
                 snapshot_every: int = 64,
                 request_timeout: float = 10.0,
                 connect_timeout: float = 2.0,
                 workers: int = 8,
                 pending_limit: int = 64,
                 idle_timeout: float = 60.0,
                 shard_map=None, shard_index: int = 0,
                 replica_index: int = 0,
                 bind_retries: int = 3,
                 routing: bool = False,
                 tracing: bool = False) -> None:
        if workers < 1 or pending_limit < 1:
            raise NetworkError(
                "workers and pending_limit must be >= 1")
        if idle_timeout <= 0:
            raise NetworkError("idle_timeout must be > 0 seconds")
        self.peer = peer
        if shard_map is not None and shard_map.covers(peer):
            from ..shard.shardmap import replica_name
            #: this process's physical name — what the supervisor
            #: addresses, kills, and restarts, and what the wire
            #: handshake advertises
            self.unit = replica_name(peer, shard_index, replica_index)
        else:
            self.unit = peer
        self.node = build_peer_node(
            system, peer,
            default_method=default_method,
            include_local_ics=include_local_ics,
            evaluator=evaluator,
            # the cluster-level directory, scoped per *unit* (two
            # replicas of one peer must never share a store) exactly
            # like PeerNetwork.from_system(data_dir=...) scopes nodes
            data_dir=(Path(data_dir) / self.unit
                      if data_dir is not None else None),
            snapshot_every=snapshot_every,
            shard_map=shard_map, shard_index=shard_index,
            routing=routing, tracing=tracing)
        remote = {name: value
                  for name, value in (addresses or {}).items()
                  if name != self.unit}
        inner = SocketTransport(
            remote, local_name=self.unit, timeout=request_timeout,
            connect_timeout=connect_timeout)
        if shard_map is not None:
            # outbound requests must see the same logical surface a
            # client does: fetches fan across shards, queries pick a
            # replica, sibling-shard self-merge included — the local
            # slice rides the inner transport's handler fallback (our
            # own unit has no address entry)
            from ..shard.router import ShardRouter
            from ..shard.shardmap import replica_layout
            layout = replica_layout(shard_map, dict.fromkeys(
                [*((addresses or {}).keys()), self.unit]))
            self.transport = ShardRouter(
                shard_map, layout, inner, local_name=self.unit)
        else:
            self.transport = inner
        # a single-node network: the node cannot see the global
        # diameter, so the hop budget must cover the *whole* system
        self.network = PeerNetwork(
            [self.node], self.transport,
            hop_budget=(hop_budget if hop_budget is not None
                        else len(system.peers)),
            retries=retries, timeout=timeout)
        self.workers = workers
        self.pending_limit = pending_limit
        self.idle_timeout = idle_timeout
        self._listener = self._bind(host, port, max(1, bind_retries))
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: live connections, keyed by socket (loop thread owns the
        #: values; the mapping itself is lock-guarded for shutdown)
        self._connections: dict[socket.socket, _ServedConnection] = {}
        #: admitted (queued + running) requests across all connections
        self._pending = 0
        #: replies finished by workers, awaiting the loop thread
        self._finished: collections.deque[
            tuple[_ServedConnection, bytes]] = collections.deque()
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix=f"peer-worker-{self.unit}")
        # the loop sleeps in select(); workers wake it through a
        # socketpair so a finished reply is flushed immediately
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        #: requests shed at admission since startup (observability)
        self.shed_requests = 0
        #: live serving-process metrics, scraped over the wire by the
        #: :class:`~repro.net.protocol.GetStatus` message
        self.metrics = MetricsRegistry()

    @staticmethod
    def _bind(host: str, port: int, attempts: int) -> socket.socket:
        """Bind the listener, retrying a bounded number of times on
        ``EADDRINUSE``.

        Ports come from :func:`~repro.wire.cluster.free_port`'s
        bind-and-release probe, so there is an unavoidable window in
        which the OS hands the 'free' port to someone else's transient
        socket (TIME_WAIT from a just-killed server being the classic
        case on a restart).  A few short-backoff retries absorb that
        race; a genuinely occupied port still fails typed after the
        last attempt.
        """
        last: Optional[OSError] = None
        for attempt in range(attempts):
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, port))
                listener.listen(128)
                listener.setblocking(False)
                return listener
            except OSError as exc:
                listener.close()
                if exc.errno != errno.EADDRINUSE or port == 0:
                    raise
                last = exc
                if attempt + 1 < attempts:
                    time.sleep(0.1 * (attempt + 1))
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return format_address((self.host, self.port))

    def start(self) -> "PeerServer":
        """Run the event loop on a daemon thread (in-process use)."""
        if self._accept_thread is not None:
            raise NetworkError(f"server for {self.peer!r} already "
                               f"started")
        self._accept_thread = threading.Thread(
            target=self.serve_forever,
            name=f"peer-server-{self.unit}", daemon=True)
        self._accept_thread.start()
        return self

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the select loop until :meth:`shutdown` (blocking)."""
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ,
                          "accept")
        selector.register(self._waker_r, selectors.EVENT_READ, "wake")
        # the tick bounds how late idle reaping and shutdown can run;
        # short idle deadlines (tests) get proportionally finer ticks
        tick = max(0.02, min(0.2, self.idle_timeout / 4))
        try:
            while not self._shutdown.is_set():
                events = selector.select(timeout=tick)
                now = time.monotonic()
                for key, mask in events:
                    if key.data == "accept":
                        self._accept(selector, now)
                    elif key.data == "wake":
                        self._drain_waker()
                    else:
                        connection = key.data
                        if mask & selectors.EVENT_READ:
                            self._on_readable(selector, connection, now)
                        if (mask & selectors.EVENT_WRITE
                                and not connection.closed):
                            self._on_writable(selector, connection, now)
                self._flush_finished(selector)
                self._reap_idle(selector, now)
        finally:
            with self._lock:
                connections = list(self._connections.values())
                self._connections.clear()
            for connection in connections:
                connection.closed = True
                self._close_socket(connection.sock)
            selector.close()
            self._close_socket(self._listener)

    def _accept(self, selector: selectors.BaseSelector,
                now: float) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us (shutdown)
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
            except OSError:
                pass
            connection = _ServedConnection(sock, now)
            self.metrics.inc("server.connections_accepted")
            with self._lock:
                self._connections[sock] = connection
            selector.register(sock, selectors.EVENT_READ, connection)

    def _drain_waker(self) -> None:
        try:
            while self._waker_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"x")
        except (BlockingIOError, InterruptedError):
            pass  # the loop has unread wake bytes already
        except OSError:
            pass  # torn down mid-shutdown

    # -- reading -------------------------------------------------------
    def _on_readable(self, selector: selectors.BaseSelector,
                     connection: _ServedConnection, now: float) -> None:
        try:
            chunk = connection.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(selector, connection)
            return
        if not chunk:
            # EOF: with no replies owed, close now; otherwise the
            # write side finishes (draining) first
            if connection.in_flight == 0 and not connection.outbox:
                self._drop(selector, connection)
            else:
                connection.draining = True
            return
        connection.last_activity = now
        connection.inbuf += chunk
        self.metrics.inc("server.bytes_in", len(chunk))
        while not connection.closed and not connection.draining:
            end = connection.inbuf.find(b"\n")
            if end < 0:
                if len(connection.inbuf) > MAX_FRAME_BYTES:
                    self._refuse(
                        selector, connection, 0, "protocol",
                        f"frame exceeds the {MAX_FRAME_BYTES}-byte cap")
                break
            line = bytes(connection.inbuf[:end + 1])
            del connection.inbuf[:end + 1]
            self._on_frame(selector, connection, line)

    def _on_frame(self, selector: selectors.BaseSelector,
                  connection: _ServedConnection, line: bytes) -> None:
        try:
            frame = decode_frame(line)
        except WireProtocolError as exc:
            self._refuse(selector, connection, 0, "protocol", str(exc))
            return
        if not connection.handshaken:
            # reply with our hello before judging theirs, so a client
            # from another protocol release sees *our* version in its
            # own handshake check rather than a silent hangup; the
            # hello names the *unit* (``P#0@1``), so two replicas of
            # one peer are distinguishable on the wire
            self._enqueue(selector, connection,
                          encode_frame(hello_frame(self.unit)))
            try:
                check_hello(frame)
            except WireProtocolError as exc:
                self._refuse(selector, connection, 0, "protocol",
                             str(exc))
                return
            connection.handshaken = True
            return
        correlation = frame.get("correlation_id", 0)
        try:
            message = message_from_dict(frame)
        except WireProtocolError as exc:
            # mismatched vocabulary: answer typed, then hang up
            self._refuse(selector, connection, correlation, "protocol",
                         str(exc))
            return
        self.metrics.inc("server.frames_in")
        with self._lock:
            admitted = self._pending < self.pending_limit
            if admitted:
                self._pending += 1
                connection.in_flight += 1
            else:
                self.shed_requests += 1
                backlog = self._pending
        if not admitted:
            self.metrics.inc("server.shed_requests")
            # admission control: shed *now*, typed and retryable —
            # cheaper for everyone than an unbounded queue
            self._enqueue(selector, connection, encode_frame(
                message_to_dict(Failure(
                    sender=self.unit, target=message.sender,
                    in_reply_to=message.correlation_id,
                    code="overloaded",
                    detail=(f"server has {backlog} request(s) pending "
                            f"(limit {self.pending_limit}); "
                            f"retry with backoff")))))
            return
        self._executor.submit(self._handle, connection, message,
                              time.monotonic())

    # -- worker side ---------------------------------------------------
    def _handle(self, connection: _ServedConnection, message: Message,
                admitted_at: float) -> None:
        """Serve one admitted request on a pool thread.

        ``admitted_at`` is the loop thread's admission timestamp: the
        gap to the worker picking the request up is the queue wait,
        recorded as a histogram always and as a ``queue-wait`` span
        when the request carries a trace context.
        """
        try:
            started = time.monotonic()
            queue_wait = max(0.0, started - admitted_at)
            self.metrics.observe("server.queue_wait_s", queue_wait)
            try:
                if isinstance(message, GetStatus):
                    # metrics are a property of the serving *process*
                    # (sockets, pools, queue), so the server answers
                    # directly instead of the node
                    reply: Message = Answer(
                        sender=self.unit, target=message.sender,
                        in_reply_to=message.correlation_id,
                        payload={"status": self.status()})
                else:
                    reply = self.node.handle(message)
            except Exception as exc:  # a node bug must not kill us
                reply = Failure(
                    sender=self.peer, target=message.sender,
                    in_reply_to=message.correlation_id,
                    code="internal",
                    detail=f"{type(exc).__name__}: {exc}")
            self.metrics.observe("server.execute_s",
                                 time.monotonic() - started)
            self.metrics.inc("server.requests_served")
            if message.trace_id and hasattr(reply, "spans"):
                # the queue-wait span slots next to the node's serve
                # span, both children of the client's request span
                reply = dataclasses.replace(reply, spans=tuple(
                    reply.spans) + (Span(
                        message.trace_id, new_id(), message.span_id,
                        "queue-wait", self.unit, admitted_at,
                        queue_wait),))
            try:
                payload = encode_frame(message_to_dict(reply))
            except WireProtocolError as exc:
                # un-encodable payload (exotic domain values): typed
                payload = encode_frame(message_to_dict(Failure(
                    sender=self.peer, target=message.sender,
                    in_reply_to=message.correlation_id,
                    code="protocol",
                    detail=f"reply not wire-encodable: {exc}")))
        except BaseException:
            with self._lock:
                self._pending -= 1
                connection.in_flight -= 1
            raise
        with self._lock:
            # hand the encoded reply to the loop thread *before*
            # giving the admission slot back, so the idle reaper can
            # never see a quiet connection that still awaits a reply
            self._finished.append((connection, payload))
            self._pending -= 1
            connection.in_flight -= 1
        self._wake()

    def _flush_finished(self,
                        selector: selectors.BaseSelector) -> None:
        while True:
            with self._lock:
                if not self._finished:
                    return
                connection, payload = self._finished.popleft()
            if not connection.closed:
                self._enqueue(selector, connection, payload)

    # -- writing -------------------------------------------------------
    def _enqueue(self, selector: selectors.BaseSelector,
                 connection: _ServedConnection, payload: bytes) -> None:
        connection.outbox.append(payload)
        # opportunistic immediate send: most replies fit the socket
        # buffer, so the common case never waits for a WRITE event
        self._on_writable(selector, connection, time.monotonic())

    def _on_writable(self, selector: selectors.BaseSelector,
                     connection: _ServedConnection, now: float) -> None:
        while connection.outbox:
            head = connection.outbox[0]
            try:
                sent = connection.sock.send(
                    memoryview(head)[connection.send_offset:])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(selector, connection)
                return
            if sent <= 0:
                break
            connection.last_activity = now
            self.metrics.inc("server.bytes_out", sent)
            connection.send_offset += sent
            if connection.send_offset >= len(head):
                connection.outbox.popleft()
                connection.send_offset = 0
            else:
                break  # kernel buffer full mid-frame
        if connection.outbox:
            self._set_interest(selector, connection,
                               selectors.EVENT_READ
                               | selectors.EVENT_WRITE)
        else:
            if connection.draining:
                self._drop(selector, connection)
                return
            self._set_interest(selector, connection,
                               selectors.EVENT_READ)

    @staticmethod
    def _set_interest(selector: selectors.BaseSelector,
                      connection: _ServedConnection, events: int) -> None:
        try:
            selector.modify(connection.sock, events, connection)
        except (KeyError, ValueError, OSError):
            pass  # already unregistered (dropped under us)

    def _refuse(self, selector: selectors.BaseSelector,
                connection: _ServedConnection, in_reply_to: int,
                code: str, detail: str) -> None:
        """Queue a typed failure, then close once it is flushed."""
        try:
            payload = encode_frame(message_to_dict(Failure(
                sender=self.unit, target="", in_reply_to=in_reply_to,
                code=code, detail=detail)))
        except WireProtocolError:  # pragma: no cover - always encodable
            self._drop(selector, connection)
            return
        connection.draining = True
        self._enqueue(selector, connection, payload)

    # -- lifecycle of one connection -----------------------------------
    def _drop(self, selector: selectors.BaseSelector,
              connection: _ServedConnection) -> None:
        if connection.closed:
            return
        connection.closed = True
        try:
            selector.unregister(connection.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._close_socket(connection.sock)
        with self._lock:
            self._connections.pop(connection.sock, None)

    def _reap_idle(self, selector: selectors.BaseSelector,
                   now: float) -> None:
        """Reclaim connections idle past the deadline.

        Idle means: no bytes received, no send progress, and no
        admitted request in flight for ``idle_timeout`` seconds — a
        long-running gather keeps its connection, a silent client (or
        one that stopped reading its replies) loses it.
        """
        with self._lock:
            candidates = [
                connection
                for connection in self._connections.values()
                if connection.in_flight == 0
                and now - connection.last_activity > self.idle_timeout]
        for connection in candidates:
            self.metrics.inc("server.idle_reaped")
            self._drop(selector, connection)

    @staticmethod
    def _close_socket(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def connection_count(self) -> int:
        """Live connections currently held by the event loop."""
        with self._lock:
            return len(self._connections)

    def status(self) -> dict:
        """The live status payload a ``GetStatus`` request is answered
        with: identity plus one merged metrics snapshot covering every
        registry this process runs (server loop, outbound transport,
        network retry machinery, and — when enabled — the routing
        index and shard router)."""
        with self._lock:
            self.metrics.gauge("server.connections_open",
                               len(self._connections))
            self.metrics.gauge("server.pending_requests", self._pending)
        snapshots = [self.metrics.snapshot()]
        transport = self.transport
        router_metrics = getattr(transport, "metrics", None)
        inner = getattr(transport, "inner", None)
        if inner is not None:  # a ShardRouter over a SocketTransport
            if router_metrics is not None:
                snapshots.append(router_metrics.snapshot())
            transport = inner
        if hasattr(transport, "metrics_snapshot"):
            snapshots.append(transport.metrics_snapshot())
        snapshots.append(self.network.metrics.snapshot())
        if self.node.routing is not None:
            snapshots.append(self.node.routing.metrics.snapshot())
        return {
            "unit": self.unit,
            "peer": self.peer,
            "address": self.address,
            "shed_requests": self.shed_requests,
            "metrics": merge_snapshots(snapshots),
        }

    def shutdown(self) -> None:
        """Stop the loop, drop live connections, flush the node.

        Safe to call more than once; flushing (``network.close``) is
        what persists a durable node's answer and fetch caches, so a
        graceful shutdown is the difference between a warm and a cold
        restart.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._wake()
        if (self._accept_thread is not None
                and self._accept_thread
                is not threading.current_thread()):
            self._accept_thread.join(timeout=5.0)
        # direct serve_forever callers (the CLI) run the loop's own
        # cleanup via its finally block; this covers a server that was
        # never started, plus the listener either way
        self._close_socket(self._listener)
        with self._lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.closed = True
            self._close_socket(connection.sock)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._close_socket(self._waker_w)
        self._close_socket(self._waker_r)
        self.network.close()

    def __enter__(self) -> "PeerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"PeerServer({self.unit!r} @ {self.address}, "
                f"neighbours={list(self.transport.addresses())})")
