"""Synthetic workload generators for the scaling studies.

The paper has no quantitative evaluation, but Section 3.2 makes
complexity claims (Π^p_2 data complexity; exponentially many repairs) and
Section 4.1 an optimisation claim (HCF shifting).  These generators
produce the parameterised families the benchmarks sweep:

* :func:`conflict_chain_system` — n independent same-trust conflicts, so
  the peer has exactly 2^n solutions (the exponential blow-up of SC1);
* :func:`import_star_system` — one peer importing from k more-trusted
  neighbours via full inclusions, with adjustable consistent/conflicting
  tuple counts (the FO-rewriting-friendly family of SC2);
* :func:`referential_system` — Section 3.1-shaped referential DECs with a
  tunable number of violations and witnesses (SC3's HCF ablation);
* :func:`peer_chain_system` — a transitive chain of k peers propagating
  imports (SC4);
* :func:`topology_system` — one seeded generator for chain/star/random
  accessibility graphs, shared by the network benchmarks (NF1) and the
  :mod:`repro.net` differential tests so they exercise identical system
  families.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import Optional

from ..datalog.terms import Variable
from ..relational.constraints import (
    EqualityGeneratingConstraint,
    InclusionDependency,
    TupleGeneratingConstraint,
)
from ..relational.query import RelAtom
from ..core.system import PeerSystem

__all__ = [
    "conflict_chain_system",
    "import_star_system",
    "referential_system",
    "peer_chain_system",
    "topology_system",
    "sharded_topology_system",
    "bulk_relation_system",
]

_X, _Y, _Z, _W = (Variable("X"), Variable("Y"), Variable("Z"),
                  Variable("W"))


def conflict_chain_system(n_conflicts: int, *,
                          n_clean: int = 0) -> PeerSystem:
    """P1 vs an equally-trusted P3: ``n_conflicts`` independent EGD
    conflicts (each resolvable two ways → 2^n solutions) plus ``n_clean``
    conflict-free tuples."""
    r1 = [(f"k{i}", f"v{i}") for i in range(n_conflicts)]
    r3 = [(f"k{i}", f"w{i}") for i in range(n_conflicts)]
    r1 += [(f"c{i}", f"cv{i}") for i in range(n_clean)]
    egd = EqualityGeneratingConstraint(
        antecedent=[RelAtom("R1", [_X, _Y]), RelAtom("R3", [_X, _Z])],
        equalities=[(_Y, _Z)], name="conflict")
    return (PeerSystem.builder()
            .peer("P1", {"R1": 2}, instance={"R1": r1})
            .peer("P3", {"R3": 2}, instance={"R3": r3})
            .exchange("P1", "P3", egd)
            .trust("P1", "same", "P3")
            .build())


def import_star_system(n_tuples: int, n_neighbours: int = 1, *,
                       overlap: float = 0.3,
                       conflicts: int = 0,
                       seed: int = 7) -> PeerSystem:
    """P0 imports from ``n_neighbours`` more-trusted peers via full
    inclusions; optionally an equally-trusted conflict peer adds EGD
    violations.

    ``overlap`` is the fraction of each neighbour's tuples already present
    at P0 (imports that change nothing).  The query family of SC2 runs
    over this system at growing ``n_tuples``.
    """
    rng = random.Random(seed)
    own = [(f"k{i}", f"v{i}") for i in range(n_tuples)]
    builder = PeerSystem.builder().peer("P0", {"R0": 2},
                                        instance={"R0": own})
    for j in range(1, n_neighbours + 1):
        relation = f"M{j}"
        shared = rng.sample(own, int(overlap * len(own))) if own else []
        fresh = [(f"n{j}_{i}", f"nv{j}_{i}")
                 for i in range(max(0, n_tuples // n_neighbours))]
        builder.peer(f"P{j}", {relation: 2},
                     instance={relation: shared + fresh})
        builder.exchange(
            "P0", f"P{j}",
            InclusionDependency(relation, "R0", child_arity=2,
                                parent_arity=2,
                                name=f"import_{relation}"))
        builder.trust("P0", "less", f"P{j}")
    if conflicts:
        conflicting = [(f"k{i}", f"w{i}") for i in range(conflicts)]
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R0", [_X, _Y]),
                        RelAtom("C0", [_X, _Z])],
            equalities=[(_Y, _Z)], name="conflict_C0")
        builder.peer("PC", {"C0": 2}, instance={"C0": conflicting})
        builder.exchange("P0", "PC", egd)
        builder.trust("P0", "same", "PC")
    return builder.build()


def referential_system(n_violations: int, n_witnesses: int = 2, *,
                       n_satisfied: int = 0) -> PeerSystem:
    """Section 3.1-shaped referential DEC with ``n_violations`` violating
    antecedent pairs, each with ``n_witnesses`` candidate S2-witnesses
    (every violation admits 1 deletion + ``n_witnesses`` insertions →
    ``(n_witnesses + 1)^n_violations`` solutions)."""
    r1 = [(f"d{i}", f"m{i}") for i in range(n_violations)]
    s1 = [(f"a{i}", f"m{i}") for i in range(n_violations)]
    s2 = [(f"a{i}", f"t{i}_{j}")
          for i in range(n_violations) for j in range(n_witnesses)]
    r2 = []
    for i in range(n_satisfied):
        r1.append((f"sd{i}", f"sm{i}"))
        s1.append((f"sa{i}", f"sm{i}"))
        r2.append((f"sd{i}", f"st{i}"))
        s2.append((f"sa{i}", f"st{i}"))
    dec = TupleGeneratingConstraint(
        antecedent=[RelAtom("R1", [_X, _Y]), RelAtom("S1", [_Z, _Y])],
        consequent=[RelAtom("R2", [_X, _W]), RelAtom("S2", [_Z, _W])],
        name="dec3")
    return (PeerSystem.builder()
            .peer("P", {"R1": 2, "R2": 2},
                  instance={"R1": r1, "R2": r2})
            .peer("Q", {"S1": 2, "S2": 2},
                  instance={"S1": s1, "S2": s2})
            .exchange("P", "Q", dec)
            .trust("P", "less", "Q")
            .build())


def topology_system(n_peers: int, *, topology: str = "star",
                    n_tuples: int = 6, conflicts: int = 0,
                    extra_edges: int = 0,
                    density: Optional[float] = None,
                    branching: int = 2,
                    seed: int = 0) -> PeerSystem:
    """One seeded generator for the network-shaped system families.

    ``topology`` selects the accessibility graph rooted at ``P0``:

    * ``"chain"`` — P0 → P1 → ... → P{n-1}, each peer importing its
      successor's relation (the transitive family);
    * ``"star"`` — P0 imports from every other peer directly (the
      fan-out family);
    * ``"random"`` — a seeded spanning arborescence from P0 (every peer
      ``Pi`` is imported by a random earlier peer) plus ``extra_edges``
      additional forward edges, so the graph is a connected DAG with
      diamonds but no cycles.  ``density`` is the scale-free
      alternative to the absolute ``extra_edges`` count: a fraction in
      ``[0, 1]`` of the possible non-tree forward edges to add
      (``0.0`` keeps the bare arborescence, ``1.0`` saturates the
      DAG), so sweeps over ``n_peers`` keep comparable edge/node
      ratios without recomputing counts.  Passing both is an error;
      both only apply to ``"random"``.
    * ``"tree"`` — a complete ``branching``-ary tree rooted at P0
      (``Pi`` is imported by ``P{(i-1)//branching}``), the deep-gather
      family for multi-hop subtree pruning.  Unlike the other shapes,
      every peer's keys live in their own namespace (``p{i}k{j}``
      instead of the shared pool): a constant-selecting query then
      names exactly one peer's data, so branch digests are genuinely
      disjoint from it and the :mod:`repro.routing` aggregates have
      something to prove.  ``branching`` only applies to ``"tree"``.

    Every peer ``Pi`` owns one binary relation ``Ri`` with ``n_tuples``
    seeded rows; outside ``"tree"``, keys are drawn from a small shared
    pool so imports genuinely overlap and collide.  All import edges are
    full inclusions with `less` trust.  ``conflicts`` > 0 adds an
    equally-trusted peer ``PC`` whose relation ``C0`` contradicts that
    many of P0's keys via an EGD, exercising the stage-2 (`same`-trust)
    semantics.

    The accessibility graph always reaches every peer from P0, which is
    what makes the :mod:`repro.net` runtime's hop-by-hop view provably
    equivalent to the global session on these systems.
    """
    if n_peers < 1:
        raise ValueError("topology_system needs at least one peer")
    if topology not in ("chain", "star", "random", "tree"):
        raise ValueError(
            f"unknown topology {topology!r}; use 'chain', 'star', "
            f"'random', or 'tree'")
    if branching < 1:
        raise ValueError(f"branching must be >= 1, got {branching}")
    if density is not None:
        if topology != "random":
            raise ValueError(
                "density only applies to topology='random'")
        if extra_edges:
            raise ValueError(
                "pass extra_edges or density, not both")
        if not 0.0 <= density <= 1.0:
            raise ValueError(
                f"density must be in [0, 1], got {density}")
    rng = random.Random(f"{seed}:{topology}:{n_peers}:{n_tuples}")
    key_pool = [f"k{i}" for i in range(max(4, n_tuples))]

    builder = PeerSystem.builder()
    root_keys: list[str] = []
    for index in range(n_peers):
        if topology == "tree":
            # namespaced keys: "Ri holds p5's keys" is decidable from a
            # digest, which is what subtree pruning proves absence with
            rows = [(f"p{index}k{i}", f"v{index}_{i}")
                    for i in range(n_tuples)]
        else:
            rows = [(rng.choice(key_pool), f"v{index}_{i}")
                    for i in range(n_tuples)]
        builder.peer(f"P{index}", {f"R{index}": 2},
                     instance={f"R{index}": rows})
        if index == 0:
            root_keys = sorted({key for key, _value in rows})

    if topology == "chain":
        edges = [(i, i + 1) for i in range(n_peers - 1)]
    elif topology == "star":
        edges = [(0, i) for i in range(1, n_peers)]
    elif topology == "tree":
        edges = [((i - 1) // branching, i) for i in range(1, n_peers)]
    else:
        edges = [(rng.randrange(i), i) for i in range(1, n_peers)]
        candidates = [(j, i) for i in range(1, n_peers)
                      for j in range(i) if (j, i) not in set(edges)]
        rng.shuffle(candidates)
        if density is not None:
            extra_edges = round(density * len(candidates))
        edges.extend(candidates[:extra_edges])

    for owner_idx, other_idx in edges:
        owner, other = f"P{owner_idx}", f"P{other_idx}"
        builder.exchange(
            owner, other,
            InclusionDependency(f"R{other_idx}", f"R{owner_idx}",
                                child_arity=2, parent_arity=2,
                                name=f"import_{owner}_{other}"))
        builder.trust(owner, "less", other)

    if conflicts:
        # clash with keys P0 actually holds, so every conflict is real
        clashing = [(root_keys[i % len(root_keys)], f"w{i}")
                    for i in range(conflicts)] if root_keys else []
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R0", [_X, _Y]),
                        RelAtom("C0", [_X, _Z])],
            equalities=[(_Y, _Z)], name="conflict_C0")
        builder.peer("PC", {"C0": 2}, instance={"C0": clashing})
        builder.exchange("P0", "PC", egd)
        builder.trust("P0", "same", "PC")
    return builder.build()


def sharded_topology_system(n_peers: int, *, shards: int = 2,
                            topology: str = "star",
                            n_tuples: int = 6, conflicts: int = 0,
                            extra_edges: int = 0, branching: int = 2,
                            seed: int = 0):
    """A :func:`topology_system` plus a uniform shard map for it.

    Returns ``(system, shard_map)`` — the pair every sharded
    differential case needs: the same seeded system families the
    :mod:`repro.net` suite sweeps, deployed as ``shards`` slices per
    peer.  The map import is lazy so the workload package stays free of
    a hard :mod:`repro.shard` dependency.
    """
    from ..shard import ShardMap
    system = topology_system(n_peers, topology=topology,
                             n_tuples=n_tuples, conflicts=conflicts,
                             extra_edges=extra_edges,
                             branching=branching, seed=seed)
    return system, ShardMap.uniform(system.peers, shards)


def bulk_relation_system(n_rows: int, *, value_width: int = 24,
                         seed: int = 0) -> PeerSystem:
    """One peer, one wide relation, many rows — the bulk-transfer
    family the SH1 benchmark fetches through shard fan-out.

    Keys are unique (every row is its own shard-placement decision) and
    values are ``value_width`` characters of seeded noise, so fetch
    cost is dominated by genuine payload bytes rather than framing.
    """
    rng = random.Random(f"bulk:{seed}:{n_rows}:{value_width}")
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    rows = [(f"k{i:07d}",
             "".join(rng.choice(alphabet) for _ in range(value_width)))
            for i in range(n_rows)]
    return (PeerSystem.builder()
            .peer("P0", {"R0": 2}, instance={"R0": rows})
            .build())


def peer_chain_system(length: int, n_tuples: int = 2) -> PeerSystem:
    """A chain P0 ← P1 ← ... ← P_{length}: each peer imports its
    successor's relation via a full inclusion with `less` trust, so data
    entered at the far end propagates transitively to P0."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    builder = PeerSystem.builder()
    for index in range(length + 1):
        relation = f"T{index}"
        rows = []
        if index == length:  # only the far end holds data
            rows = [(f"x{i}", f"y{i}") for i in range(n_tuples)]
        builder.peer(f"P{index}", {relation: 2},
                     instance={relation: rows})
        if index < length:
            builder.exchange(
                f"P{index}", f"P{index + 1}",
                InclusionDependency(f"T{index + 1}", relation,
                                    child_arity=2, parent_arity=2,
                                    name=f"chain_{index}"))
            builder.trust(f"P{index}", "less", f"P{index + 1}")
    return builder.build()
