"""Workloads: the paper's examples as fixtures, plus synthetic families.

``repro.workloads.paper`` transcribes every worked example of the paper
(Examples 1–4, Section 3.1, the Appendix) into constructor functions so
that tests, examples, and benchmarks share a single source of truth.

``repro.workloads.synthetic`` generates the parameterised system families
behind the scaling studies SC1–SC6 (see ``benchmarks/`` and
``python -m repro report``).
"""

from .paper import (
    appendix_instance,
    example1_query,
    example1_system,
    example2_rewritten_text,
    example4_system,
    section31_dec,
    section31_instance,
    section31_system,
)
from .synthetic import (
    bulk_relation_system,
    conflict_chain_system,
    import_star_system,
    peer_chain_system,
    referential_system,
    sharded_topology_system,
    topology_system,
)

__all__ = [
    "example1_system", "example1_query", "example2_rewritten_text",
    "section31_dec", "section31_instance", "section31_system",
    "appendix_instance", "example4_system",
    "conflict_chain_system", "import_star_system", "referential_system",
    "peer_chain_system", "topology_system",
    "sharded_topology_system", "bulk_relation_system",
]
