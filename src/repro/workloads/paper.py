"""The paper's worked examples as reusable fixtures.

Every instance, DEC, and trust edge below is transcribed from the paper;
tests, examples, and benchmarks all build on these functions so the
expected outputs (solutions, PCAs, stable models) live in exactly one
place: the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datalog.terms import Variable
from ..relational.constraints import (
    EqualityGeneratingConstraint,
    InclusionDependency,
    TupleGeneratingConstraint,
)
from ..relational.instance import DatabaseInstance
from ..relational.query import Query, RelAtom
from ..relational.query_parser import parse_query
from ..relational.schema import DatabaseSchema
from ..core.system import PeerSystem

__all__ = [
    "example1_system",
    "example1_query",
    "example2_rewritten_text",
    "section31_dec",
    "section31_instance",
    "section31_system",
    "appendix_instance",
    "example4_system",
]

_X, _Y, _Z, _W = (Variable("X"), Variable("Y"), Variable("Z"),
                  Variable("W"))


def sigma_p1_p2() -> InclusionDependency:
    """Σ(P1,P2) = { ∀xy (R2(x,y) → R1(x,y)) } of Example 1."""
    return InclusionDependency("R2", "R1", child_arity=2, parent_arity=2,
                               name="sigma_p1_p2")


def sigma_p1_p3() -> EqualityGeneratingConstraint:
    """Σ(P1,P3) = { ∀xyz (R1(x,y) ∧ R3(x,z) → y = z) } of Example 1."""
    return EqualityGeneratingConstraint(
        antecedent=[RelAtom("R1", [_X, _Y]), RelAtom("R3", [_X, _Z])],
        equalities=[(_Y, _Z)], name="sigma_p1_p3")


def example1_system(r1: Optional[Sequence[tuple]] = None,
                    r2: Optional[Sequence[tuple]] = None,
                    r3: Optional[Sequence[tuple]] = None) -> PeerSystem:
    """The three-peer system of Example 1 (instances overridable).

    Defaults: r1 = {R1(a,b), R1(s,t)}, r2 = {R2(c,d), R2(a,e)},
    r3 = {R3(a,f), R3(s,u)}; trust = {(P1,less,P2), (P1,same,P3)}.
    """
    r1 = [("a", "b"), ("s", "t")] if r1 is None else r1
    r2 = [("c", "d"), ("a", "e")] if r2 is None else r2
    r3 = [("a", "f"), ("s", "u")] if r3 is None else r3
    return (PeerSystem.builder()
            .peer("P1", {"R1": 2}, instance={"R1": r1})
            .peer("P2", {"R2": 2}, instance={"R2": r2})
            .peer("P3", {"R3": 2}, instance={"R3": r3})
            .exchange("P1", "P2", sigma_p1_p2())
            .exchange("P1", "P3", sigma_p1_p3())
            .trust("P1", "less", "P2")
            .trust("P1", "same", "P3")
            .build())


def example1_query() -> Query:
    """Q : R1(x, y) — the query of Example 2."""
    return parse_query("q(X, Y) := R1(X, Y)")


def example2_rewritten_text() -> str:
    """Formula (1) of Example 2, verbatim (see DESIGN.md on the refined
    protection the library's rewriter emits instead)."""
    return ("(R1(X, Y) & forall Z1 ((R3(X, Z1) & ~exists Z2 R2(X, Z2)) "
            "-> Z1 = Y)) | R2(X, Y)")


def section31_dec() -> TupleGeneratingConstraint:
    """DEC (3): ∀xyz∃w (R1(x,y) ∧ S1(z,y) → R2(x,w) ∧ S2(z,w))."""
    return TupleGeneratingConstraint(
        antecedent=[RelAtom("R1", [_X, _Y]), RelAtom("S1", [_Z, _Y])],
        consequent=[RelAtom("R2", [_X, _W]), RelAtom("S2", [_Z, _W])],
        name="dec3")


def section31_schema() -> DatabaseSchema:
    return DatabaseSchema.of({"R1": 2, "R2": 2, "S1": 2, "S2": 2})


def appendix_instance() -> DatabaseInstance:
    """The Appendix instances: r1={(a,b)}, s1={(c,b)}, r2={},
    s2={(c,e),(c,f)}."""
    return DatabaseInstance(section31_schema(), {
        "R1": [("a", "b")],
        "S1": [("c", "b")],
        "S2": [("c", "e"), ("c", "f")],
    })


def section31_instance() -> DatabaseInstance:
    """Alias — Section 3.1 is evaluated on the Appendix instances."""
    return appendix_instance()


def section31_system(r1: Optional[Sequence[tuple]] = None,
                     s1: Optional[Sequence[tuple]] = None,
                     r2: Optional[Sequence[tuple]] = None,
                     s2: Optional[Sequence[tuple]] = None) -> PeerSystem:
    """The two-peer system of Section 3.1 with (P, less, Q)."""
    r1 = [("a", "b")] if r1 is None else r1
    s1 = [("c", "b")] if s1 is None else s1
    r2 = [] if r2 is None else r2
    s2 = [("c", "e"), ("c", "f")] if s2 is None else s2
    return (PeerSystem.builder()
            .peer("P", {"R1": 2, "R2": 2}, instance={"R1": r1, "R2": r2})
            .peer("Q", {"S1": 2, "S2": 2}, instance={"S1": s1, "S2": s2})
            .exchange("P", "Q", section31_dec())
            .trust("P", "less", "Q")
            .build())


def example4_system() -> PeerSystem:
    """Example 4: P —(3)→ Q —(U⊆S1)→ C, all `less` trust.

    Instances: r1={(a,b)}, s1={}, r2={}, s2={(c,e),(c,f)}, u={(c,b)}.
    """
    sigma_qc = InclusionDependency("U", "S1", child_arity=2,
                                   parent_arity=2, name="sigma_qc")
    return (PeerSystem.builder()
            .peer("P", {"R1": 2, "R2": 2},
                  instance={"R1": [("a", "b")]})
            .peer("Q", {"S1": 2, "S2": 2},
                  instance={"S2": [("c", "e"), ("c", "f")]})
            .peer("C", {"U": 2}, instance={"U": [("c", "b")]})
            .exchange("P", "Q", section31_dec())
            .exchange("Q", "C", sigma_qc)
            .trust("P", "less", "Q")
            .trust("Q", "less", "C")
            .build())
