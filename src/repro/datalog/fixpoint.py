"""Fixpoint computations over ground programs.

Provides the building blocks the stable-model solver and the fast
stratified path both rely on:

* :func:`least_model` — least Herbrand model of a definite ground program
  (single heads, no NAF), in linear time (Dowling–Gallier counters).
* :func:`gelfond_lifschitz_reduct` — the GL reduct of a ground program with
  respect to a candidate set of true atoms.
* :func:`is_minimal_model` — minimality check for models of positive
  disjunctive ground programs (the Σ/Π second level of the polynomial
  hierarchy lives here, as Section 3.2 of the paper notes).
* :func:`stratified_model` — perfect-model evaluation for ground normal
  programs given a stratification.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from .grounding import GroundProgram, GroundRule

__all__ = [
    "least_model",
    "gelfond_lifschitz_reduct",
    "satisfies_rule",
    "is_model",
    "is_minimal_model",
    "stratified_model",
]


def least_model(rules: Sequence[GroundRule]) -> set[int]:
    """Least model of a definite program (ignores constraints).

    Every rule must have exactly one head atom and an empty NAF body;
    denial constraints (empty head) are skipped — callers check them
    separately against the returned model.
    """
    remaining: list[int] = []
    rules_with_pos: dict[int, list[int]] = {}
    queue: deque[int] = deque()
    true: set[int] = set()

    for index, rule in enumerate(rules):
        if rule.is_constraint():
            remaining.append(-1)  # sentinel: never fires
            continue
        if rule.naf:
            raise ValueError("least_model requires a NAF-free program")
        if len(rule.head) != 1:
            raise ValueError("least_model requires single-head rules")
        remaining.append(len(rule.pos))
        if not rule.pos:
            queue.append(index)
        else:
            for atom in set(rule.pos):
                rules_with_pos.setdefault(atom, []).append(index)

    fired = [False] * len(rules)
    while queue:
        index = queue.popleft()
        if fired[index]:
            continue
        fired[index] = True
        head_atom = rules[index].head[0]
        if head_atom in true:
            continue
        true.add(head_atom)
        for watcher in rules_with_pos.get(head_atom, ()):
            # decrement once per distinct atom (pos was deduplicated by the
            # grounder, but stay robust to duplicates)
            remaining[watcher] -= 1
            if remaining[watcher] == 0:
                queue.append(watcher)
    return true


def gelfond_lifschitz_reduct(rules: Iterable[GroundRule],
                             candidate: set[int]) -> list[GroundRule]:
    """The GL reduct: drop rules whose NAF body intersects ``candidate``,
    strip the NAF body from the survivors."""
    reduct: list[GroundRule] = []
    for rule in rules:
        if any(atom in candidate for atom in rule.naf):
            continue
        if rule.naf:
            reduct.append(GroundRule(rule.head, rule.pos, ()))
        else:
            reduct.append(rule)
    return reduct


def satisfies_rule(rule: GroundRule, model: set[int]) -> bool:
    """Classical satisfaction of one ground rule by a set of true atoms."""
    body_true = (all(atom in model for atom in rule.pos)
                 and all(atom not in model for atom in rule.naf))
    if not body_true:
        return True
    return any(atom in model for atom in rule.head)


def is_model(rules: Iterable[GroundRule], candidate: set[int]) -> bool:
    """True when ``candidate`` classically satisfies every rule."""
    return all(satisfies_rule(rule, candidate) for rule in rules)


def is_minimal_model(rules: Sequence[GroundRule], model: set[int]) -> bool:
    """Check that no proper subset of ``model`` is also a model.

    ``rules`` must be positive (NAF-free); callers pass a GL reduct.  Atoms
    outside ``model`` are fixed false, so the search ranges over subsets of
    ``model`` only.  This is the co-NP check that makes disjunctive stable
    semantics Π^p_2 (paper Section 3.2); the search is a small DPLL with
    unit propagation.
    """
    # Reduce the rules to the sub-lattice below `model`; validate and check
    # modelhood on the way (a non-model is vacuously not a minimal model).
    reduced: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for rule in rules:
        if rule.naf:
            raise ValueError("is_minimal_model requires a positive program")
        if any(atom not in model for atom in rule.pos):
            continue  # body can never be fully true below `model`
        head_in = tuple(atom for atom in rule.head if atom in model)
        if not head_in:
            return False  # body true in `model` but head entirely false
        reduced.append((head_in, rule.pos))
    if not model:
        return True

    atoms = sorted(model)
    # assignment: None unknown, True, False (mapped over `atoms` indices)
    position = {atom: i for i, atom in enumerate(atoms)}

    def search(assignment: list[Optional[bool]]) -> bool:
        """True if a model strictly below `model` exists."""
        changed = True
        while changed:
            changed = False
            for head, pos in reduced:
                body_states = [assignment[position[a]] for a in pos]
                if any(s is False for s in body_states):
                    continue
                head_states = [assignment[position[a]] for a in head]
                if any(s is True for s in head_states):
                    continue
                if all(s is True for s in body_states):
                    unknown_heads = [a for a in head
                                     if assignment[position[a]] is None]
                    if not unknown_heads:
                        return False  # rule violated: dead branch
                    if len(unknown_heads) == 1:
                        assignment[position[unknown_heads[0]]] = True
                        changed = True
        if all(s is not None for s in assignment):
            return any(s is False for s in assignment)
        # Branch on an unknown atom; try False first to reach proper
        # subsets quickly.
        index = next(i for i, s in enumerate(assignment) if s is None)
        for value in (False, True):
            trial = list(assignment)
            trial[index] = value
            if search(trial):
                return True
        return False

    return not search([None] * len(atoms))


def stratified_model(ground: GroundProgram,
                     strata_of_atom: Sequence[int]) -> Optional[set[int]]:
    """Perfect model of a stratified ground normal program.

    ``strata_of_atom[atom_id]`` gives the stratum of each atom (derived from
    the predicate-level stratification).  Returns ``None`` when a denial
    constraint is violated.  Disjunctive rules are rejected.
    """
    if ground.is_disjunctive():
        raise ValueError("stratified evaluation requires a normal program")
    max_stratum = max(strata_of_atom, default=0)
    by_stratum: dict[int, list[GroundRule]] = {}
    constraints: list[GroundRule] = []
    for rule in ground.rules:
        if rule.is_constraint():
            constraints.append(rule)
            continue
        by_stratum.setdefault(strata_of_atom[rule.head[0]], []).append(rule)

    true: set[int] = set()
    for stratum in range(max_stratum + 1):
        rules = by_stratum.get(stratum, ())
        # NAF atoms of these rules are in strictly lower strata: decided.
        definite: list[GroundRule] = []
        for rule in rules:
            if any(atom in true for atom in rule.naf):
                continue
            definite.append(GroundRule(rule.head, rule.pos, ()))
        # Seed with already-true atoms by adding them as facts.
        seeded = definite + [GroundRule((atom,), (), ()) for atom in true]
        true = least_model(seeded)
    for constraint in constraints:
        if not satisfies_rule(constraint, true):
            return None
    return true
