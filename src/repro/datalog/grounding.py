"""Relevant (intelligent) grounding of safe programs.

The grounder computes an over-approximation ``possible`` of the objective
literals derivable in *any* answer set (ignoring negation-as-failure and
treating every disjunct of a head as derivable), then instantiates rules so
that

* every positive body literal ranges only over ``possible``,
* comparisons are evaluated and eliminated,
* NAF literals whose atom is not in ``possible`` are removed (they are
  certainly true), and
* the resulting ground program is represented over dense integer atom ids
  for the solver.

Choice goals must be unfolded (see :mod:`repro.datalog.choice`) before
grounding; the grounder refuses programs that still contain them.

The fixpoint loop is semi-naive: each round only re-evaluates rule bodies in
ways that touch at least one atom discovered in the previous round.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..relational.indexes import TupleIndex
from .errors import GroundingError
from .graphs import objective_key
from .program import Program, Rule
from .terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Term,
    Variable,
)
from .unify import Substitution

__all__ = ["AtomTable", "GroundRule", "GroundProgram", "ground_program"]


class AtomTable:
    """Bidirectional map between ground objective literals and dense ids."""

    __slots__ = ("_by_id", "_by_literal")

    def __init__(self) -> None:
        self._by_id: list[Literal] = []
        self._by_literal: dict[Literal, int] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def add(self, literal: Literal) -> int:
        """Intern ``literal`` (objective, ground) and return its id."""
        existing = self._by_literal.get(literal)
        if existing is not None:
            return existing
        if literal.naf:
            raise ValueError("atom table holds objective literals only")
        new_id = len(self._by_id)
        self._by_id.append(literal)
        self._by_literal[literal] = new_id
        return new_id

    def id_for(self, literal: Literal) -> Optional[int]:
        return self._by_literal.get(literal)

    def literal_for(self, atom_id: int) -> Literal:
        return self._by_id[atom_id]

    def literals(self) -> tuple[Literal, ...]:
        return tuple(self._by_id)

    def complement_pairs(self) -> list[tuple[int, int]]:
        """Pairs ``(id(p(t)), id(-p(t)))`` present in the table."""
        pairs = []
        for literal, ident in self._by_literal.items():
            if literal.positive:
                continue
            complement = self._by_literal.get(Literal(literal.atom, True))
            if complement is not None:
                pairs.append((complement, ident))
        return pairs


class GroundRule:
    """A ground rule over atom ids.

    ``head`` empty means a denial constraint.  ``pos``/``naf`` are the ids of
    the positive and NAF body literals respectively (comparisons are already
    evaluated away by the grounder).
    """

    __slots__ = ("head", "pos", "naf", "_hash")

    def __init__(self, head: tuple[int, ...], pos: tuple[int, ...],
                 naf: tuple[int, ...]) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "pos", pos)
        object.__setattr__(self, "naf", naf)
        object.__setattr__(self, "_hash", hash((head, pos, naf)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GroundRule is immutable")

    def is_constraint(self) -> bool:
        return not self.head

    def is_fact(self) -> bool:
        return len(self.head) == 1 and not self.pos and not self.naf

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, GroundRule) and self.head == other.head
                and self.pos == other.pos and self.naf == other.naf)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"GroundRule(head={self.head}, pos={self.pos}, naf={self.naf})"


class GroundProgram:
    """A fully ground program over an :class:`AtomTable`."""

    __slots__ = ("table", "rules")

    def __init__(self, table: AtomTable, rules: list[GroundRule]) -> None:
        self.table = table
        self.rules = rules

    @property
    def atom_count(self) -> int:
        return len(self.table)

    def is_disjunctive(self) -> bool:
        return any(len(r.head) > 1 for r in self.rules)

    def pretty(self) -> str:
        """Human-readable listing (sorted; for debugging and golden tests)."""
        lines = []
        for rule in self.rules:
            head = " v ".join(str(self.table.literal_for(h))
                              for h in rule.head)
            body_parts = [str(self.table.literal_for(b)) for b in rule.pos]
            body_parts += [f"not {self.table.literal_for(b)}"
                           for b in rule.naf]
            if body_parts and head:
                lines.append(f"{head} :- {', '.join(body_parts)}.")
            elif head:
                lines.append(f"{head}.")
            else:
                lines.append(f":- {', '.join(body_parts)}.")
        return "\n".join(sorted(lines))


# ---------------------------------------------------------------------------
# Possible-set computation and rule instantiation
# ---------------------------------------------------------------------------

class _PossibleSet:
    """The over-approximation of derivable literals, per objective key.

    Each predicate's ground tuples live in a shared
    :class:`~repro.relational.indexes.TupleIndex` — the same lazy,
    incrementally-maintained per-column hash indexes the relational
    evaluation planner uses — so bound-column lookups during rule
    instantiation are exact bucket probes, not relation scans.
    """

    __slots__ = ("relations",)

    def __init__(self) -> None:
        self.relations: dict[str, TupleIndex] = {}

    def add(self, key: str, values: tuple) -> bool:
        relation = self.relations.get(key)
        if relation is None:
            relation = self.relations[key] = TupleIndex()
        return relation.add(values)

    def contains(self, key: str, values: tuple) -> bool:
        relation = self.relations.get(key)
        return relation is not None and values in relation

    def relation(self, key: str) -> Optional[TupleIndex]:
        return self.relations.get(key)


def _literal_values(literal: Literal) -> tuple:
    return tuple(literal.atom.args)


def _seed_substitution(rule: Rule) -> tuple[dict[Variable, Constant],
                                            list[Comparison]]:
    """Extract variable bindings from ``=``-to-constant comparisons.

    Returns the seed substitution plus the comparisons that still need
    runtime evaluation.  Iterates to a fixpoint so chains like
    ``X = a, Y = X`` resolve fully.
    """
    seed: dict[Variable, Constant] = {}
    pending = list(rule.comparisons())
    changed = True
    while changed:
        changed = False
        remaining: list[Comparison] = []
        for comparison in pending:
            if comparison.op != "=":
                remaining.append(comparison)
                continue
            left = seed.get(comparison.left, comparison.left) \
                if isinstance(comparison.left, Variable) else comparison.left
            right = seed.get(comparison.right, comparison.right) \
                if isinstance(comparison.right, Variable) \
                else comparison.right
            if isinstance(left, Variable) and isinstance(right, Constant):
                seed[left] = right
                changed = True
            elif isinstance(right, Variable) and isinstance(left, Constant):
                seed[right] = left
                changed = True
            else:
                remaining.append(comparison)
        pending = remaining
    return seed, pending


def _order_positive_body(rule: Rule) -> list[Literal]:
    """Greedy join order: literals sharing variables with earlier ones first."""
    remaining = list(rule.positive_body())
    if len(remaining) <= 1:
        return remaining
    ordered: list[Literal] = []
    bound: set[Variable] = set()
    while remaining:
        def score(lit: Literal) -> tuple[int, int]:
            vars_ = lit.variables()
            return (-len(vars_ & bound), len(vars_ - bound))
        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


class _RuleGrounder:
    """Instantiation engine for one rule against a possible set."""

    def __init__(self, rule: Rule) -> None:
        rule.check_safety()
        if rule.choice_goal() is not None:
            raise GroundingError(
                f"choice goal must be unfolded before grounding: {rule}")
        self.rule = rule
        self.seed, self.residual_comparisons = _seed_substitution(rule)
        self.ordered_body = _order_positive_body(rule)

    def substitutions(self, possible: _PossibleSet,
                      delta: Optional[dict[str, set[tuple]]] = None
                      ) -> Iterator[dict[Variable, Constant]]:
        """All substitutions making the positive body hold in ``possible``.

        When ``delta`` is given, only substitutions where at least one body
        literal matches a delta tuple are produced (semi-naive evaluation).
        """
        if delta is None:
            yield from self._join(0, dict(self.seed), possible, None, -1)
            return
        for pivot in range(len(self.ordered_body)):
            key = objective_key(self.ordered_body[pivot])
            if key not in delta or not delta[key]:
                continue
            yield from self._join(0, dict(self.seed), possible, delta, pivot)
        if not self.ordered_body:
            return

    def _join(self, position: int, subst: dict[Variable, Constant],
              possible: _PossibleSet, delta: Optional[dict[str, set[tuple]]],
              pivot: int) -> Iterator[dict[Variable, Constant]]:
        if position == len(self.ordered_body):
            if self._comparisons_hold(subst):
                yield subst
            return
        literal = self.ordered_body[position]
        key = objective_key(literal)
        pattern = _literal_values(literal)
        bound: dict[int, Constant] = {}
        for idx, term in enumerate(pattern):
            if isinstance(term, Constant):
                bound[idx] = term
            elif isinstance(term, Variable) and term in subst:
                bound[idx] = subst[term]
        if position == pivot:
            assert delta is not None
            source: Iterator[tuple] = iter(delta.get(key, ()))
        else:
            relation = possible.relation(key)
            if relation is None:
                return
            # exact index probe on every bound column (snapshot list:
            # the fixpoint may derive into this relation mid-scan)
            source = relation.matching(bound)
        for values in source:
            extended = self._match(pattern, values, subst)
            if extended is not None:
                yield from self._join(position + 1, extended, possible,
                                      delta, pivot)

    @staticmethod
    def _match(pattern: tuple, values: tuple,
               subst: dict[Variable, Constant]
               ) -> Optional[dict[Variable, Constant]]:
        if len(pattern) != len(values):
            return None
        extended: Optional[dict[Variable, Constant]] = None
        for pat, val in zip(pattern, values):
            if isinstance(pat, Constant):
                if pat != val:
                    return None
                continue
            assert isinstance(pat, Variable)
            current = (extended or subst).get(pat)
            if current is None:
                if extended is None:
                    extended = dict(subst)
                extended[pat] = val
            elif current != val:
                return None
        return extended if extended is not None else dict(subst)

    def _comparisons_hold(self, subst: Substitution) -> bool:
        for comparison in self.residual_comparisons:
            left = comparison.left
            right = comparison.right
            if isinstance(left, Variable):
                left = subst.get(left, left)
            if isinstance(right, Variable):
                right = subst.get(right, right)
            grounded = Comparison(comparison.op, left, right)
            if not grounded.is_ground():
                raise GroundingError(
                    f"comparison {comparison} not bound in rule {self.rule}")
            if not grounded.evaluate():
                return False
        return True


def _instantiate(term_args: tuple[Term, ...],
                 subst: Substitution) -> Optional[tuple]:
    values = []
    for term in term_args:
        if isinstance(term, Constant):
            values.append(term)
        else:
            assert isinstance(term, Variable)
            value = subst.get(term)
            if value is None:
                return None
            values.append(value)
    return tuple(values)


def ground_program(program: Program, *,
                   max_atoms: int = 2_000_000) -> GroundProgram:
    """Ground ``program`` into a :class:`GroundProgram`.

    Raises :class:`GroundingError` if the program contains choice goals,
    unsafe rules, or exceeds ``max_atoms`` interned ground literals.
    """
    if program.has_choice():
        raise GroundingError(
            "program contains choice goals; unfold them first "
            "(repro.datalog.choice.unfold_choice)")
    grounders = [_RuleGrounder(rule) for rule in program]

    # Pass 1: possible-set fixpoint (semi-naive).
    possible = _PossibleSet()
    delta: dict[str, set[tuple]] = {}

    def derive(key: str, values: tuple,
               next_delta: dict[str, set[tuple]]) -> None:
        if possible.add(key, values):
            next_delta.setdefault(key, set()).add(values)

    # Round 0: every rule evaluated naively (facts, bodyless rules, and
    # rules over the initially empty set).
    round_delta: dict[str, set[tuple]] = {}
    for grounder in grounders:
        if grounder.rule.is_constraint():
            continue
        for subst in grounder.substitutions(possible):
            for head_literal in grounder.rule.head:
                values = _instantiate(head_literal.atom.args, subst)
                if values is None:
                    raise GroundingError(
                        f"unbound head variable in rule {grounder.rule}")
                derive(objective_key(head_literal), values, round_delta)
    delta = round_delta
    total_atoms = sum(len(rel) for rel in possible.relations.values())
    while delta:
        if total_atoms > max_atoms:
            raise GroundingError(
                f"grounding exceeded {max_atoms} atoms; "
                "the program may be unintentionally large")
        next_delta: dict[str, set[tuple]] = {}
        for grounder in grounders:
            rule = grounder.rule
            if rule.is_constraint() or not rule.positive_body():
                continue
            for subst in grounder.substitutions(possible, delta):
                for head_literal in rule.head:
                    values = _instantiate(head_literal.atom.args, subst)
                    if values is None:
                        raise GroundingError(
                            f"unbound head variable in rule {rule}")
                    derive(objective_key(head_literal), values, next_delta)
        total_atoms += sum(len(v) for v in next_delta.values())
        delta = next_delta

    # Pass 2: instantiate rules over the final possible set.
    table = AtomTable()

    def intern(literal_template: Literal, subst: Substitution
               ) -> Optional[int]:
        values = _instantiate(literal_template.atom.args, subst)
        if values is None:
            return None
        atom = Atom(literal_template.atom.predicate, values)
        return table.add(Literal(atom, literal_template.positive))

    rules: dict[GroundRule, None] = {}
    for grounder in grounders:
        rule = grounder.rule
        for subst in grounder.substitutions(possible):
            head_ids = []
            for head_literal in rule.head:
                ident = intern(head_literal, subst)
                assert ident is not None
                head_ids.append(ident)
            pos_ids = []
            for body_literal in rule.positive_body():
                ident = intern(body_literal, subst)
                assert ident is not None
                pos_ids.append(ident)
            naf_ids = []
            for body_literal in rule.naf_body():
                values = _instantiate(body_literal.atom.args, subst)
                if values is None:
                    raise GroundingError(
                        f"unbound NAF variable in rule {rule}")
                key = objective_key(body_literal)
                if not possible.contains(key, values):
                    continue  # atom never derivable: `not atom` is true
                atom = Atom(body_literal.atom.predicate, values)
                naf_ids.append(table.add(Literal(atom,
                                                 body_literal.positive)))
            pos_set = set(pos_ids)
            if pos_set & set(naf_ids):
                continue  # body requires both a and `not a`: never fires
            if set(head_ids) & pos_set:
                continue  # tautology (h :- h, ...): redundant for stability
            # dedupe head atoms (`a v a` is just `a`), preserving order
            ground_rule = GroundRule(tuple(dict.fromkeys(head_ids)),
                                     tuple(sorted(pos_set)),
                                     tuple(sorted(set(naf_ids))))
            rules.setdefault(ground_rule)
    return GroundProgram(table, list(rules))
