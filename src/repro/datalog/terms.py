"""Core term and literal types for the Datalog/ASP engine.

The vocabulary follows the paper's logic programs (Bertossi & Bravo 2004,
Section 3): *extended disjunctive logic programs*, i.e. rules with

* disjunctive heads of *objective literals* (atoms or classically negated
  atoms, written ``-p(...)``),
* bodies of objective literals, possibly under *negation as failure*
  (``not l``), plus comparison builtins (``=``, ``!=``, ``<``, ...), and
* the non-deterministic ``choice`` operator of Giannotti et al. [17].

Everything here is immutable and hashable, so terms and atoms can live in
sets and serve as dictionary keys — the grounder and the solver both rely on
that heavily.
"""

from __future__ import annotations

import re
from typing import Iterable, Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Atom",
    "Literal",
    "Comparison",
    "ChoiceGoal",
    "BodyItem",
    "make_constant",
    "format_value",
]

_IDENT_RE = re.compile(r"\A[a-z][A-Za-z0-9_]*\Z")


def format_value(value: object) -> str:
    """Render a Python constant value in program syntax.

    Integers render bare; identifier-like strings render bare; anything else
    is double-quoted with backslash escaping so that parsing round-trips.
    """
    if isinstance(value, bool):
        return '"true"' if value else '"false"'
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if _IDENT_RE.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


class Term:
    """Abstract base for :class:`Constant` and :class:`Variable`."""

    __slots__ = ()

    def is_ground(self) -> bool:
        raise NotImplementedError


class Constant(Term):
    """A ground term wrapping a Python value (``str`` or ``int``).

    Constants compare and hash by value, so ``Constant("a") == Constant("a")``.
    Mixed-type comparison in builtins orders ints before strings,
    deterministically.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        if isinstance(value, Constant):  # tolerate accidental re-wrapping
            value = value.value
        if not isinstance(value, (str, int)):
            raise TypeError(
                f"constants must be str or int, got {type(value).__name__}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    def is_ground(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return format_value(self.value)

    def sort_key(self) -> tuple:
        """A total order over constants: ints first, then strings."""
        if isinstance(self.value, int):
            return (0, self.value)
        return (1, self.value)


class Variable(Term):
    """A logical variable.  Named with a leading uppercase letter or ``_``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    def is_ground(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


def make_constant(value: object) -> Constant:
    """Coerce a raw Python value (or a Constant) into a :class:`Constant`."""
    return value if isinstance(value, Constant) else Constant(value)


def _coerce_term(term: object) -> Term:
    if isinstance(term, Term):
        return term
    return Constant(term)


class Atom:
    """An atom ``p(t1, ..., tn)`` over terms.

    ``args`` may be empty (propositional atoms).  Atoms do not carry negation;
    classical negation lives on :class:`Literal`.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, args: Iterable[object] = ()) -> None:
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        coerced = tuple(_coerce_term(a) for a in args)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", coerced)
        object.__setattr__(self, "_hash", hash((predicate, coerced)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def variables(self) -> set[Variable]:
        return {a for a in self.args if isinstance(a, Variable)}

    def value_tuple(self) -> tuple:
        """The tuple of raw Python values; only valid on ground atoms."""
        values = []
        for arg in self.args:
            if not isinstance(arg, Constant):
                raise ValueError(f"atom {self} is not ground")
            values.append(arg.value)
        return tuple(values)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Atom)
                and self.predicate == other.predicate
                and self.args == other.args)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


class Literal:
    """An objective literal, optionally under negation as failure.

    ``positive`` is the *classical* polarity: ``Literal(a, positive=False)``
    is ``-a`` in program syntax.  ``naf=True`` wraps the objective literal in
    negation as failure: ``not a`` / ``not -a``.  Heads only ever hold
    ``naf=False`` literals.
    """

    __slots__ = ("atom", "positive", "naf", "_hash")

    def __init__(self, atom: Atom, positive: bool = True,
                 naf: bool = False) -> None:
        if not isinstance(atom, Atom):
            raise TypeError("Literal wraps an Atom")
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "positive", bool(positive))
        object.__setattr__(self, "naf", bool(naf))
        object.__setattr__(self, "_hash",
                           hash((atom, bool(positive), bool(naf))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    def objective(self) -> "Literal":
        """This literal with the NAF wrapper stripped."""
        if not self.naf:
            return self
        return Literal(self.atom, self.positive, naf=False)

    def negated_naf(self) -> "Literal":
        """This literal with the NAF wrapper toggled."""
        return Literal(self.atom, self.positive, naf=not self.naf)

    def complement(self) -> "Literal":
        """The classical complement (``a`` <-> ``-a``), preserving NAF."""
        return Literal(self.atom, not self.positive, naf=self.naf)

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def variables(self) -> set[Variable]:
        return self.atom.variables()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Literal)
                and self.atom == other.atom
                and self.positive == other.positive
                and self.naf == other.naf)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (f"Literal({self.atom!r}, positive={self.positive}, "
                f"naf={self.naf})")

    def __str__(self) -> str:
        core = str(self.atom) if self.positive else f"-{self.atom}"
        return f"not {core}" if self.naf else core


_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class Comparison:
    """A builtin comparison between two terms (``X != Y``, ``X < 3``, ...).

    Evaluation uses a deterministic total order over mixed types (ints sort
    before strings) so that programs never crash on heterogeneous domains.
    """

    __slots__ = ("op", "left", "right", "_hash")

    def __init__(self, op: str, left: object, right: object) -> None:
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        lhs = _coerce_term(left)
        rhs = _coerce_term(right)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", lhs)
        object.__setattr__(self, "right", rhs)
        object.__setattr__(self, "_hash", hash((op, lhs, rhs)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Comparison is immutable")

    def is_ground(self) -> bool:
        return self.left.is_ground() and self.right.is_ground()

    def variables(self) -> set[Variable]:
        result = set()
        if isinstance(self.left, Variable):
            result.add(self.left)
        if isinstance(self.right, Variable):
            result.add(self.right)
        return result

    def evaluate(self) -> bool:
        """Evaluate a ground comparison.  Raises if not ground."""
        if not self.is_ground():
            raise ValueError(f"comparison {self} is not ground")
        assert isinstance(self.left, Constant)
        assert isinstance(self.right, Constant)
        lk = self.left.sort_key()
        rk = self.right.sort_key()
        if self.op == "=":
            return lk == rk
        if self.op == "!=":
            return lk != rk
        if self.op == "<":
            return lk < rk
        if self.op == "<=":
            return lk <= rk
        if self.op == ">":
            return lk > rk
        return lk >= rk

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Comparison) and self.op == other.op
                and self.left == other.left and self.right == other.right)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Comparison({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class ChoiceGoal:
    """The non-deterministic choice operator ``choice((X1,..),(Y1,..))``.

    Semantics (Giannotti et al. [17], as used in the paper's rule (9)): for
    each binding of the *domain* variables ``X1..Xn`` produced by the rest of
    the rule body, choose exactly one binding of the *chosen* variables
    ``Y1..Ym`` among those the body admits, i.e. the relation
    ``chosen(x̄, ȳ)`` is a function from domain values to chosen values.

    The grounder either handles this natively or unfolds it into the *stable
    version* with fresh ``chosen``/``diffchoice`` predicates (Section 3.2 of
    the paper); see :mod:`repro.datalog.choice`.
    """

    __slots__ = ("domain", "chosen", "_hash")

    def __init__(self, domain: Iterable[Variable],
                 chosen: Iterable[Variable]) -> None:
        dom = tuple(domain)
        cho = tuple(chosen)
        for v in dom + cho:
            if not isinstance(v, Variable):
                raise TypeError("choice goals range over variables")
        if not cho:
            raise ValueError("choice goal needs at least one chosen variable")
        overlap = set(dom) & set(cho)
        if overlap:
            names = ", ".join(sorted(v.name for v in overlap))
            raise ValueError(
                f"variables cannot be both domain and chosen: {names}")
        object.__setattr__(self, "domain", dom)
        object.__setattr__(self, "chosen", cho)
        object.__setattr__(self, "_hash", hash(("choice", dom, cho)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ChoiceGoal is immutable")

    def variables(self) -> set[Variable]:
        return set(self.domain) | set(self.chosen)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ChoiceGoal)
                and self.domain == other.domain
                and self.chosen == other.chosen)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ChoiceGoal({self.domain!r}, {self.chosen!r})"

    def __str__(self) -> str:
        dom = ", ".join(str(v) for v in self.domain)
        cho = ", ".join(str(v) for v in self.chosen)
        return f"choice(({dom}), ({cho}))"


BodyItem = Union[Literal, Comparison, ChoiceGoal]
