"""Rules, denial constraints, and programs.

A :class:`Rule` is a disjunctive extended rule

    ``h1 v ... v hk :- b1, ..., bm.``

where the ``hi`` are objective literals (atoms or classically negated atoms)
and the ``bj`` are objective literals under optional negation-as-failure,
comparison builtins, or at most one :class:`~repro.datalog.terms.ChoiceGoal`.
``k = 0`` makes the rule a *denial constraint* (``:- body``); ``m = 0`` with a
single ground head makes it a fact.

:class:`Program` is an immutable collection of rules with the derived
structure (predicate sets, safety validation) computed on construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from .errors import ProgramError, SafetyError
from .terms import (
    Atom,
    BodyItem,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Variable,
)

__all__ = ["Rule", "Program", "fact", "denial"]


def _as_head_literal(item: object) -> Literal:
    if isinstance(item, Literal):
        if item.naf:
            raise ProgramError(
                f"negation-as-failure cannot appear in a head: {item}")
        return item
    if isinstance(item, Atom):
        return Literal(item)
    raise TypeError(f"head items must be atoms or literals, got {item!r}")


def _as_body_item(item: object) -> BodyItem:
    if isinstance(item, (Literal, Comparison, ChoiceGoal)):
        return item
    if isinstance(item, Atom):
        return Literal(item)
    raise TypeError(
        f"body items must be literals, comparisons or choice goals, "
        f"got {item!r}")


class Rule:
    """A single disjunctive extended rule; immutable and hashable."""

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Iterable[object] = (),
                 body: Iterable[object] = ()) -> None:
        head_lits = tuple(_as_head_literal(h) for h in head)
        body_items = tuple(_as_body_item(b) for b in body)
        if not head_lits and not body_items:
            raise ProgramError("a rule needs a head or a body")
        choice_goals = [b for b in body_items if isinstance(b, ChoiceGoal)]
        if len(choice_goals) > 1:
            raise ProgramError("at most one choice goal per rule")
        object.__setattr__(self, "head", head_lits)
        object.__setattr__(self, "body", body_items)
        object.__setattr__(self, "_hash", hash((head_lits, body_items)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rule is immutable")

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    def is_constraint(self) -> bool:
        """True for denial constraints (empty head)."""
        return not self.head

    def is_fact(self) -> bool:
        """True for ground, positive-body-free single-head rules."""
        return (len(self.head) == 1 and not self.body
                and self.head[0].atom.is_ground())

    def is_disjunctive(self) -> bool:
        return len(self.head) > 1

    def choice_goal(self) -> Optional[ChoiceGoal]:
        for item in self.body:
            if isinstance(item, ChoiceGoal):
                return item
        return None

    def has_choice(self) -> bool:
        return self.choice_goal() is not None

    # ------------------------------------------------------------------
    # Variables / safety
    # ------------------------------------------------------------------
    def positive_body(self) -> tuple[Literal, ...]:
        """Non-NAF objective body literals."""
        return tuple(b for b in self.body
                     if isinstance(b, Literal) and not b.naf)

    def naf_body(self) -> tuple[Literal, ...]:
        """Body literals under negation-as-failure."""
        return tuple(b for b in self.body
                     if isinstance(b, Literal) and b.naf)

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(b for b in self.body if isinstance(b, Comparison))

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for lit in self.head:
            result |= lit.variables()
        for item in self.body:
            result |= item.variables()
        return result

    def safe_variables(self) -> set[Variable]:
        """Variables bound by a positive body literal or an `=`-to-constant.

        The grounder instantiates exactly these; all other variables make the
        rule unsafe.  An equality ``X = c`` (or ``c = X``) also binds ``X``,
        matching DLV behaviour.
        """
        bound: set[Variable] = set()
        for lit in self.positive_body():
            bound |= lit.variables()
        changed = True
        while changed:
            changed = False
            for cmp_item in self.comparisons():
                if cmp_item.op != "=":
                    continue
                left, right = cmp_item.left, cmp_item.right
                if isinstance(left, Variable) and left not in bound:
                    if isinstance(right, Constant) or right in bound:
                        bound.add(left)
                        changed = True
                if isinstance(right, Variable) and right not in bound:
                    if isinstance(left, Constant) or left in bound:
                        bound.add(right)
                        changed = True
        return bound

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` if the rule is unsafe."""
        unsafe = self.variables() - self.safe_variables()
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise SafetyError(f"unsafe variables {{{names}}} in rule: {self}")

    def is_ground(self) -> bool:
        return (all(lit.is_ground() for lit in self.head)
                and all(not isinstance(b, ChoiceGoal) and b.is_ground()
                        for b in self.body))

    # ------------------------------------------------------------------
    # Predicates mentioned
    # ------------------------------------------------------------------
    def head_predicates(self) -> set[str]:
        return {lit.predicate for lit in self.head}

    def body_predicates(self) -> set[str]:
        return {b.predicate for b in self.body if isinstance(b, Literal)}

    def predicates(self) -> set[str]:
        return self.head_predicates() | self.body_predicates()

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule) and self.head == other.head
                and self.body == other.body)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule(head={self.head!r}, body={self.body!r})"

    def __str__(self) -> str:
        head_text = " v ".join(str(lit) for lit in self.head)
        if not self.body:
            return f"{head_text}."
        body_text = ", ".join(str(b) for b in self.body)
        if not self.head:
            return f":- {body_text}."
        return f"{head_text} :- {body_text}."


def fact(predicate: str, *values: object) -> Rule:
    """Build a ground fact rule ``predicate(values...).``"""
    atom = Atom(predicate, values)
    if not atom.is_ground():
        raise ProgramError(f"facts must be ground: {atom}")
    return Rule(head=[atom])


def denial(body: Iterable[object]) -> Rule:
    """Build a denial constraint ``:- body.``"""
    return Rule(head=(), body=body)


class Program:
    """An immutable set of rules with cached structural metadata.

    Iteration order is deterministic (insertion order with duplicates
    removed), which keeps grounding, solving, and printed output stable
    across runs.
    """

    __slots__ = ("rules", "_facts", "_proper_rules", "_constraints")

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        seen: dict[Rule, None] = {}
        for rule in rules:
            if not isinstance(rule, Rule):
                raise TypeError(f"programs hold Rule objects, got {rule!r}")
            seen.setdefault(rule)
        ordered = tuple(seen)
        object.__setattr__(self, "rules", ordered)
        object.__setattr__(self, "_facts",
                           tuple(r for r in ordered if r.is_fact()))
        object.__setattr__(self, "_proper_rules",
                           tuple(r for r in ordered
                                 if not r.is_fact() and not r.is_constraint()))
        object.__setattr__(self, "_constraints",
                           tuple(r for r in ordered if r.is_constraint()))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Program is immutable")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def facts(self) -> tuple[Rule, ...]:
        return self._facts

    @property
    def proper_rules(self) -> tuple[Rule, ...]:
        return self._proper_rules

    @property
    def constraints(self) -> tuple[Rule, ...]:
        return self._constraints

    def fact_atoms(self) -> set[Atom]:
        """The positive ground atoms asserted as facts."""
        return {r.head[0].atom for r in self._facts if r.head[0].positive}

    def fact_literals(self) -> set[Literal]:
        return {r.head[0] for r in self._facts}

    # ------------------------------------------------------------------
    # Predicates and structure
    # ------------------------------------------------------------------
    def predicates(self) -> set[str]:
        result: set[str] = set()
        for rule in self.rules:
            result |= rule.predicates()
        return result

    def head_predicates(self) -> set[str]:
        result: set[str] = set()
        for rule in self.rules:
            result |= rule.head_predicates()
        return result

    def edb_predicates(self) -> set[str]:
        """Predicates that never occur in a proper rule head."""
        idb = set()
        for rule in self._proper_rules:
            idb |= rule.head_predicates()
        return self.predicates() - idb

    def constants(self) -> set[Constant]:
        result: set[Constant] = set()
        for rule in self.rules:
            for lit in rule.head:
                result |= {a for a in lit.atom.args if isinstance(a, Constant)}
            for item in rule.body:
                if isinstance(item, Literal):
                    result |= {a for a in item.atom.args
                               if isinstance(a, Constant)}
                elif isinstance(item, Comparison):
                    for side in (item.left, item.right):
                        if isinstance(side, Constant):
                            result.add(side)
        return result

    def has_disjunction(self) -> bool:
        return any(r.is_disjunctive() for r in self.rules)

    def has_choice(self) -> bool:
        return any(r.has_choice() for r in self.rules)

    def has_classical_negation(self) -> bool:
        for rule in self.rules:
            if any(not lit.positive for lit in rule.head):
                return True
            for item in rule.body:
                if isinstance(item, Literal) and not item.positive:
                    return True
        return False

    def check_safety(self) -> None:
        for rule in self.rules:
            rule.check_safety()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def extend(self, extra: Iterable[Rule]) -> "Program":
        """A new program with ``extra`` rules appended."""
        return Program(tuple(self.rules) + tuple(extra))

    def union(self, other: "Program") -> "Program":
        return self.extend(other.rules)

    def with_facts(self, atoms: Iterable[Atom]) -> "Program":
        """A new program with the given ground atoms appended as facts."""
        extra = []
        for atom in atoms:
            if not atom.is_ground():
                raise ProgramError(f"facts must be ground: {atom}")
            extra.append(Rule(head=[atom]))
        return self.extend(extra)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and set(self.rules) == set(
            other.rules)

    def __hash__(self) -> int:
        return hash(frozenset(self.rules))

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def pretty(self, *, sort: bool = False) -> str:
        """Program text; optionally sorted for stable golden-file tests."""
        lines = [str(r) for r in self.rules]
        if sort:
            lines.sort()
        return "\n".join(lines)
