"""Head-cycle-free optimisation: shifting disjunctive programs (Section 4.1).

A disjunctive rule ``h1 v ... v hk :- B`` is *shifted* into the ``k`` normal
rules ``hi :- B, not h1, ..., not h(i-1), not h(i+1), ..., not hk``.  For
head-cycle-free (HCF) programs the shifted program has exactly the same
answer sets (Ben-Eliyahu & Dechter [4]; Leone et al. [22]) — and normal
programs are strictly cheaper to solve (NP vs Σ^p_2 for deciding answer-set
existence), which is the optimisation the paper advocates.

:func:`shift_rule` reproduces the paper's Example 3 verbatim: choice goals
are retained in each shifted rule.  :func:`shift_program`, however, first
*unfolds* choice goals into their stable version and only then shifts — the
two shifted copies of a choice rule must share a single ``chosen``
predicate, exactly as in the Appendix, where the choice rule keeps one
``chosen(X,Z,W)``.  Unfolding each shifted copy separately would restrict
each ``chosen`` by the shift-added NAF literal and lose answer sets (see
``tests/paper/test_example3_hcf.py``).  The HCF *test* ignores choice
goals, implementing the proposition "a disjunctive choice program Π is HCF
when the program obtained from Π by removing its choice goals is HCF" [6].
"""

from __future__ import annotations

from .choice import unfold_choice
from .errors import ProgramError
from .graphs import is_head_cycle_free
from .program import Program, Rule
from .terms import ChoiceGoal, Literal

__all__ = ["can_shift", "shift_rule", "shift_program"]


def can_shift(program: Program) -> bool:
    """True when shifting is guaranteed to preserve the answer sets."""
    return is_head_cycle_free(program)


def shift_rule(rule: Rule) -> list[Rule]:
    """Shift one rule *syntactically*; non-disjunctive rules are returned
    unchanged.

    Choice goals are retained verbatim (the paper's Example 3 shape).
    NOTE: on choice rules this is a purely presentational transformation —
    to solve a shifted choice program, unfold the choice first and shift
    the unfolded rule instead (what :func:`shift_program` does), so both
    shifted copies share one ``chosen`` predicate.
    """
    if not rule.is_disjunctive():
        return [rule]
    shifted: list[Rule] = []
    for index, head_literal in enumerate(rule.head):
        extra: list[Literal] = []
        for j, other in enumerate(rule.head):
            if j == index:
                continue
            if other.naf:
                raise ProgramError("head literals cannot carry NAF")
            extra.append(other.negated_naf())
        shifted.append(Rule(head=[head_literal],
                            body=tuple(rule.body) + tuple(extra)))
    return shifted


def shift_program(program: Program, *, force: bool = False) -> Program:
    """Shift every disjunctive rule of an HCF program.

    Raises :class:`ProgramError` when the program is not HCF, unless
    ``force=True`` (useful for the ablation benchmark that measures what
    goes wrong — the shifted program may then admit extra answer sets).
    """
    if not program.has_disjunction():
        return program
    if not force and not can_shift(program):
        raise ProgramError(
            "program is not head-cycle-free; shifting would not preserve "
            "its answer sets (pass force=True to shift anyway)")
    # Unfold choice goals first so that the shifted copies of a choice
    # rule share a single `chosen` predicate (see module docstring).
    program = unfold_choice(program)
    rules: list[Rule] = []
    for rule in program:
        rules.extend(shift_rule(rule))
    return Program(rules)
