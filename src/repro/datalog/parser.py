"""Parser for a DLV-like textual program syntax.

Grammar (informal)::

    program     := (rule | comment)*
    rule        := head? (":-" body)? "."
    head        := headlit ("v" headlit)*
    headlit     := ["-"] atom
    body        := bodyitem ("," bodyitem)*
    bodyitem    := ["not"] ["-"] atom | term OP term | choice
    choice      := "choice" "(" "(" vars ")" "," "(" vars ")" ")"
    atom        := IDENT [ "(" term ("," term)* ")" ]
    term        := IDENT | VARIABLE | INTEGER | STRING
    OP          := "=" | "!=" | "<" | "<=" | ">" | ">="

Identifiers starting with a lowercase letter are constants/predicates;
identifiers starting with an uppercase letter or ``_`` are variables.
``%`` starts a line comment.  ``v`` is the disjunction keyword (as in DLV);
``|`` is accepted as a synonym.  Classical negation is a ``-`` prefix.

Examples from the paper parse directly, e.g. rule (6) of Section 3.1::

    -r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), not aux2(Z).

and the choice rule (9)::

    -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z),
                               s2(Z, W), choice((X, Z), (W)).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from .errors import ParseError
from .program import Program, Rule
from .terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Term,
    Variable,
)

__all__ = ["parse_program", "parse_rule", "parse_atom", "parse_body"]

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>%[^\n]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<INTEGER>-?\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<IMPL>:-)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<MINUS>-)
  | (?P<PIPE>\|)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}",
                             line=line, column=column)
        kind = match.lastgroup
        assert kind is not None
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            yield _Token(kind, value, line, pos - line_start + 1)
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.text if token else "end of input"
            line = token.line if token else None
            column = token.column if token else None
            raise ParseError(f"expected {kind}, found {found!r}",
                             line=line, column=column)
        return self._next()

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind and (
                text is None or token.text == text):
            return self._next()
        return None

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar productions -------------------------------------------
    def parse_program(self) -> Program:
        rules = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return Program(rules)

    def parse_rule(self) -> Rule:
        head: list[Literal] = []
        body: list = []
        if self._peek() is not None and self._peek().kind != "IMPL":
            head.append(self._parse_head_literal())
            while True:
                if self._accept("PIPE"):
                    head.append(self._parse_head_literal())
                    continue
                token = self._peek()
                if (token is not None and token.kind == "IDENT"
                        and token.text == "v"):
                    self._next()
                    head.append(self._parse_head_literal())
                    continue
                break
        if self._accept("IMPL"):
            body.append(self._parse_body_item())
            while self._accept("COMMA"):
                body.append(self._parse_body_item())
        self._expect("DOT")
        try:
            return Rule(head=head, body=body)
        except Exception as exc:  # ProgramError -> ParseError with location
            raise ParseError(str(exc)) from exc

    def _parse_head_literal(self) -> Literal:
        positive = not self._accept("MINUS")
        atom = self._parse_atom()
        return Literal(atom, positive=positive)

    def _parse_body_item(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "IDENT" and token.text == "not":
            self._next()
            positive = not self._accept("MINUS")
            atom = self._parse_atom()
            return Literal(atom, positive=positive, naf=True)
        if token.kind == "IDENT" and token.text == "choice":
            return self._parse_choice()
        if token.kind == "MINUS":
            self._next()
            atom = self._parse_atom()
            return Literal(atom, positive=False)
        # Either an atom or a comparison; parse a term first and look ahead.
        term = self._parse_term()
        op_token = self._peek()
        if op_token is not None and op_token.kind == "OP":
            self._next()
            right = self._parse_term()
            return Comparison(op_token.text, term, right)
        # Not a comparison: the term must have been a propositional atom or
        # the start of a normal atom.  Only constants name predicates.
        if isinstance(term, Constant) and isinstance(term.value, str):
            return Literal(self._finish_atom(term.value))
        raise ParseError(
            f"expected atom or comparison, found {op_token.text!r}"
            if op_token else "unexpected end of input",
            line=op_token.line if op_token else None,
            column=op_token.column if op_token else None)

    def _parse_choice(self) -> ChoiceGoal:
        self._expect("IDENT")  # the 'choice' keyword itself
        self._expect("LPAREN")
        self._expect("LPAREN")
        domain = self._parse_variable_list()
        self._expect("RPAREN")
        self._expect("COMMA")
        self._expect("LPAREN")
        chosen = self._parse_variable_list()
        self._expect("RPAREN")
        self._expect("RPAREN")
        try:
            return ChoiceGoal(domain, chosen)
        except ValueError as exc:
            raise ParseError(str(exc)) from exc

    def _parse_variable_list(self) -> list[Variable]:
        variables: list[Variable] = []
        token = self._peek()
        if token is not None and token.kind == "RPAREN":
            return variables
        while True:
            term = self._parse_term()
            if not isinstance(term, Variable):
                raise ParseError(f"choice arguments must be variables, "
                                 f"found {term}")
            variables.append(term)
            if not self._accept("COMMA"):
                return variables

    def _parse_atom(self) -> Atom:
        name_token = self._expect("IDENT")
        name = name_token.text
        if name in ("not", "choice", "v"):
            raise ParseError(f"{name!r} is a reserved word",
                             line=name_token.line, column=name_token.column)
        if name[0].isupper() or name[0] == "_":
            raise ParseError(f"predicate names start lowercase: {name!r}",
                             line=name_token.line, column=name_token.column)
        return self._finish_atom(name)

    def _finish_atom(self, name: str) -> Atom:
        if not self._accept("LPAREN"):
            return Atom(name)
        args = [self._parse_term()]
        while self._accept("COMMA"):
            args.append(self._parse_term())
        self._expect("RPAREN")
        return Atom(name, args)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "IDENT":
            if token.text in ("not", "choice"):
                raise ParseError(f"{token.text!r} is a reserved word",
                                 line=token.line, column=token.column)
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "INTEGER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            raw = token.text[1:-1]
            unescaped = raw.replace('\\"', '"').replace("\\\\", "\\")
            return Constant(unescaped)
        if token.kind == "MINUS":
            number = self._expect("INTEGER")
            return Constant(-int(number.text))
        raise ParseError(f"expected a term, found {token.text!r}",
                         line=token.line, column=token.column)


def parse_program(text: str) -> Program:
    """Parse full program text into a :class:`Program`."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must consume all input)."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise ParseError("trailing input after rule")
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"p(a, X)"``."""
    parser = _Parser(text)
    atom = parser._parse_atom()
    if not parser.at_end():
        raise ParseError("trailing input after atom")
    return atom


def parse_body(text: str) -> tuple:
    """Parse a comma-separated body, e.g. ``"p(X), not q(X), X != a"``."""
    parser = _Parser(text)
    items = [parser._parse_body_item()]
    while parser._accept("COMMA"):
        items.append(parser._parse_body_item())
    if not parser.at_end():
        raise ParseError("trailing input after body")
    return tuple(items)
