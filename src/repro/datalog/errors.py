"""Exception hierarchy for the Datalog/ASP engine.

All engine errors derive from :class:`DatalogError` so callers can catch a
single base class.  The distinct subclasses exist because callers react
differently to them: parse errors are user-input problems, safety errors are
program-construction problems, and solver errors indicate resource limits.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all errors raised by :mod:`repro.datalog`."""


class ParseError(DatalogError):
    """Raised when program text cannot be parsed.

    Attributes:
        line: 1-based line number of the offending token, when known.
        column: 1-based column number of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(DatalogError):
    """Raised when a rule is unsafe.

    A rule is *safe* when every variable occurring anywhere in the rule also
    occurs in a positive, non-builtin body literal.  Unsafe rules cannot be
    grounded over a finite relevant universe.
    """


class GroundingError(DatalogError):
    """Raised when grounding fails or would exceed configured limits."""


class SolverError(DatalogError):
    """Raised when answer-set search exceeds configured limits."""


class ProgramError(DatalogError):
    """Raised when a structurally invalid program is constructed.

    Examples: a denial constraint with an empty body, a choice goal whose
    chosen variable does not occur in the rule, facts with variables.
    """
