"""The non-deterministic choice operator and its *stable version*.

The paper's rule (9) uses ``choice((x,z), w)`` — Giannotti et al.'s [17]
operator that, for each binding of the domain variables ``(x,z)`` admitted
by the rest of the rule body, non-deterministically selects exactly one
value for ``w`` among those the body admits.

Section 3.2 notes the operator "can be replaced by a predicate that can be
defined by means of extra rules, producing the so-called *stable version* of
the choice program", which "has a completely standard answer set semantics".
The Appendix shows the unfolding concretely::

    chosen(X,Z,W)     :- Body, not diffchoice(X,Z,W).
    diffchoice(X,Z,W) :- chosen(X,Z,U), Domain(W), U != W.

:func:`unfold_choice` performs that transformation for every choice rule in
a program: the choice goal in the original rule is replaced by a
``chosen_k`` literal, and the two defining rules are added.  The rule body
itself serves as the domain provider for the chosen variables, which
generalises the Appendix (where the single body atom binding ``W`` was used).

In every stable model of the unfolded program, ``chosen_k`` is a function
from domain-variable bindings to chosen-variable bindings — exactly the
choice semantics (tested in ``tests/datalog/test_choice.py``).
"""

from __future__ import annotations

from .program import Program, Rule
from .terms import Atom, ChoiceGoal, Comparison, Literal, Variable

__all__ = ["unfold_choice", "CHOSEN_PREFIX", "DIFFCHOICE_PREFIX"]

CHOSEN_PREFIX = "chosen"
DIFFCHOICE_PREFIX = "diffchoice"


def _fresh_name(base: str, used: set[str], index: int,
                multiple: bool) -> str:
    """Prefer the bare base name (matching the paper's Appendix) when there
    is a single choice rule and no clash; otherwise suffix with the index."""
    if not multiple and base not in used:
        return base
    candidate = f"{base}_{index}"
    while candidate in used:
        candidate += "_x"
    return candidate


def unfold_choice(program: Program) -> Program:
    """Replace every choice goal by its stable version.

    Returns a choice-free program with the same answer sets modulo the fresh
    ``chosen``/``diffchoice`` predicates.  Programs without choice goals are
    returned unchanged (same object).
    """
    if not program.has_choice():
        return program
    used = program.predicates()
    choice_rules = [r for r in program if r.has_choice()]
    multiple = len(choice_rules) > 1
    new_rules: list[Rule] = []
    counter = 0
    for rule in program:
        goal = rule.choice_goal()
        if goal is None:
            new_rules.append(rule)
            continue
        counter += 1
        chosen_name = _fresh_name(CHOSEN_PREFIX, used, counter, multiple)
        used.add(chosen_name)
        diff_name = _fresh_name(DIFFCHOICE_PREFIX, used, counter, multiple)
        used.add(diff_name)
        new_rules.extend(_stable_version(rule, goal, chosen_name, diff_name))
    return Program(new_rules)


def _stable_version(rule: Rule, goal: ChoiceGoal, chosen_name: str,
                    diff_name: str) -> list[Rule]:
    body_rest = tuple(item for item in rule.body
                      if not isinstance(item, ChoiceGoal))
    all_vars = goal.domain + goal.chosen
    chosen_atom = Atom(chosen_name, all_vars)
    diff_atom = Atom(diff_name, all_vars)

    rules: list[Rule] = []
    # Original rule, with the choice goal replaced by `chosen`.
    rules.append(Rule(head=rule.head,
                      body=body_rest + (Literal(chosen_atom),)))
    # chosen(x̄, ȳ) :- Body, not diffchoice(x̄, ȳ).
    rules.append(Rule(
        head=[chosen_atom],
        body=body_rest + (Literal(diff_atom, naf=True),)))
    # One diffchoice rule per chosen variable: ȳ differs from a previous
    # choice in that component.  The rule body re-binds ȳ (domain), while
    # `chosen` carries fresh variables ȳ'.
    rule_vars = {v.name for v in rule.variables()} | {v.name for v in
                                                      all_vars}
    for position, chosen_var in enumerate(goal.chosen):
        fresh = _fresh_variable(chosen_var, rule_vars)
        alt_args = list(goal.domain) + list(goal.chosen)
        alt_args[len(goal.domain) + position] = fresh
        rules.append(Rule(
            head=[diff_atom],
            body=body_rest + (
                Literal(Atom(chosen_name, tuple(alt_args))),
                Comparison("!=", fresh, chosen_var),
            )))
    return rules


def _fresh_variable(base: Variable, used_names: set[str]) -> Variable:
    candidate = f"{base.name}_prev"
    while candidate in used_names:
        candidate += "_x"
    used_names.add(candidate)
    return Variable(candidate)
