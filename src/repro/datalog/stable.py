"""Stable-model (answer-set) computation for ground programs.

The solver enumerates the answer sets of a ground disjunctive extended
program (classical negation is compiled to fresh predicates upstream; here
it only shows up as complement pairs that must not be jointly true).

Architecture — a small smodels-style branch-and-propagate search:

* **Unit propagation** with per-rule counters: body satisfied → head forced
  (or conflict for constraints); all heads false + body satisfied →
  conflict; atom with no remaining potentially-supporting rule → false;
  true atom with exactly one remaining support → that rule's body forced.
* **Unfounded-set pruning**: after unit propagation quiesces, compute the
  set of atoms still derivable given the current partial assignment; atoms
  outside it must be false (this catches positive loops).
* **Verification**: every total assignment is checked against the
  Gelfond–Lifschitz definition — least-model equality for normal programs,
  model-plus-minimality for disjunctive ones.  Propagation is sound (never
  prunes a stable model), so enumeration is complete; verification makes it
  exact regardless of propagation strength.

Head-cycle-free disjunctive programs should be *shifted* to normal programs
first (paper Section 4.1); :func:`shift_ground` implements the ground-level
shift and :class:`StableModelSolver` applies it automatically unless told
otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from .errors import SolverError
from .fixpoint import (
    gelfond_lifschitz_reduct,
    is_minimal_model,
    is_model,
    least_model,
)
from .grounding import GroundProgram, GroundRule
from .graphs import strongly_connected_components

__all__ = [
    "StableModelSolver",
    "stable_models",
    "is_stable_model",
    "shift_ground",
    "ground_head_cycle_free",
]

_UNKNOWN, _TRUE, _FALSE = 0, 1, 2


def is_stable_model(ground: GroundProgram, candidate: set[int]) -> bool:
    """Exact Gelfond–Lifschitz check of ``candidate`` against ``ground``."""
    for first, second in ground.table.complement_pairs():
        if first in candidate and second in candidate:
            return False
    if not is_model(ground.rules, candidate):
        return False
    reduct = gelfond_lifschitz_reduct(ground.rules, candidate)
    positive = [rule for rule in reduct if not rule.is_constraint()]
    if any(len(rule.head) > 1 for rule in positive):
        return is_minimal_model(positive, candidate)
    return least_model(positive) == candidate


def ground_head_cycle_free(ground: GroundProgram) -> bool:
    """Exact (atom-level) head-cycle-freedom of a ground program."""
    graph: dict[int, set[int]] = {i: set() for i in range(ground.atom_count)}
    for rule in ground.rules:
        for body_atom in rule.pos:
            graph[body_atom].update(rule.head)
    components = strongly_connected_components(graph)
    component_of: dict[int, int] = {}
    for number, component in enumerate(components):
        for atom in component:
            component_of[atom] = number
    for rule in ground.rules:
        if len(rule.head) <= 1:
            continue
        seen: dict[int, int] = {}
        for atom in rule.head:
            comp = component_of[atom]
            other = seen.get(comp)
            if other is not None and other != atom:
                return False
            seen[comp] = atom
    return True


def shift_ground(ground: GroundProgram) -> GroundProgram:
    """Shift disjunctive heads: ``h1 v h2 :- B`` becomes
    ``h1 :- B, not h2`` and ``h2 :- B, not h1``.

    Equivalence with the disjunctive program holds exactly for head-cycle-
    free programs (Ben-Eliyahu & Dechter [4]; paper Section 4.1).
    """
    rules: dict[GroundRule, None] = {}
    for rule in ground.rules:
        if len(rule.head) <= 1:
            rules.setdefault(rule)
            continue
        for index, head_atom in enumerate(rule.head):
            others = tuple(sorted(set(rule.head[:index])
                                  | set(rule.head[index + 1:])))
            rules.setdefault(GroundRule(
                (head_atom,), rule.pos,
                tuple(sorted(set(rule.naf) | set(others)))))
    return GroundProgram(ground.table, list(rules))


class StableModelSolver:
    """Enumerates answer sets of a ground program.

    Parameters:
        ground: the program to solve.
        shift_hcf: when True (default) and the program is disjunctive but
            ground-level head-cycle-free, solve the shifted normal program
            instead (identical answer sets, cheaper verification).
        max_models: stop after this many models (None = enumerate all).
        max_decisions: safety valve on branch decisions; raises
            :class:`SolverError` when exceeded.
    """

    def __init__(self, ground: GroundProgram, *, shift_hcf: bool = True,
                 max_models: Optional[int] = None,
                 max_decisions: int = 50_000_000) -> None:
        self._original = ground
        if shift_hcf and ground.is_disjunctive() \
                and ground_head_cycle_free(ground):
            ground = shift_ground(ground)
        self._ground = ground
        self._max_models = max_models
        self._max_decisions = max_decisions
        self._decisions = 0

        atom_count = ground.atom_count
        self._atom_count = atom_count
        self._rules = list(ground.rules)
        # Complement pairs behave like binary denial constraints.
        for first, second in ground.table.complement_pairs():
            self._rules.append(GroundRule((), (first, second), ()))

        self._rules_with_pos: list[list[int]] = [[] for _ in
                                                 range(atom_count)]
        self._rules_with_naf: list[list[int]] = [[] for _ in
                                                 range(atom_count)]
        self._rules_with_head: list[list[int]] = [[] for _ in
                                                  range(atom_count)]
        for index, rule in enumerate(self._rules):
            for atom in rule.pos:
                self._rules_with_pos[atom].append(index)
            for atom in rule.naf:
                self._rules_with_naf[atom].append(index)
            for atom in rule.head:
                self._rules_with_head[atom].append(index)

        # Static branching order: atoms occurring in NAF bodies first (they
        # control the reduct), then by descending occurrence count.
        occurrence = [0] * atom_count
        naf_weight = [0] * atom_count
        for rule in self._rules:
            for atom in rule.pos:
                occurrence[atom] += 1
            for atom in rule.naf:
                occurrence[atom] += 1
                naf_weight[atom] += 1
            for atom in rule.head:
                occurrence[atom] += 1
                if len(rule.head) > 1:
                    naf_weight[atom] += 1
        self._branch_order = sorted(
            range(atom_count),
            key=lambda a: (-naf_weight[a], -occurrence[a], a))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def models(self) -> Iterator[frozenset[int]]:
        """Yield answer sets as frozensets of true atom ids."""
        count = 0
        for model in self._search():
            yield model
            count += 1
            if self._max_models is not None and count >= self._max_models:
                return

    def solve(self) -> list[frozenset[int]]:
        """All answer sets, in a deterministic order."""
        return sorted(self.models(), key=lambda m: sorted(m))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _initial_state(self) -> Optional[tuple[list[int], list[int],
                                               list[bool], list[int],
                                               list[int]]]:
        value = [_UNKNOWN] * self._atom_count
        remaining = []   # body literals not yet definitely satisfied
        blocked = []     # some body literal definitely unsatisfiable
        head_false = []  # head atoms currently false
        for rule in self._rules:
            remaining.append(len(rule.pos) + len(rule.naf))
            blocked.append(False)
            head_false.append(0)
        support = [len(self._rules_with_head[a])
                   for a in range(self._atom_count)]
        return value, remaining, blocked, head_false, support

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _assign(self, state, atom: int, val: int,
                queue: deque[int]) -> bool:
        value = state[0]
        if value[atom] == val:
            return True
        if value[atom] != _UNKNOWN:
            return False
        value[atom] = val
        queue.append(atom)
        return True

    def _propagate(self, state, queue: deque[int]) -> bool:
        value, remaining, blocked, head_false, support = state
        while True:
            while queue:
                atom = queue.popleft()
                val = value[atom]
                if val == _TRUE:
                    ok = self._on_true(state, atom, queue)
                else:
                    ok = self._on_false(state, atom, queue)
                if not ok:
                    return False
            if not self._unfounded_check(state, queue):
                return False
            if not queue:
                return True

    def _block_rule(self, state, rule_index: int, queue: deque[int]) -> bool:
        value, remaining, blocked, head_false, support = state
        if blocked[rule_index]:
            return True
        blocked[rule_index] = True
        for head_atom in self._rules[rule_index].head:
            support[head_atom] -= 1
            if support[head_atom] == 0:
                if value[head_atom] == _TRUE:
                    return False
                if value[head_atom] == _UNKNOWN:
                    if not self._assign(state, head_atom, _FALSE, queue):
                        return False
            elif support[head_atom] == 1 and value[head_atom] == _TRUE:
                if not self._force_single_support(state, head_atom, queue):
                    return False
        return True

    def _body_satisfied_consequences(self, state, rule_index: int,
                                     queue: deque[int]) -> bool:
        """Called when a rule's body became fully satisfied."""
        value, remaining, blocked, head_false, support = state
        rule = self._rules[rule_index]
        if not rule.head:
            return False  # denial constraint fires
        non_false = [a for a in rule.head if value[a] != _FALSE]
        if not non_false:
            return False
        if len(non_false) == 1 and value[non_false[0]] == _UNKNOWN:
            return self._assign(state, non_false[0], _TRUE, queue)
        return True

    def _recheck_head(self, state, rule_index: int,
                      queue: deque[int]) -> bool:
        value, remaining, blocked, head_false, support = state
        if blocked[rule_index] or remaining[rule_index] != 0:
            return True
        return self._body_satisfied_consequences(state, rule_index, queue)

    def _force_single_support(self, state, atom: int,
                              queue: deque[int]) -> bool:
        """`atom` is true with exactly one unblocked candidate support: the
        body of that rule must be fully satisfied."""
        value, remaining, blocked, head_false, support = state
        the_rule = None
        for rule_index in self._rules_with_head[atom]:
            if not blocked[rule_index]:
                the_rule = rule_index
                break
        if the_rule is None:
            return False
        rule = self._rules[the_rule]
        for pos_atom in rule.pos:
            if not self._assign_or_check(state, pos_atom, _TRUE, queue):
                return False
        for naf_atom in rule.naf:
            if not self._assign_or_check(state, naf_atom, _FALSE, queue):
                return False
        return True

    def _assign_or_check(self, state, atom: int, val: int,
                         queue: deque[int]) -> bool:
        value = state[0]
        if value[atom] == val:
            return True
        if value[atom] != _UNKNOWN:
            return False
        return self._assign(state, atom, val, queue)

    def _on_true(self, state, atom: int, queue: deque[int]) -> bool:
        value, remaining, blocked, head_false, support = state
        # Rules with `atom` positive in the body: one step closer to firing.
        for rule_index in self._rules_with_pos[atom]:
            remaining[rule_index] -= 1
            if remaining[rule_index] == 0 and not blocked[rule_index]:
                if not self._body_satisfied_consequences(state, rule_index,
                                                         queue):
                    return False
        # Rules with `not atom` in the body are now blocked.
        for rule_index in self._rules_with_naf[atom]:
            if not self._block_rule(state, rule_index, queue):
                return False
        # Support requirement for `atom` itself.
        candidates = [r for r in self._rules_with_head[atom]
                      if not blocked[r]]
        if not candidates:
            return False
        if len(candidates) == 1:
            if not self._force_single_support(state, atom, queue):
                return False
        return True

    def _on_false(self, state, atom: int, queue: deque[int]) -> bool:
        value, remaining, blocked, head_false, support = state
        # Rules with `atom` positive in the body are blocked.
        for rule_index in self._rules_with_pos[atom]:
            if not self._block_rule(state, rule_index, queue):
                return False
        # Rules with `not atom`: one step closer to firing.
        for rule_index in self._rules_with_naf[atom]:
            remaining[rule_index] -= 1
            if remaining[rule_index] == 0 and not blocked[rule_index]:
                if not self._body_satisfied_consequences(state, rule_index,
                                                         queue):
                    return False
        # Rules with `atom` in the head may now force their last head atom.
        for rule_index in self._rules_with_head[atom]:
            head_false[rule_index] += 1
            if not self._recheck_head(state, rule_index, queue):
                return False
        return True

    def _unfounded_check(self, state, queue: deque[int]) -> bool:
        """Atoms not derivable under the current partial assignment must be
        false.  Returns False on conflict (a TRUE atom is underivable)."""
        value, remaining, blocked, head_false, support = state
        derivable = [False] * self._atom_count
        need = []
        bfs: deque[int] = deque()
        usable: list[bool] = []
        for index, rule in enumerate(self._rules):
            ok = bool(rule.head)
            if ok:
                for naf_atom in rule.naf:
                    if value[naf_atom] == _TRUE:
                        ok = False
                        break
            if ok:
                for pos_atom in rule.pos:
                    if value[pos_atom] == _FALSE:
                        ok = False
                        break
            usable.append(ok)
            need.append(len(set(rule.pos)) if ok else -1)
            if ok and need[index] == 0:
                bfs.append(index)
        watchers: dict[int, list[int]] = {}
        for index, rule in enumerate(self._rules):
            if usable[index]:
                for atom in set(rule.pos):
                    watchers.setdefault(atom, []).append(index)
        fired = [False] * len(self._rules)
        while bfs:
            index = bfs.popleft()
            if fired[index]:
                continue
            fired[index] = True
            for head_atom in self._rules[index].head:
                if value[head_atom] == _FALSE or derivable[head_atom]:
                    continue
                derivable[head_atom] = True
                for watcher in watchers.get(head_atom, ()):
                    need[watcher] -= 1
                    if need[watcher] == 0:
                        bfs.append(watcher)
        for atom in range(self._atom_count):
            if derivable[atom]:
                continue
            if value[atom] == _TRUE:
                return False
            if value[atom] == _UNKNOWN:
                if not self._assign(state, atom, _FALSE, queue):
                    return False
        return True

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _search(self) -> Iterator[frozenset[int]]:
        state = self._initial_state()
        value = state[0]
        queue: deque[int] = deque()
        # Initial propagation: atom with no support is false; bodyless
        # rules fire.
        for atom in range(self._atom_count):
            if state[4][atom] == 0:
                if not self._assign(state, atom, _FALSE, queue):
                    return
        for index, rule in enumerate(self._rules):
            if state[1][index] == 0 and not state[2][index]:
                if not self._body_satisfied_consequences(state, index,
                                                         queue):
                    return
        if not self._propagate(state, queue):
            return
        yield from self._dfs(state)

    def _clone(self, state):
        value, remaining, blocked, head_false, support = state
        return (list(value), list(remaining), list(blocked),
                list(head_false), list(support))

    def _dfs(self, state) -> Iterator[frozenset[int]]:
        value = state[0]
        branch_atom = -1
        for atom in self._branch_order:
            if value[atom] == _UNKNOWN:
                branch_atom = atom
                break
        if branch_atom == -1:
            candidate = {a for a in range(self._atom_count)
                         if value[a] == _TRUE}
            if self._verify(candidate):
                yield frozenset(candidate)
            return
        self._decisions += 1
        if self._decisions > self._max_decisions:
            raise SolverError(
                f"exceeded {self._max_decisions} branch decisions")
        for val in (_TRUE, _FALSE):
            child = self._clone(state)
            queue: deque[int] = deque()
            if not self._assign(child, branch_atom, val, queue):
                continue
            if not self._propagate(child, queue):
                continue
            yield from self._dfs(child)

    def _verify(self, candidate: set[int]) -> bool:
        # Verify against the *solved* program (shifted if shifting was
        # applied); shifting preserves answer sets exactly on HCF programs,
        # and we only shift those.
        rules = self._ground.rules
        for rule in self._rules[len(rules):]:
            # complement-pair constraints
            if all(atom in candidate for atom in rule.pos):
                return False
        if not is_model(rules, candidate):
            return False
        reduct = gelfond_lifschitz_reduct(rules, candidate)
        positive = [rule for rule in reduct if not rule.is_constraint()]
        if any(len(rule.head) > 1 for rule in positive):
            return is_minimal_model(positive, candidate)
        return least_model(positive) == candidate


def stable_models(ground: GroundProgram, *,
                  max_models: Optional[int] = None,
                  shift_hcf: bool = True) -> list[frozenset[int]]:
    """Convenience wrapper: all answer sets of ``ground``."""
    solver = StableModelSolver(ground, max_models=max_models,
                               shift_hcf=shift_hcf)
    return solver.solve()
