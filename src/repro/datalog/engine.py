"""High-level answer-set engine: program in, answer sets / query answers out.

This is the façade the rest of the library uses.  The pipeline is::

    program
      └─ unfold choice goals (stable version)           [choice.py]
      └─ shift disjunctive heads when HCF               [hcf.py]
      └─ ground                                         [grounding.py]
      └─ solve:
           stratified normal program  -> perfect model  [fixpoint.py]
           otherwise                  -> branch & bound [stable.py]

Skeptical (cautious) and brave query answering follow the paper's usage:
peer consistent answers are obtained by running a query program "under the
skeptical answer set semantics" (Section 3.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .choice import unfold_choice
from .fixpoint import stratified_model
from .graphs import objective_key, stratification
from .grounding import GroundProgram, ground_program
from .hcf import can_shift, shift_program
from .program import Program, Rule
from .stable import StableModelSolver
from .terms import Atom, Constant, Literal, Variable

__all__ = ["AnswerSetEngine", "answer_sets", "skeptical_answers",
           "brave_answers", "has_answer_set"]


class AnswerSetEngine:
    """Computes and caches the answer sets of one program.

    Parameters:
        program: the (possibly non-ground, disjunctive, choice-bearing)
            program.
        shift_hcf: shift disjunctive heads when the program is HCF
            (Section 4.1 optimisation).  Disable only for ablation studies.
        use_stratified_fast_path: evaluate stratified normal programs by
            iterated fixpoint instead of search.
        max_models: optional cap on the number of models computed.
    """

    def __init__(self, program: Program, *, shift_hcf: bool = True,
                 use_stratified_fast_path: bool = True,
                 max_models: Optional[int] = None) -> None:
        self.source_program = program
        self._max_models = max_models
        self._shift_hcf = shift_hcf
        self._use_stratified = use_stratified_fast_path

        prepared = unfold_choice(program)
        if shift_hcf and prepared.has_disjunction() and can_shift(prepared):
            prepared = shift_program(prepared)
        prepared.check_safety()
        self.prepared_program = prepared
        self._ground: Optional[GroundProgram] = None
        self._models: Optional[list[frozenset[Literal]]] = None

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundProgram:
        if self._ground is None:
            self._ground = ground_program(self.prepared_program)
        return self._ground

    def answer_sets(self) -> list[frozenset[Literal]]:
        """All answer sets, as frozensets of objective literals.

        Deterministic order (sorted by rendered literals) for stable output.
        """
        if self._models is not None:
            return self._models
        ground = self.ground
        id_models = self._solve_ids(ground)
        models = []
        for id_model in id_models:
            models.append(frozenset(ground.table.literal_for(i)
                                    for i in id_model))
        models.sort(key=lambda m: sorted(str(l) for l in m))
        self._models = models
        return models

    def _solve_ids(self, ground: GroundProgram) -> list[frozenset[int]]:
        if self._use_stratified and not ground.is_disjunctive():
            strata = stratification(self.prepared_program)
            if strata is not None:
                atom_strata = [
                    strata.get(objective_key(ground.table.literal_for(i)), 0)
                    for i in range(ground.atom_count)]
                model = stratified_model(ground, atom_strata)
                if model is None:
                    return []
                # Classical-negation consistency check.
                for first, second in ground.table.complement_pairs():
                    if first in model and second in model:
                        return []
                return [frozenset(model)]
        solver = StableModelSolver(ground, shift_hcf=self._shift_hcf,
                                   max_models=self._max_models)
        return solver.solve()

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """True when the program has at least one answer set."""
        return bool(self.answer_sets())

    def skeptical_answers(self, query: Atom) -> set[tuple]:
        """Value tuples for the query's variables true in *every* answer set.

        A program without answer sets yields no skeptical answers (the
        paper treats the absence of solutions as "no peer consistent
        answers can be certified"; callers may distinguish that case via
        :meth:`is_consistent`).
        """
        models = self.answer_sets()
        if not models:
            return set()
        per_model = [self._matches(model, query) for model in models]
        result = per_model[0]
        for matches in per_model[1:]:
            result &= matches
        return result

    def brave_answers(self, query: Atom) -> set[tuple]:
        """Value tuples true in *some* answer set."""
        result: set[tuple] = set()
        for model in self.answer_sets():
            result |= self._matches(model, query)
        return result

    @staticmethod
    def _matches(model: Iterable[Literal], query: Atom) -> set[tuple]:
        """Bindings of the query's variable positions against a model.

        The answer tuple lists values in order of first appearance of each
        distinct variable (constants in the query act as filters).
        """
        variables: list[Variable] = []
        for arg in query.args:
            if isinstance(arg, Variable) and arg not in variables:
                variables.append(arg)
        result: set[tuple] = set()
        for literal in model:
            if not literal.positive or literal.naf:
                continue
            if literal.predicate != query.predicate:
                continue
            if literal.atom.arity != query.arity:
                continue
            binding: dict[Variable, Constant] = {}
            ok = True
            for pattern_arg, value in zip(query.args, literal.atom.args):
                if isinstance(pattern_arg, Constant):
                    if pattern_arg != value:
                        ok = False
                        break
                else:
                    assert isinstance(pattern_arg, Variable)
                    bound = binding.get(pattern_arg)
                    if bound is None:
                        binding[pattern_arg] = value  # type: ignore[index]
                    elif bound != value:
                        ok = False
                        break
            if ok:
                result.add(tuple(binding[v].value for v in variables))
        return result


def answer_sets(program: Program, **kwargs) -> list[frozenset[Literal]]:
    """All answer sets of ``program`` (convenience wrapper)."""
    return AnswerSetEngine(program, **kwargs).answer_sets()


def skeptical_answers(program: Program, query: Atom, **kwargs) -> set[tuple]:
    """Skeptical (cautious) answers to ``query`` over ``program``."""
    return AnswerSetEngine(program, **kwargs).skeptical_answers(query)


def brave_answers(program: Program, query: Atom, **kwargs) -> set[tuple]:
    """Brave (possible) answers to ``query`` over ``program``."""
    return AnswerSetEngine(program, **kwargs).brave_answers(query)


def has_answer_set(program: Program, **kwargs) -> bool:
    """Answer-set existence (consistency of the specification)."""
    kwargs.setdefault("max_models", 1)
    return AnswerSetEngine(program, **kwargs).is_consistent()
